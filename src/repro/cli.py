"""Command-line interface: ``python -m repro <command>``.

The PR-ESP experience from a shell — the "single make target" plus the
evaluation entry points:

* ``designs``              list the paper's SoCs with metrics and class
* ``build CONFIG``         run the DPR flow, print the full report
* ``sweep CONFIG...``      batch-build configs x strategies via the build service
* ``compare CONFIG``       PR-ESP vs the monolithic baseline (Table V row)
* ``deploy CONFIG``        run WAMI on a built SoC (Fig. 4 methodology)
* ``monitor CONFIG``       deploy with the health monitor attached
* ``dashboard CONFIG``     deploy with full request telemetry: SLO/error
                           budgets plus Prometheus/OTLP exposition
* ``bench-diff``           compare BENCH_*.json summaries against baselines
* ``profile TARGET``       call-path profile of a Fig. 4 workload, or the
                           Fig. 3-style profile of one WAMI accelerator
* ``profile-diff``         compare PROFILE_*.json hot paths against baselines
* ``model``                show the calibrated CAD-runtime curves
* ``serve``                run the multi-tenant build/deploy service daemon
* ``jobs``                 submit/list/status/cancel/result against a daemon

``CONFIG`` is either a paper design name (soc_1..soc_4, soc_a..soc_d,
soc_x/y/z) or a path to an ``.esp_config`` file.

Every ``--json`` payload is wrapped in the same versioned envelope the
service API speaks: ``schema_version`` + ``kind`` at the top level,
the command's payload splatted alongside.
"""

from __future__ import annotations

import argparse
import gc
import json
import sys
from pathlib import Path
from typing import Optional

from repro import api
from repro.core.designs import (
    paper_designs,
    resolve_config,
    wami_deployment_socs,
)
from repro.core.metrics import compute_metrics
from repro.core.strategy import ImplementationStrategy, choose_strategy
from repro.errors import PrEspError
from repro.flow.batch import BuildRequest
from repro.flow.cache import FlowCache
from repro.flow.options import BuildOptions
from repro.obs.instrumentation import Instrumentation
from repro.flow.report import comparison_report, flow_report
from repro.obs.context import RequestIdFactory
from repro.obs.events import EventBus
from repro.obs.export import (
    metrics_lines,
    write_chrome_trace,
    write_otlp_jsonl,
    write_prometheus_text,
)
from repro.obs.health import Verdict, _worst
from repro.obs.logconfig import (
    LEVELS,
    configure_logging,
    level_from_verbosity,
)
from repro.obs.metrics import MetricsRegistry, NULL_METRICS
from repro.obs.perfbase import (
    baseline_from_summary,
    compare_directories,
    find_baselines,
    find_summaries,
    load_summary,
    write_baseline,
)
from repro.obs.profdiff import (
    DEFAULT_BAND,
    DEFAULT_HOTSPOT_THRESHOLD,
    DEFAULT_MIN_SHARE,
    baseline_from_profile,
    compare_profile_directories,
    find_profile_baselines,
    self_time_shares,
    write_profile_baseline,
)
from repro.obs.profiler import (
    NULL_PROFILER,
    Profiler,
    collapsed_stacks,
    find_profiles,
    load_profile,
    profile_document,
    profile_json,
    self_host_total,
    write_profile,
)
from repro.obs.slo import SloTracker
from repro.service.schema import envelope
from repro.obs.tracer import NULL_TRACER, Tracer
from repro.obs.tsdb import TelemetryStore
from repro.runtime.faults import (
    PERSISTENT,
    RuntimeFaultKind,
    RuntimeFaultModel,
    RuntimeFaultOptions,
)
from repro.soc.validation import check_design
from repro.vivado.faults import NO_FAULTS, CadFaultModel
from repro.vivado.runtime_model import CALIBRATED_MODEL, JobKind
from repro.wami.graph import WamiStage


# ----------------------------------------------------------------------
# subcommands
# ----------------------------------------------------------------------
def cmd_designs(_args) -> int:
    print(f"{'name':8s} {'grid':>5s} {'tiles':>6s} {'metrics':40s} {'class':>6s} {'strategy':>15s}")
    for name, config in paper_designs().items():
        metrics = compute_metrics(config)
        decision = choose_strategy(
            metrics, estimator=CALIBRATED_MODEL.strategy_estimator()
        )
        print(
            f"{name:8s} {config.rows}x{config.cols:<3d} "
            f"{len(config.reconfigurable_tiles):>6d} {metrics.summary():40s} "
            f"{decision.design_class.value:>6s} {decision.strategy.value:>15s}"
        )
    return 0


def cache_from_args(args) -> Optional[FlowCache]:
    """The build cache a command asked for, or None.

    The CLI is a one-shot process, so ``--cache`` means the persistent
    disk tier (``--cache-dir`` or ``~/.cache/repro-flow``) — an
    in-memory-only cache would never survive to the next invocation.
    """
    if not getattr(args, "cache", False):
        return None
    return FlowCache(disk_dir=args.cache_dir or True)


def parse_cad_injections(specs) -> list:
    """``STAGE:JOB[:COUNT]`` flags -> (stage, job, count) triples."""
    injections = []
    for spec in specs or []:
        parts = spec.split(":")
        if len(parts) not in (2, 3) or not parts[0] or not parts[1]:
            raise PrEspError(
                f"bad --inject-cad-fault {spec!r}; expected STAGE:JOB[:COUNT]"
            )
        try:
            count = int(parts[2]) if len(parts) == 3 else 1
        except ValueError:
            raise PrEspError(
                f"bad --inject-cad-fault count in {spec!r}; expected an integer"
            ) from None
        injections.append((parts[0], parts[1], count))
    return injections


def faults_from_args(args):
    """The CAD fault model a build asked for (NO_FAULTS when healthy)."""
    injections = parse_cad_injections(getattr(args, "inject_cad_fault", None))
    rate = getattr(args, "fault_rate", 0.0) or 0.0
    if not 0.0 <= rate < 1.0:
        raise PrEspError(f"--fault-rate must be in [0, 1), got {rate}")
    if not injections and rate <= 0.0:
        return NO_FAULTS
    rates = {kind: rate for kind in JobKind} if rate > 0.0 else None
    model = CadFaultModel(seed=getattr(args, "fault_seed", 0) or 0, rates=rates)
    for stage, job, count in injections:
        model.inject_fault(stage, job, count=count)
    return model


def parse_runtime_rates(specs) -> dict:
    """``[KIND=]RATE`` flags -> {RuntimeFaultKind: rate}."""
    kinds = {k.value: k for k in RuntimeFaultKind}
    rates = {}
    for spec in specs or []:
        name, _, value = spec.rpartition("=")
        try:
            rate = float(value)
        except ValueError:
            raise PrEspError(
                f"bad --runtime-fault-rate {spec!r}; expected [KIND=]RATE"
            ) from None
        if name and name not in kinds:
            raise PrEspError(
                f"bad --runtime-fault-rate kind in {spec!r}; choose from "
                + ", ".join(sorted(kinds))
            )
        for kind in [kinds[name]] if name else list(RuntimeFaultKind):
            rates[kind] = rate
    return rates


def parse_runtime_injections(specs) -> list:
    """``TILE:MODE[:KIND]`` flags -> (tile, mode, kind) triples."""
    kinds = {k.value: k for k in RuntimeFaultKind}
    injections = []
    for spec in specs or []:
        parts = spec.split(":")
        if len(parts) not in (2, 3) or not parts[0] or not parts[1]:
            raise PrEspError(
                f"bad --inject-runtime-fault {spec!r}; expected TILE:MODE[:KIND]"
            )
        kind = parts[2] if len(parts) == 3 else RuntimeFaultKind.BITSTREAM_CORRUPTION.value
        if kind not in kinds:
            raise PrEspError(
                f"bad --inject-runtime-fault kind in {spec!r}; choose from "
                + ", ".join(sorted(kinds))
            )
        injections.append((parts[0], parts[1], kinds[kind]))
    return injections


def runtime_faults_from_args(args) -> Optional[RuntimeFaultOptions]:
    """The runtime fault options a deployment asked for (None = healthy)."""
    injections = parse_runtime_injections(
        getattr(args, "inject_runtime_fault", None)
    )
    rates = parse_runtime_rates(getattr(args, "runtime_fault_rate", None))
    if not injections and not rates:
        return None
    model = RuntimeFaultModel(
        seed=getattr(args, "runtime_fault_seed", 0) or 0,
        rates=rates or None,
    )
    for tile, mode, kind in injections:
        model.inject(tile, mode, kind, count=PERSISTENT)
    return RuntimeFaultOptions(faults=model)


def parse_service_rates(specs) -> dict:
    """``[KIND=]RATE`` flags -> {ServiceFaultKind: rate}."""
    from repro.service.faults import ServiceFaultKind

    kinds = {k.value: k for k in ServiceFaultKind}
    rates = {}
    for spec in specs or []:
        name, _, value = spec.rpartition("=")
        try:
            rate = float(value)
        except ValueError:
            raise PrEspError(
                f"bad --service-fault-rate {spec!r}; expected [KIND=]RATE"
            ) from None
        if name and name not in kinds:
            raise PrEspError(
                f"bad --service-fault-rate kind in {spec!r}; choose from "
                + ", ".join(sorted(kinds))
            )
        for kind in [kinds[name]] if name else list(ServiceFaultKind):
            rates[kind] = rate
    return rates


def service_faults_from_args(args):
    """The service fault model a daemon run asked for (disabled = None)."""
    from repro.service.faults import (
        NO_SERVICE_FAULTS,
        ServiceFaultKind,
        ServiceFaultModel,
    )

    kinds = {k.value: k for k in ServiceFaultKind}
    injections = []
    for spec in getattr(args, "inject_service_fault", None) or []:
        parts = spec.split(":")
        if len(parts) not in (1, 2) or parts[0] not in kinds:
            raise PrEspError(
                f"bad --inject-service-fault {spec!r}; expected KIND[:COUNT] "
                "with KIND one of " + ", ".join(sorted(kinds))
            )
        try:
            count = int(parts[1]) if len(parts) == 2 else 1
        except ValueError:
            raise PrEspError(
                f"bad --inject-service-fault count in {spec!r}; expected an "
                "integer"
            ) from None
        injections.append((kinds[parts[0]], count))
    rates = parse_service_rates(getattr(args, "service_fault_rate", None))
    if not injections and not rates:
        return NO_SERVICE_FAULTS
    model = ServiceFaultModel(
        seed=getattr(args, "service_fault_seed", 0) or 0,
        rates=rates or None,
    )
    for kind, count in injections:
        model.inject(kind, count=count)
    return model


def write_profile_to(path: str, profiler, experiment: str) -> str:
    """Write a profile document to an explicit ``path`` (+ .collapsed).

    The ``--profile PATH`` flag form of the export: the JSON document
    goes to ``path`` verbatim, the flamegraph-ready collapsed stacks to
    the sibling ``<path>.collapsed``. Returns the collapsed path.
    """
    document = profile_document(profiler, experiment)
    out = Path(path)
    if str(out.parent) not in ("", "."):
        out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(profile_json(document) + "\n")
    collapsed = out.with_suffix(".collapsed")
    lines = collapsed_stacks(document)
    collapsed.write_text("\n".join(lines) + ("\n" if lines else ""))
    return str(collapsed)


def cmd_build(args) -> int:
    config = resolve_config(args.config)
    strategy = (
        ImplementationStrategy(args.strategy) if args.strategy else None
    )
    options = BuildOptions(
        cache=cache_from_args(args),
        faults=faults_from_args(args),
        checkpoint_dir=args.checkpoint_dir,
        resume=args.resume,
    )
    tracer = Tracer(time_unit="min") if args.trace else NULL_TRACER
    profiler = Profiler() if args.profile else NULL_PROFILER
    platform = api.platform(
        options=options,
        instrumentation=Instrumentation(tracer=tracer, profiler=profiler),
        compress_bitstreams=not args.no_compress,
    )
    result = api.build(
        config,
        strategy=strategy,
        with_baseline=args.baseline,
        platform=platform,
    )
    if args.trace:
        write_chrome_trace(
            args.trace,
            tracer,
            profile=(
                profile_document(profiler, f"build_{config.name}")
                if args.profile
                else None
            ),
        )
    if args.profile:
        write_profile_to(args.profile, profiler, f"build_{config.name}")
    if getattr(args, "json", False):
        print(
            json.dumps(
                envelope("build", result.flow.to_summary_dict()), indent=2
            )
        )
        return 0
    print(flow_report(result.flow))
    if result.cached:
        print("\n(served from the flow cache)")
    if result.flow.resumed_stages:
        print(
            f"\n(resumed {len(result.flow.resumed_stages)} checkpointed "
            f"stage(s): {', '.join(result.flow.resumed_stages)})"
        )
    if result.baseline is not None:
        print()
        print(comparison_report(result.flow, result.baseline))
    if args.trace:
        print(f"\ntrace written to {args.trace}")
    if args.profile:
        print(f"\nprofile written to {args.profile}")
    return 0


def cmd_sweep(args) -> int:
    configs = [resolve_config(spec) for spec in args.configs]
    if args.strategies == "all":
        strategies = [None] + [s for s in ImplementationStrategy]
    elif args.strategies == "auto":
        strategies = [None]
    else:
        try:
            strategies = [
                ImplementationStrategy(name)
                for name in args.strategies.split(",")
                if name
            ]
        except ValueError:
            raise PrEspError(
                f"unknown strategy in {args.strategies!r}; choose from "
                + ", ".join(s.value for s in ImplementationStrategy)
                + ", or use 'auto'/'all'"
            ) from None
    requests = [
        BuildRequest(config=config, strategy_override=strategy)
        for config in configs
        for strategy in strategies
    ]
    cache = cache_from_args(args)
    platform = api.platform(options=BuildOptions(cache=cache, jobs=args.jobs))
    outcomes = api.build_many(requests, platform=platform)
    if args.json:
        rows = []
        for outcome in outcomes:
            row = {
                "request": outcome.request.label,
                "ok": outcome.ok,
                "cached": outcome.cached,
                "elapsed_s": outcome.elapsed_s,
            }
            if outcome.result is not None:
                row["summary"] = outcome.result.to_summary_dict()
            if outcome.error is not None:
                row["error"] = {
                    "kind": outcome.error.kind,
                    "message": outcome.error.message,
                }
            rows.append(row)
        print(json.dumps(envelope("sweep", {"outcomes": rows}), indent=2))
    else:
        print(
            f"{'request':28s} {'status':>8s} {'strategy':>15s} "
            f"{'total min':>10s} {'crit min':>9s}"
        )
        for outcome in outcomes:
            if outcome.ok:
                flow = outcome.result
                status = "cached" if outcome.cached else "built"
                omega = (
                    "-"
                    if flow.max_omega_minutes is None
                    else f"{flow.max_omega_minutes:.1f}"
                )
                print(
                    f"{outcome.request.label:28s} {status:>8s} "
                    f"{flow.strategy.value:>15s} {flow.total_minutes:>10.1f} "
                    f"{omega:>9s}"
                )
            else:
                print(
                    f"{outcome.request.label:28s} {'FAILED':>8s}  {outcome.error}"
                )
        if cache is not None:
            stats = cache.stats()
            print(
                f"\ncache: {stats['hits_memory'] + stats['hits_disk']} hits, "
                f"{stats['misses']} misses"
            )
    return 0 if all(outcome.ok for outcome in outcomes) else 1


def cmd_compare(args) -> int:
    config = resolve_config(args.config)
    presp, mono = api.compare(config)
    print(comparison_report(presp, mono))
    return 0


def cmd_deploy(args) -> int:
    config = resolve_config(args.config)
    want_metrics = args.metrics or args.json
    tracer = Tracer() if args.trace else NULL_TRACER
    registry = MetricsRegistry() if want_metrics else NULL_METRICS
    profiler = Profiler() if args.profile else NULL_PROFILER
    report = api.deploy(
        config,
        frames=args.frames,
        instrumentation=Instrumentation(
            tracer=tracer, metrics=registry, profiler=profiler
        ),
        runtime_options=runtime_faults_from_args(args),
    )
    if args.trace:
        write_chrome_trace(
            args.trace,
            tracer,
            profile=(
                profile_document(profiler, f"deploy_{config.name}")
                if args.profile
                else None
            ),
        )
    if args.profile:
        write_profile_to(args.profile, profiler, f"deploy_{config.name}")
    if args.json:
        print(
            json.dumps(
                envelope("deploy", report.to_summary_dict(registry.snapshot())),
                indent=2,
            )
        )
        return 0
    print(f"{config.name}: {report.frames} frames")
    print(f"  frame latency : {report.seconds_per_frame * 1000:.1f} ms")
    print(f"  energy/frame  : {report.joules_per_frame:.3f} J")
    print(f"  average power : {report.energy.average_power_w:.2f} W")
    print(f"  reconfigs     : {report.reconfigurations}")
    software = ", ".join(s.kernel_name for s in report.software_stages) or "none"
    print(f"  software      : {software}")
    if report.runtime_stats is not None:
        print("runtime stats:")
        for line in report.runtime_stats.summary_lines():
            print(f"  {line}")
    if args.metrics:
        print("metrics:")
        for line in metrics_lines(registry):
            print(f"  {line}")
    if args.trace:
        print(f"trace written to {args.trace}")
    if args.profile:
        print(f"profile written to {args.profile}")
    return 0


def parse_injections(specs) -> list:
    """``TILE:MODE[:COUNT]`` flags -> (tile, mode, count) triples."""
    injections = []
    for spec in specs or []:
        parts = spec.split(":")
        if len(parts) not in (2, 3) or not parts[0] or not parts[1]:
            raise PrEspError(
                f"bad --inject-failure {spec!r}; expected TILE:MODE[:COUNT]"
            )
        try:
            count = int(parts[2]) if len(parts) == 3 else 1
        except ValueError:
            raise PrEspError(
                f"bad --inject-failure count in {spec!r}; expected an integer"
            ) from None
        injections.append((parts[0], parts[1], count))
    return injections


def cmd_monitor(args) -> int:
    config = resolve_config(args.config)
    registry = MetricsRegistry()
    report, health, bus = api.monitor(
        config,
        frames=args.frames,
        reconfig_deadline_s=args.deadline,
        window_s=args.window,
        failure_rate_degraded=args.failure_rate_degraded,
        failure_rate_critical=args.failure_rate_critical,
        queue_depth_degraded=args.queue_depth_degraded,
        inject_failures=parse_injections(args.inject_failure),
        runtime_options=runtime_faults_from_args(args),
        metrics=registry,
    )
    # One end-of-run snapshot is enough for the SLO verdict, but burn
    # over a single sample is all-or-nothing, so a breached budget
    # folds into the exit code as DEGRADED at most — the dashboard's
    # sampled stream is where a CRITICAL burn carries evidence.
    store = TelemetryStore()
    store.record(registry, time=report.timeline.makespan_s)
    slo = SloTracker(store).evaluate()
    slo_fold = Verdict.DEGRADED if slo.verdict is Verdict.CRITICAL else slo.verdict
    verdict = _worst(health.verdict, slo_fold)
    if args.json:
        payload = health.to_dict()
        payload["slo"] = slo.to_dict()
        payload["verdict"] = verdict.value
        payload["deploy"] = {
            "config": config.name,
            "frames": report.frames,
            "seconds_per_frame": report.seconds_per_frame,
            "reconfigurations": report.reconfigurations,
        }
        payload["events"] = [
            {
                "seq": event.seq,
                "kind": event.kind,
                "time": event.time,
                "source": event.source,
                "attrs": dict(event.attrs),
            }
            for event in bus.last(args.events)
        ]
        print(json.dumps(envelope("monitor", payload), indent=2))
        return verdict.exit_code
    print(f"{config.name}: {report.frames} frames, "
          f"{report.reconfigurations} reconfigurations")
    print(f"  frame latency : {report.seconds_per_frame * 1000:.1f} ms")
    print()
    for line in health.summary_lines():
        print(line)
    print()
    for line in slo.summary_lines():
        print(line)
    if args.events:
        shown = bus.last(args.events)
        print()
        print(f"recent events ({len(shown)} of {len(bus)} buffered, "
              f"{bus.dropped} dropped):")
        for event in shown:
            print(f"  {event}")
    return verdict.exit_code


def _dashboard_frames(store: TelemetryStore, window_s) -> list:
    """Deterministic replay of the run: one SLO evaluation per sample.

    Re-records the store's samples one at a time into a scratch store
    and evaluates the SLOs after each, yielding the dashboard's
    ``--follow`` timeline — the same frames a live refresh would have
    shown, without any wall clock involved.
    """
    replay = TelemetryStore(
        capacity=store.capacity, series_capacity=store.series_capacity
    )
    tracker = SloTracker(replay)
    frames = []
    for sample in store.samples():
        replay.record(dict(sample.values), time=sample.time)
        report = tracker.evaluate(window_s=window_s)
        frames.append(
            {
                "time": sample.time,
                "verdict": report.verdict.value,
                "burn": {
                    status.spec.name: status.burn for status in report.statuses
                },
            }
        )
    return frames


def cmd_dashboard(args) -> int:
    config = resolve_config(args.config)
    registry = MetricsRegistry()
    bus = EventBus()
    factory = RequestIdFactory(seed=args.seed, tenant=args.tenant)
    store = TelemetryStore()
    plat = api.platform(
        request_ids=factory,
        instrumentation=Instrumentation(metrics=registry, events=bus),
    )
    built = plat.build(config)
    # Attach the sampler only now: the flow's events ride the modelled
    # CAD-minute clock while the deployment's ride DES seconds, and
    # sampling just the runtime stream keeps the store's timeline
    # monotonic from t=0 (the flow counters are already in the
    # registry, so every sample still carries them).
    store.attach(bus, registry, interval=args.interval)
    report, health, bus = api.monitor(
        config,
        frames=args.frames,
        flow_result=built.flow,
        inject_failures=parse_injections(args.inject_failure),
        runtime_options=runtime_faults_from_args(args),
        metrics=registry,
        bus=bus,
        platform=plat,
    )
    # One final snapshot: the end-of-run runtime gauges are published
    # after the last bus event, so the sampler never sees them.
    end_time = report.timeline.makespan_s
    latest = store.latest()
    if latest is not None and latest.time > end_time:
        end_time = latest.time
    store.record(registry, time=end_time)
    slo = SloTracker(store).evaluate(window_s=args.window)
    verdict = _worst(health.verdict, slo.verdict)
    if args.prom:
        write_prometheus_text(args.prom, registry)
    if args.otlp:
        write_otlp_jsonl(args.otlp, registry, time_s=end_time)
    if args.json:
        payload = {
            "soc": config.name,
            "frames": report.frames,
            "verdict": verdict.value,
            "requests": {"minted": factory.minted, "tenant": factory.tenant},
            "health": health.to_dict(),
            "slo": slo.to_dict(),
            "store": store.to_dict(),
        }
        if args.follow:
            payload["replay"] = _dashboard_frames(store, args.window)
        print(json.dumps(envelope("dashboard", payload), indent=2))
        return verdict.exit_code
    print(f"{config.name}: {report.frames} frames, "
          f"{report.reconfigurations} reconfigurations")
    print(f"  requests      : {factory.minted} minted (tenant {factory.tenant})")
    print(f"  samples       : {store.recorded} recorded, {store.dropped} dropped")
    if args.follow:
        print()
        print("replay:")
        last = None
        for frame in _dashboard_frames(store, args.window):
            stamp = frame["verdict"].upper()
            burns = " ".join(
                f"{name}={burn:.0%}" for name, burn in frame["burn"].items()
            )
            marker = "  <-- verdict change" if last is not None and stamp != last else ""
            print(f"  t={frame['time']:10.4f}s  {stamp:8s} {burns}{marker}")
            last = stamp
    print()
    for line in health.summary_lines():
        print(line)
    print()
    for line in slo.summary_lines():
        print(line)
    print()
    print(f"overall       : {verdict.value.upper()}")
    if args.prom:
        print(f"prometheus exposition written to {args.prom}")
    if args.otlp:
        print(f"otlp metrics written to {args.otlp}")
    return verdict.exit_code


def cmd_bench_diff(args) -> int:
    if args.update:
        summaries = find_summaries(args.results_dir)
        if not summaries:
            print(
                f"error: no {args.results_dir}/BENCH_*.json summaries to seed "
                "baselines from (run the benches first)",
                file=sys.stderr,
            )
            return 1
        for experiment, path in sorted(summaries.items()):
            baseline = baseline_from_summary(
                load_summary(path), tolerance=args.tolerance
            )
            written = write_baseline(args.baselines_dir, baseline)
            print(f"seeded {written} ({len(baseline.entries)} metrics)")
        return 0
    if not find_baselines(args.baselines_dir):
        print(
            f"error: no baselines under {args.baselines_dir} "
            "(seed them with: repro bench-diff --update)",
            file=sys.stderr,
        )
        return 1
    results = compare_directories(args.results_dir, args.baselines_dir)
    failed = [r for r in results if not r.ok]
    if getattr(args, "json", False):
        payload = {
            "ok": not failed,
            "experiments": [
                {
                    "experiment": result.experiment,
                    "ok": result.ok,
                    "missing_summary": result.missing_summary,
                    "deltas": [
                        {
                            "name": delta.name,
                            "baseline": delta.baseline,
                            "current": delta.current,
                            "tolerance": delta.tolerance,
                            "direction": delta.direction,
                            "status": delta.status,
                        }
                        for delta in result.deltas
                    ],
                }
                for result in results
            ],
        }
        print(json.dumps(envelope("bench_diff", payload), indent=2))
        return 1 if failed else 0
    for result in results:
        for line in result.summary_lines():
            print(line)
    print(
        f"\n{len(results) - len(failed)}/{len(results)} experiments in band"
        + (f", {len(failed)} FAILED" if failed else "")
    )
    return 1 if failed else 0


#: Call-path-profiled workloads: name -> (deployment SoCs, default frames).
PROFILE_WORKLOADS = {
    "fig4_wami_runtime": (("soc_x", "soc_y", "soc_z"), 8),
    "fig4_smoke": (("soc_y",), 2),
}


def _cmd_profile_workload(args) -> int:
    """Run one Fig. 4 workload under the hierarchical profiler."""
    soc_names, default_frames = PROFILE_WORKLOADS[args.target]
    frames = args.frames if args.frames else default_frames
    profiler = Profiler()
    platform = api.platform(instrumentation=Instrumentation(profiler=profiler))
    socs = wami_deployment_socs()
    # The workloads finish in tens of milliseconds, so a gen-2
    # collection landing inside the window dwarfs the paths it
    # interrupts (the pause is charged to whichever frame happened to
    # allocate). Start the window from a collected heap with the
    # collector paused so the attribution gate compares real shares.
    gc.collect()
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        for name in soc_names:
            api.deploy(socs[name], frames=frames, platform=platform)
    finally:
        if gc_was_enabled:
            gc.enable()
    document = profile_document(profiler, args.target)
    json_path, collapsed_path = write_profile(args.out, args.target, document)
    if args.json:
        print(json.dumps(envelope("profile", document), indent=2))
        return 0
    total = document["total_host_s"]
    self_total = self_host_total(document)
    print(f"{args.target}: {len(soc_names)} deployment(s) x {frames} frames")
    print(
        f"  host time      : {total * 1000:.1f} ms "
        f"(simulated {document['total_sim_s']:.1f} s)"
    )
    shares = self_time_shares(document)
    top = sorted(shares.items(), key=lambda kv: (-kv[1], kv[0]))[: args.top]
    print(f"  top {len(top)} hot paths by host self-time share:")
    for path, share in top:
        print(f"    {share:6.1%}  {path}")
    drift = abs(self_total - total) / total if total else 0.0
    print(
        f"  reconciliation : self-time sum {self_total * 1000:.1f} ms vs "
        f"root inclusive {total * 1000:.1f} ms ({drift:.4%} drift)"
    )
    print(f"  profile        : {json_path}")
    print(f"  flamegraph     : {collapsed_path} (collapsed stacks)")
    return 0


def cmd_profile(args) -> int:
    if args.target in PROFILE_WORKLOADS:
        return _cmd_profile_workload(args)
    try:
        stage = WamiStage[args.target.upper()]
    except KeyError:
        try:
            stage = WamiStage.from_index(int(args.target))
        except (ValueError, PrEspError):
            raise PrEspError(
                f"unknown profile target {args.target!r}; use a workload "
                f"({', '.join(sorted(PROFILE_WORKLOADS))}), a WAMI stage name "
                f"({', '.join(s.kernel_name for s in WamiStage)}), or an "
                "index 1..12"
            ) from None
    profile = api.platform().profile_wami(stage)
    print(f"stage {stage.value}: {stage.kernel_name}")
    print(f"  LUTs            : {profile.luts}")
    print(f"  execution time  : {profile.exec_time_s * 1000:.1f} ms/frame")
    print(f"  partial bits.   : {profile.partial_bitstream_kib:.0f} KB (compressed)")
    print(f"  region          : {profile.region_kluts:.1f} kLUTs")
    return 0


def cmd_profile_diff(args) -> int:
    if args.update:
        profiles = find_profiles(args.results_dir)
        if not profiles:
            print(
                f"error: no {args.results_dir}/PROFILE_*.json profiles to seed "
                "baselines from (run `repro profile <workload>` first)",
                file=sys.stderr,
            )
            return 1
        for experiment, path in sorted(profiles.items()):
            baseline = baseline_from_profile(
                load_profile(path),
                band=args.band,
                hotspot_threshold=args.hotspot_threshold,
                min_share=args.min_share,
            )
            written = write_profile_baseline(args.baselines_dir, baseline)
            print(f"seeded {written} ({len(baseline.paths)} hot paths)")
        return 0
    if not find_profile_baselines(args.baselines_dir):
        print(
            f"error: no profile baselines under {args.baselines_dir} "
            "(seed them with: repro profile-diff --update)",
            file=sys.stderr,
        )
        return 1
    results = compare_profile_directories(args.results_dir, args.baselines_dir)
    for result in results:
        for line in result.summary_lines():
            print(line)
    failed = [r for r in results if not r.ok]
    print(
        f"\n{len(results) - len(failed)}/{len(results)} profiles in band"
        + (f", {len(failed)} FAILED" if failed else "")
    )
    return 1 if failed else 0


def cmd_check(args) -> int:
    config = resolve_config(args.config)
    findings = check_design(config)
    if not findings:
        print(f"{config.name}: no advisory findings")
        return 0
    for finding in findings:
        print(f"[{finding.severity.value:7s}] {finding.rule}: {finding.message}")
    return 0


def parse_quotas(specs) -> dict:
    """``TENANT=QUEUED[:ACTIVE]`` flags -> {tenant: TenantQuota}."""
    from repro.service.queue import TenantQuota

    quotas = {}
    for spec in specs or []:
        tenant, sep, limits = spec.partition("=")
        parts = limits.split(":") if limits else []
        if not sep or not tenant or len(parts) not in (1, 2):
            raise PrEspError(
                f"bad --quota {spec!r}; expected TENANT=QUEUED[:ACTIVE]"
            )
        try:
            max_queued = int(parts[0]) if parts[0] else None
            max_active = (
                int(parts[1]) if len(parts) == 2 and parts[1] else None
            )
        except ValueError:
            raise PrEspError(
                f"bad --quota limits in {spec!r}; expected integers"
            ) from None
        quotas[tenant] = TenantQuota(max_queued=max_queued, max_active=max_active)
    return quotas


def parse_tenant_deadlines(specs) -> dict:
    """``TENANT=SECONDS`` flags -> {tenant: deadline_s}."""
    deadlines = {}
    for spec in specs or []:
        tenant, sep, value = spec.partition("=")
        if not sep or not tenant:
            raise PrEspError(
                f"bad --tenant-deadline {spec!r}; expected TENANT=SECONDS"
            )
        try:
            deadlines[tenant] = float(value)
        except ValueError:
            raise PrEspError(
                f"bad --tenant-deadline seconds in {spec!r}; expected a number"
            ) from None
    return deadlines


def cmd_serve(args) -> int:
    from repro.service.breaker import BreakerPolicy
    from repro.service.daemon import BuildService, ServiceConfig
    from repro.service.queue import TenantQuota

    config = ServiceConfig(
        state_dir=args.state_dir,
        host=args.host,
        port=args.port,
        workers=args.workers,
        jobs=args.jobs,
        seed=args.seed,
        queue_capacity=args.queue_capacity,
        quotas=parse_quotas(args.quota),
        default_quota=TenantQuota(
            max_queued=args.max_queued, max_active=args.max_active
        ),
        faults=service_faults_from_args(args),
        default_deadline_s=args.deadline,
        tenant_deadlines=parse_tenant_deadlines(args.tenant_deadline),
        default_max_attempts=args.max_attempts,
        breaker=BreakerPolicy(
            window=args.breaker_window,
            min_samples=args.breaker_min_samples,
            threshold=args.breaker_threshold,
            cooldown_s=args.breaker_cooldown,
            probes=args.breaker_probes,
        ),
        drain_s=args.drain_timeout,
    )
    service = BuildService(config)
    service.start()
    # The parent (smoke scripts, curl loops) keys off this line.
    print(f"service listening on {service.url} (state in {args.state_dir})")
    sys.stdout.flush()
    try:
        service.serve_forever()
    finally:
        print("service stopped")
    return 0


def _jobs_client(args):
    from repro.service.client import ServiceClient

    return ServiceClient(host=args.host, port=args.port, timeout=args.timeout)


def _print_job_line(record: dict) -> None:
    print(
        f"{record['job_id']:20s} {record['state']:>9s} "
        f"{record['spec']['tenant']:>10s} p{record['spec']['priority']:<3d} "
        f"{record['spec']['kind']:>6s} {record['spec']['config']}"
    )


def cmd_jobs_submit(args) -> int:
    document = _jobs_client(args).submit(
        args.config,
        kind=args.kind,
        tenant=args.tenant,
        priority=args.priority,
        strategy=args.strategy,
        frames=args.frames,
        deadline_s=args.deadline,
        max_attempts=args.max_attempts,
    )
    if args.json:
        print(json.dumps(document, indent=2))
        return 0
    print(f"submitted {document['job_id']} ({document['state']})")
    return 0


def cmd_jobs_list(args) -> int:
    document = _jobs_client(args).jobs(tenant=args.tenant, state=args.state)
    if args.json:
        print(json.dumps(document, indent=2))
        return 0
    queue = document["queue"]
    print(
        f"{len(document['jobs'])} job(s), queue depth {queue['queued']}, "
        f"{queue['admitted']} admitted / {queue['rejected']} rejected"
    )
    for record in document["jobs"]:
        _print_job_line(record)
    return 0


def cmd_jobs_status(args) -> int:
    document = _jobs_client(args).status(args.job_id)
    if args.json:
        print(json.dumps(document, indent=2))
        return 0
    _print_job_line(document)
    return 0


def cmd_jobs_cancel(args) -> int:
    document = _jobs_client(args).cancel(args.job_id)
    if args.json:
        print(json.dumps(document, indent=2))
        return 0
    if document["state"] == "cancelled":
        print(f"{document['job_id']} cancelled")
    elif document["cancel_requested"]:
        print(f"{document['job_id']} is running; cancellation requested")
    else:
        print(f"{document['job_id']} already {document['state']}")
    return 0


def cmd_jobs_requeue(args) -> int:
    document = _jobs_client(args).requeue(args.job_id)
    if args.json:
        print(json.dumps(document, indent=2))
        return 0
    print(f"{document['job_id']} requeued ({document['state']})")
    return 0


def cmd_jobs_result(args) -> int:
    client = _jobs_client(args)
    if args.wait:
        client.wait(args.job_id, timeout=args.wait_timeout)
    document = client.result(args.job_id)
    if args.json:
        print(json.dumps(document, indent=2))
    else:
        print(f"{document['job_id']}: {document['state']}"
              + (" (cached)" if document["cached"] else ""))
        if document["result"] is not None:
            print(json.dumps(document["result"], indent=2))
        if document["error"] is not None:
            print(f"error: {document['error']}")
    return 0 if document["state"] == "succeeded" else 1


def cmd_model(_args) -> int:
    print("calibrated CAD-runtime curves: t(L) = c + a * L^p  (minutes, kLUT)")
    for kind in JobKind:
        curve = CALIBRATED_MODEL.curves[kind]
        print(
            f"  {kind.value:16s} c={curve.c:8.3f}  a={curve.a:9.5f}  p={curve.p:6.3f}"
        )
    print(f"  serial reconfigurable-LUT weight: {CALIBRATED_MODEL.reconf_weight}")
    return 0


# ----------------------------------------------------------------------
def _add_runtime_fault_options(command: argparse.ArgumentParser) -> None:
    command.add_argument(
        "--runtime-fault-rate",
        action="append",
        metavar="[KIND=]R",
        help=(
            "per-attempt runtime failure probability; plain R applies to "
            "every kind, KIND=R (crc/stuck/hang) to one; repeatable"
        ),
    )
    command.add_argument(
        "--runtime-fault-seed",
        type=int,
        default=0,
        metavar="N",
        help="seed of the deterministic runtime fault model",
    )
    command.add_argument(
        "--inject-runtime-fault",
        action="append",
        metavar="TILE:MODE[:KIND]",
        help=(
            "fail every (tile, mode) attempt with KIND (crc default, stuck, "
            "hang) until recovery quarantines the tile; repeatable"
        ),
    )


def _add_cache_options(command: argparse.ArgumentParser) -> None:
    command.add_argument(
        "--cache",
        action=argparse.BooleanOptionalAction,
        default=False,
        help="reuse flow results from the persistent cache (--no-cache off)",
    )
    command.add_argument(
        "--cache-dir",
        metavar="PATH",
        help="cache directory (default: ~/.cache/repro-flow)",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="PR-ESP reproduction: partially reconfigurable SoC design flow",
    )
    parser.add_argument(
        "-v",
        "--verbose",
        action="count",
        default=0,
        help="raise log verbosity (-v info, -vv debug)",
    )
    parser.add_argument(
        "--log-level",
        choices=LEVELS,
        help="explicit log level (overrides -v)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("designs", help="list the paper's SoC designs").set_defaults(
        func=cmd_designs
    )

    build = sub.add_parser("build", help="run the PR-ESP flow on an SoC")
    build.add_argument("config", help="design name or esp_config path")
    build.add_argument(
        "--strategy",
        choices=[s.value for s in ImplementationStrategy],
        help="force a P&R strategy instead of the size-driven choice",
    )
    build.add_argument("--baseline", action="store_true", help="also run the monolithic flow")
    build.add_argument("--no-compress", action="store_true", help="disable bitstream compression")
    build.add_argument("--json", action="store_true", help="emit a JSON summary instead of the report")
    build.add_argument(
        "--trace",
        metavar="PATH",
        help="write a Chrome trace-event file of the flow (CAD minutes)",
    )
    build.add_argument(
        "--checkpoint-dir",
        metavar="PATH",
        help="checkpoint each completed flow stage into PATH",
    )
    build.add_argument(
        "--resume",
        action="store_true",
        help="restore completed stages from --checkpoint-dir before building",
    )
    build.add_argument(
        "--fault-rate",
        type=float,
        default=0.0,
        metavar="R",
        help="per-attempt CAD job failure probability (seeded, deterministic)",
    )
    build.add_argument(
        "--fault-seed",
        type=int,
        default=0,
        metavar="N",
        help="seed of the deterministic CAD fault model",
    )
    build.add_argument(
        "--inject-cad-fault",
        action="append",
        metavar="STAGE:JOB[:COUNT]",
        help=(
            "arm COUNT failures for one tool job, e.g. "
            "synthesis:synth_rt0:3; repeatable"
        ),
    )
    build.add_argument(
        "--profile",
        metavar="PATH",
        help=(
            "write a call-path profile of the build to PATH (JSON tree "
            "plus a sibling .collapsed flamegraph input)"
        ),
    )
    _add_cache_options(build)
    build.set_defaults(func=cmd_build)

    sweep = sub.add_parser(
        "sweep", help="batch-build configs x strategies via the build service"
    )
    sweep.add_argument(
        "configs", nargs="+", help="design names or esp_config paths"
    )
    sweep.add_argument(
        "--strategies",
        default="auto",
        help=(
            "'auto' (size-driven choice), 'all' (auto + every strategy), or a "
            "comma list of "
            + "/".join(s.value for s in ImplementationStrategy)
        ),
    )
    sweep.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="worker processes for builds the cache cannot serve",
    )
    sweep.add_argument(
        "--json", action="store_true", help="emit per-request JSON rows"
    )
    _add_cache_options(sweep)
    sweep.set_defaults(func=cmd_sweep)

    compare = sub.add_parser("compare", help="PR-ESP vs the monolithic baseline")
    compare.add_argument("config", help="design name or esp_config path")
    compare.set_defaults(func=cmd_compare)

    deploy = sub.add_parser("deploy", help="run WAMI on a built SoC")
    deploy.add_argument("config", help="design name or esp_config path")
    deploy.add_argument("--frames", type=int, default=4)
    deploy.add_argument(
        "--trace",
        metavar="PATH",
        help="write a Chrome trace-event file of the run (simulated seconds)",
    )
    deploy.add_argument(
        "--metrics", action="store_true", help="print the metrics registry snapshot"
    )
    deploy.add_argument(
        "--json",
        action="store_true",
        help="emit the deployment report plus metrics as JSON",
    )
    deploy.add_argument(
        "--profile",
        metavar="PATH",
        help=(
            "write a call-path profile of the deployment to PATH (JSON "
            "tree plus a sibling .collapsed flamegraph input)"
        ),
    )
    _add_runtime_fault_options(deploy)
    deploy.set_defaults(func=cmd_deploy)

    monitor = sub.add_parser(
        "monitor",
        help="deploy WAMI with the health monitor attached",
        description=(
            "Run a WAMI deployment with the event bus and health monitor "
            "wired in, then print the health dashboard. Exit code follows "
            "the verdict: 0 ok, 1 degraded, 2 critical."
        ),
    )
    monitor.add_argument("config", help="design name or esp_config path")
    monitor.add_argument("--frames", type=int, default=4)
    monitor.add_argument(
        "--deadline",
        type=float,
        default=1.0,
        metavar="S",
        help="stuck-reconfiguration deadline in simulated seconds",
    )
    monitor.add_argument(
        "--window",
        type=float,
        default=60.0,
        metavar="S",
        help="sliding aggregation window in simulated seconds",
    )
    monitor.add_argument(
        "--failure-rate-degraded",
        type=float,
        default=0.05,
        metavar="R",
        help="reconfiguration failure rate that degrades the verdict",
    )
    monitor.add_argument(
        "--failure-rate-critical",
        type=float,
        default=0.5,
        metavar="R",
        help="reconfiguration failure rate that makes the verdict critical",
    )
    monitor.add_argument(
        "--queue-depth-degraded",
        type=int,
        default=4,
        metavar="N",
        help="per-tile lock queue depth that degrades the verdict",
    )
    monitor.add_argument(
        "--inject-failure",
        action="append",
        metavar="TILE:MODE[:COUNT]",
        help="arm COUNT transfer failures for (tile, mode); repeatable",
    )
    monitor.add_argument(
        "--events",
        type=int,
        default=10,
        metavar="N",
        help="show the last N bus events (0 hides them)",
    )
    monitor.add_argument(
        "--json", action="store_true", help="emit the health report as JSON"
    )
    _add_runtime_fault_options(monitor)
    monitor.set_defaults(func=cmd_monitor)

    dashboard = sub.add_parser(
        "dashboard",
        help="deploy with request telemetry, SLO budgets and exporters",
        description=(
            "Build and deploy under a request-scoped telemetry context, "
            "sample the metrics registry along the run's event stream, "
            "evaluate the SLO error budgets and print the dashboard. "
            "Exit code folds the health and SLO verdicts: 0 ok, 1 "
            "degraded, 2 critical."
        ),
    )
    dashboard.add_argument("config", help="design name or esp_config path")
    dashboard.add_argument("--frames", type=int, default=4)
    dashboard.add_argument(
        "--seed",
        type=int,
        default=0,
        metavar="N",
        help="request-ID factory seed (fixed seed = identical IDs)",
    )
    dashboard.add_argument(
        "--tenant",
        default="default",
        metavar="NAME",
        help="tenant label stamped on the run's telemetry",
    )
    dashboard.add_argument(
        "--interval",
        type=float,
        default=0.0,
        metavar="S",
        help="minimum simulated seconds between registry samples",
    )
    dashboard.add_argument(
        "--window",
        type=float,
        default=None,
        metavar="S",
        help="SLO evaluation window in simulated seconds (default: all)",
    )
    dashboard.add_argument(
        "--follow",
        action="store_true",
        help="replay the recorded samples as a live-refresh timeline",
    )
    dashboard.add_argument(
        "--inject-failure",
        action="append",
        metavar="TILE:MODE[:COUNT]",
        help="arm COUNT transfer failures for (tile, mode); repeatable",
    )
    dashboard.add_argument(
        "--prom",
        metavar="PATH",
        help="write the Prometheus text exposition page to PATH",
    )
    dashboard.add_argument(
        "--otlp",
        metavar="PATH",
        help="write OTLP-shaped JSONL metrics to PATH",
    )
    dashboard.add_argument(
        "--json", action="store_true", help="emit the dashboard as JSON"
    )
    _add_runtime_fault_options(dashboard)
    dashboard.set_defaults(func=cmd_dashboard)

    bench_diff = sub.add_parser(
        "bench-diff",
        help="compare BENCH_*.json bench summaries against baselines",
        description=(
            "Diff the machine-readable bench summaries against the committed "
            "perf baselines; exits 1 on any out-of-band metric."
        ),
    )
    bench_diff.add_argument(
        "--results-dir",
        default="benchmarks/results",
        metavar="PATH",
        help="directory the benches wrote BENCH_*.json into",
    )
    bench_diff.add_argument(
        "--baselines-dir",
        default="benchmarks/baselines",
        metavar="PATH",
        help="directory of committed baseline files",
    )
    bench_diff.add_argument(
        "--update",
        action="store_true",
        help="seed/overwrite baselines from the current summaries instead",
    )
    bench_diff.add_argument(
        "--tolerance",
        type=float,
        default=0.05,
        metavar="R",
        help="relative tolerance written into seeded baselines",
    )
    bench_diff.add_argument(
        "--json",
        action="store_true",
        help="emit the per-experiment judgements as JSON",
    )
    bench_diff.set_defaults(func=cmd_bench_diff)

    profile = sub.add_parser(
        "profile",
        help="call-path profile of a workload, or a Fig. 3 accelerator profile",
        description=(
            "With a workload target (fig4_wami_runtime, fig4_smoke) run the "
            "Fig. 4 deployment under the deterministic hierarchical profiler "
            "and write PROFILE_<target>.json plus <target>.collapsed "
            "flamegraph input; with a WAMI stage name or index print the "
            "Fig. 3-style accelerator profile."
        ),
    )
    profile.add_argument(
        "target",
        help=(
            "workload (fig4_wami_runtime, fig4_smoke), WAMI stage name, or "
            "stage index 1..12"
        ),
    )
    profile.add_argument(
        "--frames",
        type=int,
        default=0,
        metavar="N",
        help="frames per deployment (default: workload-specific)",
    )
    profile.add_argument(
        "--out",
        default="benchmarks/results",
        metavar="DIR",
        help="directory the profile and collapsed stacks are written into",
    )
    profile.add_argument(
        "--top",
        type=int,
        default=15,
        metavar="N",
        help="hot paths to show in the text report",
    )
    profile.add_argument(
        "--json",
        action="store_true",
        help="print the profile document instead of the text report",
    )
    profile.set_defaults(func=cmd_profile)

    profile_diff = sub.add_parser(
        "profile-diff",
        help="compare PROFILE_*.json hot paths against committed baselines",
        description=(
            "Diff the produced call-path profiles against the committed "
            "hot-path baselines: a baselined path whose host self-time share "
            "drifts beyond its band, a new hotspot above the threshold, or a "
            "missing profile exits 1."
        ),
    )
    profile_diff.add_argument(
        "--results-dir",
        default="benchmarks/results",
        metavar="PATH",
        help="directory `repro profile` wrote PROFILE_*.json into",
    )
    profile_diff.add_argument(
        "--baselines-dir",
        default="benchmarks/baselines/profiles",
        metavar="PATH",
        help="directory of committed profile baseline files",
    )
    profile_diff.add_argument(
        "--update",
        action="store_true",
        help="seed/overwrite baselines from the current profiles instead",
    )
    profile_diff.add_argument(
        "--band",
        type=float,
        default=DEFAULT_BAND,
        metavar="R",
        help="absolute band on each pinned path's self-time share",
    )
    profile_diff.add_argument(
        "--hotspot-threshold",
        type=float,
        default=DEFAULT_HOTSPOT_THRESHOLD,
        metavar="R",
        help="share above which an unbaselined path fails as a new hotspot",
    )
    profile_diff.add_argument(
        "--min-share",
        type=float,
        default=DEFAULT_MIN_SHARE,
        metavar="R",
        help="minimum share for a path to be pinned when seeding",
    )
    profile_diff.set_defaults(func=cmd_profile_diff)

    check = sub.add_parser("check", help="advisory design-rule check")
    check.add_argument("config", help="design name or esp_config path")
    check.set_defaults(func=cmd_check)

    sub.add_parser("model", help="show the calibrated runtime model").set_defaults(
        func=cmd_model
    )

    serve = sub.add_parser(
        "serve",
        help="run the multi-tenant build/deploy service daemon",
        description=(
            "Run the long-lived service daemon: a priority job queue with "
            "per-tenant admission control feeding the warm build pool, a "
            "versioned HTTP/JSON API, and crash-safe job state under "
            "--state-dir (SIGKILL the daemon, restart it on the same "
            "directory, and in-flight jobs resume from their checkpoints)."
        ),
    )
    serve.add_argument(
        "--state-dir",
        required=True,
        metavar="PATH",
        help="durable state: job records, checkpoints, the cache's disk tier",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument(
        "--port",
        type=int,
        default=8321,
        help="listen port (0 binds an ephemeral one)",
    )
    serve.add_argument(
        "--workers",
        type=int,
        default=2,
        metavar="N",
        help="supervisor threads draining the job queue",
    )
    serve.add_argument(
        "--jobs",
        type=int,
        default=2,
        metavar="N",
        help="warm build pool worker processes",
    )
    serve.add_argument(
        "--seed",
        type=int,
        default=0,
        metavar="N",
        help="job-ID factory seed (fixed seed = identical job IDs)",
    )
    serve.add_argument(
        "--queue-capacity",
        type=int,
        default=None,
        metavar="N",
        help="global bound on queued jobs (default: unbounded)",
    )
    serve.add_argument(
        "--quota",
        action="append",
        metavar="TENANT=QUEUED[:ACTIVE]",
        help="per-tenant admission limits; repeatable",
    )
    serve.add_argument(
        "--max-queued",
        type=int,
        default=None,
        metavar="N",
        help="default per-tenant queued-job limit",
    )
    serve.add_argument(
        "--max-active",
        type=int,
        default=None,
        metavar="N",
        help="default per-tenant queued+running limit",
    )
    serve.add_argument(
        "--deadline",
        type=float,
        default=None,
        metavar="S",
        help="default per-attempt watchdog deadline (default: none)",
    )
    serve.add_argument(
        "--tenant-deadline",
        action="append",
        metavar="TENANT=S",
        help="per-tenant attempt deadline; repeatable",
    )
    serve.add_argument(
        "--max-attempts",
        type=int,
        default=3,
        metavar="N",
        help="attempt budget before a job dead-letters",
    )
    serve.add_argument(
        "--drain-timeout",
        type=float,
        default=10.0,
        metavar="S",
        help="SIGTERM drain deadline before in-flight jobs are requeued",
    )
    serve.add_argument(
        "--service-fault-rate",
        action="append",
        metavar="[KIND=]RATE",
        help=(
            "seeded service-tier fault rate (crash, slow, io, torn); "
            "bare RATE applies to every kind; repeatable"
        ),
    )
    serve.add_argument(
        "--service-fault-seed",
        type=int,
        default=0,
        metavar="N",
        help="seed of the deterministic service fault model",
    )
    serve.add_argument(
        "--inject-service-fault",
        action="append",
        metavar="KIND[:COUNT]",
        help="deterministically fire COUNT faults of KIND; repeatable",
    )
    serve.add_argument(
        "--breaker-window",
        type=int,
        default=20,
        metavar="N",
        help="outcome window the admission breaker computes over",
    )
    serve.add_argument(
        "--breaker-min-samples",
        type=int,
        default=5,
        metavar="N",
        help="outcomes required before the breaker may open",
    )
    serve.add_argument(
        "--breaker-threshold",
        type=float,
        default=0.5,
        metavar="F",
        help="failure fraction that opens the admission breaker",
    )
    serve.add_argument(
        "--breaker-cooldown",
        type=float,
        default=30.0,
        metavar="S",
        help="shed period before the breaker probes again",
    )
    serve.add_argument(
        "--breaker-probes",
        type=int,
        default=1,
        metavar="N",
        help="canary jobs a half-open breaker admits",
    )
    serve.set_defaults(func=cmd_serve)

    jobs = sub.add_parser(
        "jobs",
        help="talk to a running service daemon",
        description=(
            "Submit, list, inspect, cancel and fetch jobs on a running "
            "`repro serve` daemon. Every --json payload is the service "
            "API's versioned envelope, verbatim."
        ),
    )
    jobs.add_argument("--host", default="127.0.0.1")
    jobs.add_argument("--port", type=int, default=8321)
    jobs.add_argument(
        "--timeout",
        type=float,
        default=30.0,
        metavar="S",
        help="per-request HTTP timeout",
    )
    jobs.add_argument(
        "--json", action="store_true", help="emit the API envelope as JSON"
    )
    jobs_sub = jobs.add_subparsers(dest="jobs_command", required=True)

    jobs_submit = jobs_sub.add_parser("submit", help="submit one job")
    jobs_submit.add_argument("config", help="design name or esp_config path")
    jobs_submit.add_argument(
        "--kind", choices=["build", "deploy"], default="build"
    )
    jobs_submit.add_argument("--tenant", default="default")
    jobs_submit.add_argument(
        "--priority",
        type=int,
        default=0,
        help="higher runs first among queued jobs",
    )
    jobs_submit.add_argument(
        "--strategy",
        choices=[s.value for s in ImplementationStrategy],
        help="force a P&R strategy for build jobs",
    )
    jobs_submit.add_argument(
        "--frames", type=int, default=1, help="WAMI frames for deploy jobs"
    )
    jobs_submit.add_argument(
        "--deadline",
        type=float,
        default=None,
        metavar="S",
        help="per-attempt watchdog deadline for this job",
    )
    jobs_submit.add_argument(
        "--max-attempts",
        type=int,
        default=None,
        metavar="N",
        help="attempt budget before this job dead-letters",
    )
    jobs_submit.set_defaults(func=cmd_jobs_submit)

    jobs_list = jobs_sub.add_parser("list", help="list jobs and queue state")
    jobs_list.add_argument("--tenant", help="only this tenant's jobs")
    jobs_list.add_argument(
        "--state",
        choices=["queued", "running", "succeeded", "failed", "cancelled", "dead"],
        help="only jobs in this state",
    )
    jobs_list.set_defaults(func=cmd_jobs_list)

    jobs_status = jobs_sub.add_parser("status", help="one job's record")
    jobs_status.add_argument("job_id")
    jobs_status.set_defaults(func=cmd_jobs_status)

    jobs_cancel = jobs_sub.add_parser("cancel", help="cancel a job")
    jobs_cancel.add_argument("job_id")
    jobs_cancel.set_defaults(func=cmd_jobs_cancel)

    jobs_requeue = jobs_sub.add_parser(
        "requeue", help="revive a dead-lettered job"
    )
    jobs_requeue.add_argument("job_id")
    jobs_requeue.set_defaults(func=cmd_jobs_requeue)

    jobs_result = jobs_sub.add_parser(
        "result", help="a terminal job's result payload"
    )
    jobs_result.add_argument("job_id")
    jobs_result.add_argument(
        "--wait",
        action=argparse.BooleanOptionalAction,
        default=True,
        help="poll until the job is terminal (--no-wait asks once)",
    )
    jobs_result.add_argument(
        "--wait-timeout",
        type=float,
        default=120.0,
        metavar="S",
        help="give up waiting after S seconds",
    )
    jobs_result.set_defaults(func=cmd_jobs_result)
    return parser


def main(argv: Optional[list] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    configure_logging(args.log_level or level_from_verbosity(args.verbose))
    try:
        return args.func(args)
    except PrEspError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
