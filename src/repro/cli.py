"""Command-line interface: ``python -m repro <command>``.

The PR-ESP experience from a shell — the "single make target" plus the
evaluation entry points:

* ``designs``              list the paper's SoCs with metrics and class
* ``build CONFIG``         run the DPR flow, print the full report
* ``compare CONFIG``       PR-ESP vs the monolithic baseline (Table V row)
* ``deploy CONFIG``        run WAMI on a built SoC (Fig. 4 methodology)
* ``profile STAGE``        Fig. 3-style profile of one WAMI accelerator
* ``model``                show the calibrated CAD-runtime curves

``CONFIG`` is either a paper design name (soc_1..soc_4, soc_a..soc_d,
soc_x/y/z) or a path to an ``.esp_config`` file.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Optional

from repro.core.designs import (
    characterization_socs,
    wami_deployment_socs,
    wami_parallelism_socs,
)
from repro.core.metrics import compute_metrics
from repro.core.platform import PrEspPlatform
from repro.core.strategy import ImplementationStrategy, choose_strategy
from repro.errors import PrEspError
from repro.flow.report import comparison_report, flow_report
from repro.obs.export import metrics_lines, write_chrome_trace
from repro.obs.logconfig import (
    LEVELS,
    configure_logging,
    level_from_verbosity,
)
from repro.obs.metrics import MetricsRegistry, NULL_METRICS
from repro.obs.tracer import NULL_TRACER, Tracer
from repro.soc.config import SocConfig
from repro.soc.esp_parser import load_esp_config
from repro.soc.validation import check_design
from repro.vivado.runtime_model import CALIBRATED_MODEL, JobKind
from repro.wami.graph import WamiStage


def paper_designs() -> dict:
    """All named designs of the evaluation."""
    return {
        **characterization_socs(),
        **wami_parallelism_socs(),
        **wami_deployment_socs(),
    }


def resolve_config(spec: str) -> SocConfig:
    """A design name or an esp_config path."""
    designs = paper_designs()
    if spec in designs:
        return designs[spec]
    if os.path.exists(spec):
        return load_esp_config(spec)
    raise PrEspError(
        f"{spec!r} is neither a known design ({', '.join(sorted(designs))}) "
        "nor an existing esp_config file"
    )


# ----------------------------------------------------------------------
# subcommands
# ----------------------------------------------------------------------
def cmd_designs(_args) -> int:
    print(f"{'name':8s} {'grid':>5s} {'tiles':>6s} {'metrics':40s} {'class':>6s} {'strategy':>15s}")
    for name, config in paper_designs().items():
        metrics = compute_metrics(config)
        decision = choose_strategy(
            metrics, estimator=CALIBRATED_MODEL.strategy_estimator()
        )
        print(
            f"{name:8s} {config.rows}x{config.cols:<3d} "
            f"{len(config.reconfigurable_tiles):>6d} {metrics.summary():40s} "
            f"{decision.design_class.value:>6s} {decision.strategy.value:>15s}"
        )
    return 0


def cmd_build(args) -> int:
    config = resolve_config(args.config)
    strategy = (
        ImplementationStrategy(args.strategy) if args.strategy else None
    )
    platform = PrEspPlatform(compress_bitstreams=not args.no_compress)
    tracer = Tracer(time_unit="min") if args.trace else NULL_TRACER
    result = platform.build(
        config,
        strategy_override=strategy,
        with_baseline=args.baseline,
        tracer=tracer,
    )
    if args.trace:
        write_chrome_trace(args.trace, tracer)
    if getattr(args, "json", False):
        print(json.dumps(result.flow.to_summary_dict(), indent=2))
        return 0
    print(flow_report(result.flow))
    if result.baseline is not None:
        print()
        print(comparison_report(result.flow, result.baseline))
    if args.trace:
        print(f"\ntrace written to {args.trace}")
    return 0


def cmd_compare(args) -> int:
    config = resolve_config(args.config)
    platform = PrEspPlatform()
    presp, mono = platform.compare_with_monolithic(config)
    print(comparison_report(presp, mono))
    return 0


def cmd_deploy(args) -> int:
    config = resolve_config(args.config)
    platform = PrEspPlatform()
    want_metrics = args.metrics or args.json
    tracer = Tracer() if args.trace else NULL_TRACER
    registry = MetricsRegistry() if want_metrics else NULL_METRICS
    report = platform.deploy_wami(
        config, frames=args.frames, tracer=tracer, metrics=registry
    )
    if args.trace:
        write_chrome_trace(args.trace, tracer)
    if args.json:
        print(json.dumps(report.to_summary_dict(registry.snapshot()), indent=2))
        return 0
    print(f"{config.name}: {report.frames} frames")
    print(f"  frame latency : {report.seconds_per_frame * 1000:.1f} ms")
    print(f"  energy/frame  : {report.joules_per_frame:.3f} J")
    print(f"  average power : {report.energy.average_power_w:.2f} W")
    print(f"  reconfigs     : {report.reconfigurations}")
    software = ", ".join(s.kernel_name for s in report.software_stages) or "none"
    print(f"  software      : {software}")
    if report.runtime_stats is not None:
        print("runtime stats:")
        for line in report.runtime_stats.summary_lines():
            print(f"  {line}")
    if args.metrics:
        print("metrics:")
        for line in metrics_lines(registry):
            print(f"  {line}")
    if args.trace:
        print(f"trace written to {args.trace}")
    return 0


def cmd_profile(args) -> int:
    try:
        stage = WamiStage[args.stage.upper()]
    except KeyError:
        try:
            stage = WamiStage.from_index(int(args.stage))
        except (ValueError, PrEspError):
            raise PrEspError(
                f"unknown stage {args.stage!r}; use a name "
                f"({', '.join(s.kernel_name for s in WamiStage)}) or index 1..12"
            ) from None
    platform = PrEspPlatform()
    profile = platform.profile_wami(stage)
    print(f"stage {stage.value}: {stage.kernel_name}")
    print(f"  LUTs            : {profile.luts}")
    print(f"  execution time  : {profile.exec_time_s * 1000:.1f} ms/frame")
    print(f"  partial bits.   : {profile.partial_bitstream_kib:.0f} KB (compressed)")
    print(f"  region          : {profile.region_kluts:.1f} kLUTs")
    return 0


def cmd_check(args) -> int:
    config = resolve_config(args.config)
    findings = check_design(config)
    if not findings:
        print(f"{config.name}: no advisory findings")
        return 0
    for finding in findings:
        print(f"[{finding.severity.value:7s}] {finding.rule}: {finding.message}")
    return 0


def cmd_model(_args) -> int:
    print("calibrated CAD-runtime curves: t(L) = c + a * L^p  (minutes, kLUT)")
    for kind in JobKind:
        curve = CALIBRATED_MODEL.curves[kind]
        print(
            f"  {kind.value:16s} c={curve.c:8.3f}  a={curve.a:9.5f}  p={curve.p:6.3f}"
        )
    print(f"  serial reconfigurable-LUT weight: {CALIBRATED_MODEL.reconf_weight}")
    return 0


# ----------------------------------------------------------------------
def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="PR-ESP reproduction: partially reconfigurable SoC design flow",
    )
    parser.add_argument(
        "-v",
        "--verbose",
        action="count",
        default=0,
        help="raise log verbosity (-v info, -vv debug)",
    )
    parser.add_argument(
        "--log-level",
        choices=LEVELS,
        help="explicit log level (overrides -v)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("designs", help="list the paper's SoC designs").set_defaults(
        func=cmd_designs
    )

    build = sub.add_parser("build", help="run the PR-ESP flow on an SoC")
    build.add_argument("config", help="design name or esp_config path")
    build.add_argument(
        "--strategy",
        choices=[s.value for s in ImplementationStrategy],
        help="force a P&R strategy instead of the size-driven choice",
    )
    build.add_argument("--baseline", action="store_true", help="also run the monolithic flow")
    build.add_argument("--no-compress", action="store_true", help="disable bitstream compression")
    build.add_argument("--json", action="store_true", help="emit a JSON summary instead of the report")
    build.add_argument(
        "--trace",
        metavar="PATH",
        help="write a Chrome trace-event file of the flow (CAD minutes)",
    )
    build.set_defaults(func=cmd_build)

    compare = sub.add_parser("compare", help="PR-ESP vs the monolithic baseline")
    compare.add_argument("config", help="design name or esp_config path")
    compare.set_defaults(func=cmd_compare)

    deploy = sub.add_parser("deploy", help="run WAMI on a built SoC")
    deploy.add_argument("config", help="design name or esp_config path")
    deploy.add_argument("--frames", type=int, default=4)
    deploy.add_argument(
        "--trace",
        metavar="PATH",
        help="write a Chrome trace-event file of the run (simulated seconds)",
    )
    deploy.add_argument(
        "--metrics", action="store_true", help="print the metrics registry snapshot"
    )
    deploy.add_argument(
        "--json",
        action="store_true",
        help="emit the deployment report plus metrics as JSON",
    )
    deploy.set_defaults(func=cmd_deploy)

    profile = sub.add_parser("profile", help="Fig. 3-style accelerator profile")
    profile.add_argument("stage", help="WAMI stage name or index (1..12)")
    profile.set_defaults(func=cmd_profile)

    check = sub.add_parser("check", help="advisory design-rule check")
    check.add_argument("config", help="design name or esp_config path")
    check.set_defaults(func=cmd_check)

    sub.add_parser("model", help="show the calibrated runtime model").set_defaults(
        func=cmd_model
    )
    return parser


def main(argv: Optional[list] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    configure_logging(args.log_level or level_from_verbosity(args.verbose))
    try:
        return args.func(args)
    except PrEspError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
