"""ESP-style SoC model: tiles, sockets, configuration, RTL, partitioning.

This package reproduces the slice of the ESP platform that PR-ESP
builds on: the 2D tile grid (processor / memory / auxiliary / shared
local memory / accelerator tiles), the socket that interfaces each tile
to the NoC, the new *reconfigurable tile* with its decoupler, the SoC
configuration format the flow parses, and the generated RTL hierarchy
the flow partitions into a static part plus reconfigurable partitions.
"""

from repro.soc.tiles import (
    TileKind,
    Tile,
    CpuCore,
    ReconfigurableTile,
)
from repro.soc.esp_library import (
    AcceleratorIP,
    HlsFlow,
    STOCK_ACCELERATORS,
    stock_accelerator,
)
from repro.soc.config import SocConfig
from repro.soc.rtl import Module, generate_rtl
from repro.soc.partition import (
    StaticPartition,
    ReconfigurablePartition,
    DesignPartition,
    partition_design,
)
from repro.soc.socket import Socket, Decoupler, DecouplerState

__all__ = [
    "TileKind",
    "Tile",
    "CpuCore",
    "ReconfigurableTile",
    "AcceleratorIP",
    "HlsFlow",
    "STOCK_ACCELERATORS",
    "stock_accelerator",
    "SocConfig",
    "Module",
    "generate_rtl",
    "StaticPartition",
    "ReconfigurablePartition",
    "DesignPartition",
    "partition_design",
    "Socket",
    "Decoupler",
    "DecouplerState",
]
