"""Design-rule checking for SoC configurations.

The ESP methodology "guides the choice of the number, mix, and
placement of tiles" (Sec. II); the hard rules live in
:class:`~repro.soc.config.SocConfig` validation, while this module
covers the *advisory* layer: checks that a configuration is not just
legal but sensible for a DPR deployment. The flow runs without these,
but the CLI and examples surface them the way a methodology handbook
would.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List

from repro.soc.config import SocConfig
from repro.soc.tiles import TileKind


class Severity(enum.Enum):
    """Advisory levels (nothing here blocks the flow)."""

    INFO = "info"
    WARNING = "warning"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


@dataclass(frozen=True)
class Finding:
    """One design-rule observation."""

    severity: Severity
    rule: str
    message: str


def _distance(a, b) -> int:
    return abs(a[0] - b[0]) + abs(a[1] - b[1])


def check_design(config: SocConfig) -> List[Finding]:
    """Run every advisory rule; returns findings (possibly empty)."""
    findings: List[Finding] = []
    findings += _check_mode_size_spread(config)
    findings += _check_aux_mem_distance(config)
    findings += _check_reconf_density(config)
    findings += _check_single_memory_bottleneck(config)
    findings += _check_empty_share(config)
    return findings


def _check_mode_size_spread(config: SocConfig) -> List[Finding]:
    """A tile whose modes differ wildly in size wastes region area:
    the pblock is sized for the largest mode, so small modes configure
    a mostly-empty region (slow pbs, wasted clock power)."""
    findings = []
    for tile in config.reconfigurable_tiles:
        if len(tile.modes) < 2:
            continue
        sizes = [ip.luts for ip in tile.modes]
        if max(sizes) > 4 * min(sizes):
            findings.append(
                Finding(
                    severity=Severity.WARNING,
                    rule="mode-size-spread",
                    message=(
                        f"tile {tile.name}: largest mode ({max(sizes)} LUTs) is "
                        f">{max(sizes) // min(sizes)}x the smallest ({min(sizes)}); "
                        "small modes will occupy a mostly-empty region"
                    ),
                )
            )
    return findings


def _check_aux_mem_distance(config: SocConfig) -> List[Finding]:
    """The DFXC fetches bitstreams from DDR: every hop between the AUX
    and MEM tiles adds latency to every reconfiguration."""
    aux = config.tiles_of_kind(TileKind.AUX)[0]
    mems = config.tiles_of_kind(TileKind.MEM)
    aux_pos = config.position_of(aux.name)
    best = min(_distance(aux_pos, config.position_of(m.name)) for m in mems)
    if best > 2:
        return [
            Finding(
                severity=Severity.WARNING,
                rule="aux-mem-distance",
                message=(
                    f"auxiliary tile is {best} hops from the nearest memory "
                    "tile; bitstream fetches pay the extra NoC latency"
                ),
            )
        ]
    return []


def _check_reconf_density(config: SocConfig) -> List[Finding]:
    """Floorplanning headroom: past ~65% of the device in inflated RP
    demand, the packer must relax its routability slack."""
    device_luts = config.device().capacity().lut
    inflated = sum(
        int(t.partition_resources().lut / 0.7)
        for t in config.reconfigurable_tiles
    )
    fraction = (inflated + config.static_luts()) / device_luts
    if fraction > 1.0:
        return [
            Finding(
                severity=Severity.WARNING,
                rule="reconf-density",
                message=(
                    f"inflated demand is {fraction:.0%} of the device; "
                    "floorplanning will pack regions tightly or fail"
                ),
            )
        ]
    if fraction > 0.65:
        return [
            Finding(
                severity=Severity.INFO,
                rule="reconf-density",
                message=(
                    f"design uses {fraction:.0%} of the device after headroom; "
                    "expect tight pblocks"
                ),
            )
        ]
    return []


def _check_single_memory_bottleneck(config: SocConfig) -> List[Finding]:
    """Many reconfigurable tiles sharing one MEM tile serialize their
    DMA streams (the paper's SoCs all use a single 1GB DDR channel)."""
    tiles = len(config.reconfigurable_tiles)
    mems = len(config.tiles_of_kind(TileKind.MEM))
    if tiles >= 4 and mems == 1:
        return [
            Finding(
                severity=Severity.INFO,
                rule="memory-bottleneck",
                message=(
                    f"{tiles} reconfigurable tiles share one memory tile; "
                    "concurrent DMA will contend on the DDR channel"
                ),
            )
        ]
    return []


def _check_empty_share(config: SocConfig) -> List[Finding]:
    """A grid dominated by empty tiles wastes NoC area (routers are
    instantiated per position)."""
    empties = len(config.tiles_of_kind(TileKind.EMPTY))
    if empties > config.num_tiles // 2:
        return [
            Finding(
                severity=Severity.INFO,
                rule="empty-grid",
                message=(
                    f"{empties} of {config.num_tiles} grid positions are empty; "
                    "a smaller grid would save router area"
                ),
            )
        ]
    return []
