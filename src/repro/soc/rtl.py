"""Generation of the SoC RTL hierarchy.

The real flow parses the ESP configuration and emits a VHDL/Verilog
hierarchy; here the hierarchy is a tree of :class:`Module` nodes with
post-synthesis LUT annotations at the leaves. The tree is what the
flow's parsing step consumes to separate reconfigurable-tile sources
from the static part, and what the simulated synthesis engine "reads"
to produce netlist checkpoints.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List, Optional

from repro.errors import ConfigurationError, DprRuleViolation
from repro.soc.config import SocConfig
from repro.soc.tiles import (
    CPU_TILE_LUTS,
    RECONF_WRAPPER_LUTS,
    ROUTER_SOCKET_LUTS,
    ReconfigurableTile,
    SOC_MISC_LUTS,
    TILE_BASE_LUTS,
    Tile,
    TileKind,
)


@dataclass
class Module:
    """A node of the RTL hierarchy.

    ``luts`` is the node's *own* leaf contribution (zero for pure
    hierarchy nodes); subtree sizes come from :meth:`total_luts`.
    ``reconfigurable`` marks the root of a reconfigurable partition;
    ``clock_modifying`` and ``route_through`` flag constructs that are
    illegal inside one (the two DPR rules Sec. III cites).
    """

    name: str
    luts: int = 0
    children: List["Module"] = field(default_factory=list)
    reconfigurable: bool = False
    black_box: bool = False
    clock_modifying: bool = False
    route_through: bool = False

    def add(self, child: "Module") -> "Module":
        """Append a child and return it (builder style)."""
        self.children.append(child)
        return child

    def walk(self) -> Iterator["Module"]:
        """Pre-order traversal of the subtree."""
        yield self
        for child in self.children:
            yield from child.walk()

    def total_luts(self) -> int:
        """LUTs of the whole subtree."""
        return sum(m.luts for m in self.walk())

    def find(self, name: str) -> Optional["Module"]:
        """First module named ``name`` in pre-order, or None."""
        for module in self.walk():
            if module.name == name:
                return module
        return None

    def reconfigurable_roots(self) -> List["Module"]:
        """Roots of reconfigurable partitions in this subtree."""
        roots: List[Module] = []

        def visit(module: "Module") -> None:
            if module.reconfigurable:
                roots.append(module)
                return  # nested RPs are not supported by the flow
            for child in module.children:
                visit(child)

        visit(self)
        return roots

    def static_luts(self) -> int:
        """LUTs of the subtree excluding reconfigurable partitions."""
        if self.reconfigurable:
            return 0
        return self.luts + sum(c.static_luts() for c in self.children)

    def check_dpr_rules(self) -> List[str]:
        """Xilinx DPR rule violations inside reconfigurable partitions.

        Returns human-readable violation strings; an empty list means
        the hierarchy is DPR-legal. The two rules are the ones the
        paper's reconfigurable tile was designed to satisfy.
        """
        violations: List[str] = []
        for root in self.reconfigurable_roots():
            for module in root.walk():
                if module.clock_modifying:
                    violations.append(
                        f"clock-modifying logic {module.name!r} inside "
                        f"reconfigurable partition {root.name!r}"
                    )
                if module.route_through:
                    violations.append(
                        f"route-through path {module.name!r} inside "
                        f"reconfigurable partition {root.name!r}"
                    )
        return violations


# ----------------------------------------------------------------------
# hierarchy generation
# ----------------------------------------------------------------------

#: Breakdown of the AUX tile base cost into its sub-blocks.
_AUX_SUBBLOCKS = [
    ("dfx_controller", 2100),
    ("icap_primitive", 180),
    ("axilite_apb_adapter", 450),
    ("axi_noc_adapter", 550),
    ("aux_peripherals", TILE_BASE_LUTS[TileKind.AUX] - 2100 - 180 - 450 - 550),
]


def _socket_module(tile: Tile) -> Module:
    """The static socket (router + proxies [+ decoupler]) of a tile."""
    socket = Module(name=f"{tile.name}_socket")
    socket.add(Module(name=f"{tile.name}_router", luts=ROUTER_SOCKET_LUTS - 120))
    socket.add(Module(name=f"{tile.name}_proxies", luts=100))
    if tile.kind is TileKind.RECONF:
        socket.add(Module(name=f"{tile.name}_decoupler", luts=20))
    else:
        socket.add(Module(name=f"{tile.name}_queues", luts=20))
    return socket


def _tile_module(tile: Tile) -> Module:
    """Build the subtree of one tile."""
    node = Module(name=tile.name)
    node.add(_socket_module(tile))
    if tile.kind is TileKind.CPU:
        assert tile.cpu_core is not None
        node.add(Module(name=f"{tile.name}_{tile.cpu_core.value}_core",
                        luts=CPU_TILE_LUTS[tile.cpu_core]))
    elif tile.kind is TileKind.ACC:
        assert tile.accelerator is not None
        node.add(Module(name=f"{tile.name}_{tile.accelerator.name}",
                        luts=tile.accelerator.luts))
    elif tile.kind is TileKind.AUX:
        aux = node.add(Module(name=f"{tile.name}_aux_logic"))
        for sub_name, sub_luts in _AUX_SUBBLOCKS:
            aux.add(Module(name=f"{tile.name}_{sub_name}", luts=sub_luts))
    elif tile.kind in (TileKind.MEM, TileKind.SLM):
        node.add(Module(name=f"{tile.name}_{tile.kind.value}_ctrl",
                        luts=TILE_BASE_LUTS[tile.kind]))
    elif tile.kind is TileKind.RECONF:
        assert isinstance(tile, ReconfigurableTile)
        wrapper = node.add(
            Module(
                name=f"{tile.name}_wrapper",
                luts=RECONF_WRAPPER_LUTS,
                reconfigurable=True,
            )
        )
        for ip in tile.modes:
            wrapper.add(Module(name=f"{tile.name}_{ip.name}", luts=ip.luts))
        if tile.host_cpu:
            wrapper.add(
                Module(
                    name=f"{tile.name}_{tile.hosted_cpu_core.value}_core",
                    luts=CPU_TILE_LUTS[tile.hosted_cpu_core],
                )
            )
    elif tile.kind is TileKind.EMPTY:
        pass
    else:  # pragma: no cover - exhaustive over TileKind
        raise ConfigurationError(f"unhandled tile kind {tile.kind}")
    return node


def generate_rtl(config: SocConfig) -> Module:
    """Generate the full RTL hierarchy for ``config``.

    The resulting tree's static LUT total equals
    ``config.static_luts()`` by construction, and each reconfigurable
    tile contributes one reconfigurable wrapper subtree.
    """
    top = Module(name=f"{config.name}_top")
    top.add(Module(name="soc_misc", luts=SOC_MISC_LUTS))
    for tile in config.tiles:
        top.add(_tile_module(tile))
    violations = top.check_dpr_rules()
    if violations:  # cannot happen for generated trees; guards extensions
        raise DprRuleViolation("; ".join(violations))
    return top
