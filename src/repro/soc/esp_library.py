"""The stock ESP accelerator library used by the paper's characterization.

Resource figures are the published post-synthesis LUT counts from
Table II of the paper; FF/BRAM/DSP counts are not published and are
derived with family-typical ratios (FF ≈ 1.1x LUT for HLS-generated
datapaths; BRAM/DSP proportional to the kernel's arithmetic/storage
intensity). Only LUTs enter the size-driven parallelism model, so the
derived components affect floorplanning realism but not the paper's
headline numbers.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict

from repro.errors import ConfigurationError
from repro.fabric.resources import ResourceVector


class HlsFlow(enum.Enum):
    """Which HLS flow produced the accelerator (as in the paper)."""

    VIVADO_HLS = "vivado_hls"
    STRATUS_HLS = "stratus_hls"
    RTL = "rtl"  # hand-written / third-party RTL


@dataclass(frozen=True)
class AcceleratorIP:
    """A loosely-coupled accelerator IP in the ESP catalog.

    Attributes
    ----------
    name:
        Catalog name (lower-case identifier).
    hls_flow:
        Flow that generated the IP.
    resources:
        Post-synthesis resource demand.
    throughput_factor:
        Relative datapath throughput used by the execution-time model
        (work units per cycle); purely a runtime-evaluation parameter.
    dynamic_power_w:
        Average dynamic power while computing, used by the energy model.
    description:
        Human-readable summary.
    """

    name: str
    hls_flow: HlsFlow
    resources: ResourceVector
    throughput_factor: float = 1.0
    dynamic_power_w: float = 0.5
    description: str = ""

    def __post_init__(self) -> None:
        if not self.name or self.name != self.name.lower():
            raise ConfigurationError(f"accelerator name must be lower-case: {self.name!r}")
        if self.throughput_factor <= 0:
            raise ConfigurationError(f"{self.name}: throughput factor must be positive")
        if self.dynamic_power_w < 0:
            raise ConfigurationError(f"{self.name}: negative dynamic power")

    @property
    def luts(self) -> int:
        """LUT demand (the quantity the paper's model is built on)."""
        return self.resources.lut


def _ip(
    name: str,
    flow: HlsFlow,
    luts: int,
    bram: int,
    dsp: int,
    throughput: float,
    power: float,
    description: str,
) -> AcceleratorIP:
    return AcceleratorIP(
        name=name,
        hls_flow=flow,
        resources=ResourceVector(lut=luts, ff=int(luts * 1.1), bram=bram, dsp=dsp),
        throughput_factor=throughput,
        dynamic_power_w=power,
        description=description,
    )


#: The stock accelerators of Table II (LUT counts are the published ones).
STOCK_ACCELERATORS: Dict[str, AcceleratorIP] = {
    ip.name: ip
    for ip in [
        _ip(
            "mac",
            HlsFlow.VIVADO_HLS,
            luts=2450,
            bram=2,
            dsp=4,
            throughput=1.0,
            power=0.15,
            description="Multiply-accumulate accelerator (ESP Vivado HLS flow)",
        ),
        _ip(
            "conv2d",
            HlsFlow.STRATUS_HLS,
            luts=36741,
            bram=48,
            dsp=96,
            throughput=8.0,
            power=1.9,
            description="2-D convolution accelerator (SystemC / Stratus HLS)",
        ),
        _ip(
            "gemm",
            HlsFlow.STRATUS_HLS,
            luts=30617,
            bram=40,
            dsp=128,
            throughput=16.0,
            power=1.7,
            description="Dense matrix-multiply accelerator (SystemC / Stratus HLS)",
        ),
        _ip(
            "fft",
            HlsFlow.STRATUS_HLS,
            luts=33690,
            bram=36,
            dsp=72,
            throughput=4.0,
            power=1.8,
            description="Fast Fourier Transform accelerator (SystemC / Stratus HLS)",
        ),
        _ip(
            "sort",
            HlsFlow.STRATUS_HLS,
            luts=20468,
            bram=24,
            dsp=0,
            throughput=2.0,
            power=1.1,
            description="Vector sorting accelerator (SystemC / Stratus HLS)",
        ),
    ]
}


def stock_accelerator(name: str) -> AcceleratorIP:
    """Look up a stock accelerator by catalog name."""
    try:
        return STOCK_ACCELERATORS[name.lower()]
    except KeyError:
        raise ConfigurationError(
            f"unknown stock accelerator {name!r}; catalog: {sorted(STOCK_ACCELERATORS)}"
        ) from None


# ----------------------------------------------------------------------
# Non-accelerator IP blocks whose sizes Table II publishes.
# ----------------------------------------------------------------------

#: LUTs of the Leon3 core as published in Table II ("CPU" column).
LEON3_CORE_LUTS = 41544

#: LUTs of CPU-tile glue around the core. Derived from Table II:
#: static-with-CPU (82,267) minus static-without-CPU (39,254) minus the
#: core itself (41,544) leaves 1,469 LUTs of tile-local logic.
CPU_TILE_GLUE_LUTS = 1469

#: Published static-part figures used to calibrate tile base costs.
STATIC_WITH_CPU_LUTS = 82267
STATIC_WITHOUT_CPU_LUTS = 39254
