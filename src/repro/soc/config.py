"""SoC configuration: the input the PR-ESP flow parses.

ESP describes an SoC as a grid of tiles (``esp_config``); PR-ESP parses
that description to split reconfigurable-tile sources from the static
part. :class:`SocConfig` is the in-memory form of that description with
full validation, JSON round-tripping, and the static-size accounting
the size-driven model needs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import ConfigurationError
from repro.fabric.device import Device
from repro.fabric.parts import PART_CATALOG, make_device
from repro.soc.esp_library import AcceleratorIP, stock_accelerator
from repro.soc.tiles import (
    CpuCore,
    ROUTER_SOCKET_LUTS,
    ReconfigurableTile,
    SOC_MISC_LUTS,
    Tile,
    TileKind,
)


@dataclass(frozen=True)
class SocConfig:
    """A validated SoC description: board + rows x cols tile grid."""

    name: str
    board: str
    rows: int
    cols: int
    tiles: Tuple[Tile, ...]  # row-major, length rows * cols

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("SoC needs a non-empty name")
        if self.board.lower() not in PART_CATALOG:
            raise ConfigurationError(
                f"unknown board {self.board!r}; supported: {sorted(PART_CATALOG)}"
            )
        if self.rows <= 0 or self.cols <= 0:
            raise ConfigurationError("grid dimensions must be positive")
        if len(self.tiles) != self.rows * self.cols:
            raise ConfigurationError(
                f"grid {self.rows}x{self.cols} needs {self.rows * self.cols} tiles, "
                f"got {len(self.tiles)}"
            )
        names = [t.name for t in self.tiles]
        if len(set(names)) != len(names):
            raise ConfigurationError("tile names must be unique")
        self._validate_tile_mix()

    def _validate_tile_mix(self) -> None:
        kinds = [t.kind for t in self.tiles]
        if kinds.count(TileKind.AUX) != 1:
            raise ConfigurationError(
                "an SoC needs exactly one auxiliary tile (hosts the DFX "
                f"controller and ICAP); found {kinds.count(TileKind.AUX)}"
            )
        if kinds.count(TileKind.MEM) < 1:
            raise ConfigurationError("an SoC needs at least one memory tile")
        has_static_cpu = TileKind.CPU in kinds
        has_hosted_cpu = any(
            isinstance(t, ReconfigurableTile) and t.host_cpu for t in self.tiles
        )
        if not has_static_cpu and not has_hosted_cpu:
            raise ConfigurationError(
                "an SoC needs a processor: either a CPU tile or a "
                "reconfigurable tile with host_cpu=True"
            )
        if has_static_cpu and has_hosted_cpu:
            raise ConfigurationError(
                "a CPU tile and a CPU-hosting reconfigurable tile are exclusive"
            )

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def assemble(
        cls,
        name: str,
        board: str,
        rows: int,
        cols: int,
        tiles: Sequence[Tile],
    ) -> "SocConfig":
        """Place ``tiles`` row-major and pad the grid with EMPTY tiles."""
        capacity = rows * cols
        if len(tiles) > capacity:
            raise ConfigurationError(
                f"{len(tiles)} tiles do not fit a {rows}x{cols} grid"
            )
        padded = list(tiles) + [
            Tile(kind=TileKind.EMPTY, name=f"empty_{i}")
            for i in range(capacity - len(tiles))
        ]
        return cls(name=name, board=board, rows=rows, cols=cols, tiles=tuple(padded))

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    @property
    def num_tiles(self) -> int:
        """Grid positions (including EMPTY tiles)."""
        return self.rows * self.cols

    def tile_at(self, row: int, col: int) -> Tile:
        """Tile at grid position (row, col)."""
        if not (0 <= row < self.rows and 0 <= col < self.cols):
            raise ConfigurationError(f"position ({row}, {col}) outside grid")
        return self.tiles[row * self.cols + col]

    def position_of(self, tile_name: str) -> Tuple[int, int]:
        """Grid (row, col) of the tile named ``tile_name``."""
        for index, tile in enumerate(self.tiles):
            if tile.name == tile_name:
                return divmod(index, self.cols)
        raise ConfigurationError(f"no tile named {tile_name!r}")

    def tiles_of_kind(self, kind: TileKind) -> List[Tile]:
        """All tiles of ``kind`` in row-major order."""
        return [t for t in self.tiles if t.kind is kind]

    @property
    def static_tiles(self) -> List[Tile]:
        """Tiles belonging to the static part (everything non-RECONF)."""
        return [t for t in self.tiles if t.is_static]

    @property
    def reconfigurable_tiles(self) -> List[ReconfigurableTile]:
        """The reconfigurable tiles in row-major order."""
        return [t for t in self.tiles if isinstance(t, ReconfigurableTile)]

    def device(self) -> Device:
        """Instantiate the board's device model."""
        return make_device(self.board)

    # ------------------------------------------------------------------
    # size accounting (inputs of the paper's Eq. 1 metrics)
    # ------------------------------------------------------------------
    def static_luts(self) -> int:
        """:math:`lut_{static}` — LUTs of the static part.

        Tile base costs, one router+socket per grid position (the
        sockets of reconfigurable tiles stay static: only the wrapper
        reconfigures), and the SoC-level miscellaneous logic.
        """
        tile_luts = sum(
            t.base_luts() for t in self.static_tiles if t.kind is not TileKind.EMPTY
        )
        empties = sum(
            t.base_luts() for t in self.static_tiles if t.kind is TileKind.EMPTY
        )
        return tile_luts + empties + ROUTER_SOCKET_LUTS * self.num_tiles + SOC_MISC_LUTS

    def reconfigurable_luts(self) -> List[int]:
        """:math:`lut_i` per reconfigurable tile (synthesis LUTs)."""
        return [t.synthesis_luts() for t in self.reconfigurable_tiles]

    def total_design_luts(self) -> int:
        """LUTs of the whole design (static + all reconfigurable tiles)."""
        return self.static_luts() + sum(self.reconfigurable_luts())

    # ------------------------------------------------------------------
    # serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict:
        """JSON-serializable form (inverse of :meth:`from_dict`)."""
        tile_dicts = []
        for tile in self.tiles:
            entry: Dict = {"kind": tile.kind.value, "name": tile.name}
            if tile.kind is TileKind.CPU:
                entry["cpu_core"] = tile.cpu_core.value  # type: ignore[union-attr]
            if tile.accelerator is not None:
                entry["accelerator"] = tile.accelerator.name
            if isinstance(tile, ReconfigurableTile):
                entry["modes"] = tile.mode_names()
                entry["host_cpu"] = tile.host_cpu
            tile_dicts.append(entry)
        return {
            "name": self.name,
            "board": self.board,
            "rows": self.rows,
            "cols": self.cols,
            "tiles": tile_dicts,
        }

    @classmethod
    def from_dict(
        cls,
        data: Dict,
        accelerator_catalog: Optional[Dict[str, AcceleratorIP]] = None,
    ) -> "SocConfig":
        """Rebuild a config from :meth:`to_dict` output.

        ``accelerator_catalog`` resolves mode names; it defaults to the
        stock ESP catalog.
        """

        def resolve(acc_name: str) -> AcceleratorIP:
            if accelerator_catalog and acc_name in accelerator_catalog:
                return accelerator_catalog[acc_name]
            return stock_accelerator(acc_name)

        tiles: List[Tile] = []
        for entry in data["tiles"]:
            kind = TileKind(entry["kind"])
            if kind is TileKind.RECONF:
                tiles.append(
                    ReconfigurableTile(
                        name=entry["name"],
                        modes=[resolve(m) for m in entry.get("modes", [])],
                        host_cpu=bool(entry.get("host_cpu", False)),
                    )
                )
            elif kind is TileKind.CPU:
                tiles.append(
                    Tile(
                        kind=kind,
                        name=entry["name"],
                        cpu_core=CpuCore(entry.get("cpu_core", "leon3")),
                    )
                )
            elif kind is TileKind.ACC:
                tiles.append(
                    Tile(kind=kind, name=entry["name"], accelerator=resolve(entry["accelerator"]))
                )
            else:
                tiles.append(Tile(kind=kind, name=entry["name"]))
        return cls(
            name=data["name"],
            board=data["board"],
            rows=int(data["rows"]),
            cols=int(data["cols"]),
            tiles=tuple(tiles),
        )
