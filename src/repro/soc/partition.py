"""Logic partitioning: split the design into static part + RPs.

This is the first step of the Xilinx DPR flow (Sec. II): partially
reconfigurable accelerators are pre-allocated to reconfigurable
partitions (RPs). In PR-ESP the allocation is the identity mapping
from reconfigurable tiles to RPs — each tile's wrapper is one RP — and
the static part is everything else (CPU/MEM/AUX/SLM tiles, sockets,
NoC).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.errors import FlowError
from repro.fabric.resources import ResourceVector
from repro.soc.config import SocConfig
from repro.soc.rtl import Module, generate_rtl
from repro.soc.tiles import ReconfigurableTile


@dataclass(frozen=True)
class ReconfigurablePartition:
    """One RP: a reconfigurable tile's wrapper and its mode set."""

    name: str
    tile: ReconfigurableTile
    wrapper: Module
    demand: ResourceVector  # floorplanning demand (max over modes)
    synthesis_luts: int  # paper's lut_i (sum over modes)

    @property
    def mode_names(self) -> List[str]:
        """Accelerators this RP can host."""
        return self.tile.mode_names()


@dataclass(frozen=True)
class StaticPartition:
    """The static part: every module outside the RPs."""

    luts: int
    module_names: Tuple[str, ...]


@dataclass(frozen=True)
class DesignPartition:
    """Result of partitioning a design: static part + ordered RPs."""

    config: SocConfig
    rtl: Module
    static: StaticPartition
    rps: Tuple[ReconfigurablePartition, ...]

    @property
    def num_rps(self) -> int:
        """Number of reconfigurable partitions (paper's N)."""
        return len(self.rps)

    def rp_by_name(self, name: str) -> ReconfigurablePartition:
        """RP lookup by name."""
        for rp in self.rps:
            if rp.name == name:
                return rp
        raise FlowError(f"no reconfigurable partition named {name!r}")

    def rp_luts(self) -> List[int]:
        """Per-RP synthesis LUTs, in tile order (paper's lut_i list)."""
        return [rp.synthesis_luts for rp in self.rps]


def partition_design(config: SocConfig) -> DesignPartition:
    """Partition ``config`` into its static part and RPs.

    The returned static size agrees with ``config.static_luts()``; a
    mismatch would indicate an RTL-generation bug and raises.
    """
    rtl = generate_rtl(config)
    wrapper_roots = rtl.reconfigurable_roots()
    reconf_tiles = config.reconfigurable_tiles
    if len(wrapper_roots) != len(reconf_tiles):
        raise FlowError(
            f"RTL exposes {len(wrapper_roots)} reconfigurable roots but the "
            f"config has {len(reconf_tiles)} reconfigurable tiles"
        )

    rps: List[ReconfigurablePartition] = []
    for tile in reconf_tiles:
        wrapper = rtl.find(f"{tile.name}_wrapper")
        if wrapper is None or not wrapper.reconfigurable:
            raise FlowError(f"missing reconfigurable wrapper for tile {tile.name}")
        rps.append(
            ReconfigurablePartition(
                name=tile.name,
                tile=tile,
                wrapper=wrapper,
                demand=tile.partition_resources(),
                synthesis_luts=tile.synthesis_luts(),
            )
        )

    static_luts = rtl.static_luts()
    expected = config.static_luts()
    if static_luts != expected:
        raise FlowError(
            f"static size mismatch: RTL says {static_luts}, config accounting "
            f"says {expected}"
        )
    reconf_module_ids = {id(m) for root in wrapper_roots for m in root.walk()}
    static_modules = tuple(
        m.name for m in rtl.walk() if id(m) not in reconf_module_ids
    )
    static = StaticPartition(luts=static_luts, module_names=static_modules)
    return DesignPartition(config=config, rtl=rtl, static=static, rps=tuple(rps))
