"""Text-format SoC descriptions (the ``.esp_config`` equivalent).

ESP drives its flows from a small text configuration; PR-ESP "starts by
parsing the input SoC configuration to generate the RTL hierarchy of
the full SoC" (Sec. IV). This module provides that front door: an
INI-style format with one section per tile, parsed into
:class:`~repro.soc.config.SocConfig` and rendered back losslessly.

Example::

    [soc]
    name = demo
    board = vc707
    rows = 2
    cols = 3

    [tile cpu0]
    type = cpu
    core = leon3

    [tile mem0]
    type = mem

    [tile aux0]
    type = aux

    [tile rt0]
    type = reconf
    modes = fft, gemm
"""

from __future__ import annotations

import configparser
from typing import Dict, List, Optional

from repro.errors import ConfigurationError
from repro.soc.config import SocConfig
from repro.soc.esp_library import AcceleratorIP, STOCK_ACCELERATORS
from repro.soc.tiles import CpuCore, ReconfigurableTile, Tile, TileKind


def default_catalog() -> Dict[str, AcceleratorIP]:
    """Stock ESP accelerators plus the WAMI kernels."""
    from repro.wami.accelerators import wami_catalog

    catalog = dict(STOCK_ACCELERATORS)
    catalog.update(wami_catalog())
    return catalog


def parse_esp_config(
    text: str, catalog: Optional[Dict[str, AcceleratorIP]] = None
) -> SocConfig:
    """Parse an ``.esp_config``-style description into a SocConfig."""
    catalog = catalog if catalog is not None else default_catalog()
    parser = configparser.ConfigParser()
    try:
        parser.read_string(text)
    except configparser.Error as error:
        raise ConfigurationError(f"malformed esp_config: {error}") from None

    if "soc" not in parser:
        raise ConfigurationError("esp_config needs a [soc] section")
    soc = parser["soc"]
    for key in ("name", "board", "rows", "cols"):
        if key not in soc:
            raise ConfigurationError(f"[soc] section is missing {key!r}")

    def resolve(mode: str) -> AcceleratorIP:
        mode = mode.strip().lower()
        if mode not in catalog:
            raise ConfigurationError(f"unknown accelerator {mode!r} in esp_config")
        return catalog[mode]

    tiles: List[Tile] = []
    for section in parser.sections():
        if not section.startswith("tile "):
            if section != "soc":
                raise ConfigurationError(f"unknown section [{section}]")
            continue
        tile_name = section[len("tile "):].strip()
        body = parser[section]
        if "type" not in body:
            raise ConfigurationError(f"[{section}] is missing 'type'")
        kind_text = body["type"].strip().lower()
        if kind_text == "reconf":
            modes_text = body.get("modes", "").strip()
            modes = [resolve(m) for m in modes_text.split(",") if m.strip()]
            host_cpu = body.getboolean("host_cpu", fallback=False)
            tiles.append(
                ReconfigurableTile(name=tile_name, modes=modes, host_cpu=host_cpu)
            )
        elif kind_text == "cpu":
            core = CpuCore(body.get("core", "leon3").strip().lower())
            tiles.append(Tile(kind=TileKind.CPU, name=tile_name, cpu_core=core))
        elif kind_text == "acc":
            if "accelerator" not in body:
                raise ConfigurationError(f"[{section}] acc tile needs 'accelerator'")
            tiles.append(
                Tile(
                    kind=TileKind.ACC,
                    name=tile_name,
                    accelerator=resolve(body["accelerator"]),
                )
            )
        else:
            try:
                kind = TileKind(kind_text)
            except ValueError:
                raise ConfigurationError(
                    f"[{section}] has unknown tile type {kind_text!r}"
                ) from None
            tiles.append(Tile(kind=kind, name=tile_name))

    return SocConfig.assemble(
        name=soc["name"].strip(),
        board=soc["board"].strip(),
        rows=int(soc["rows"]),
        cols=int(soc["cols"]),
        tiles=tiles,
    )


def render_esp_config(config: SocConfig) -> str:
    """Render a SocConfig back to the text format (round-trippable)."""
    lines = [
        "[soc]",
        f"name = {config.name}",
        f"board = {config.board}",
        f"rows = {config.rows}",
        f"cols = {config.cols}",
    ]
    for tile in config.tiles:
        if tile.kind is TileKind.EMPTY:
            continue  # assemble() regenerates padding
        lines.append("")
        lines.append(f"[tile {tile.name}]")
        if isinstance(tile, ReconfigurableTile):
            lines.append("type = reconf")
            if tile.modes:
                lines.append("modes = " + ", ".join(tile.mode_names()))
            if tile.host_cpu:
                lines.append("host_cpu = true")
        elif tile.kind is TileKind.CPU:
            lines.append("type = cpu")
            lines.append(f"core = {tile.cpu_core.value}")  # type: ignore[union-attr]
        elif tile.kind is TileKind.ACC:
            lines.append("type = acc")
            lines.append(f"accelerator = {tile.accelerator.name}")  # type: ignore[union-attr]
        else:
            lines.append(f"type = {tile.kind.value}")
    return "\n".join(lines) + "\n"


def load_esp_config(path, catalog: Optional[Dict[str, AcceleratorIP]] = None) -> SocConfig:
    """Parse an esp_config file from disk."""
    with open(path, "r", encoding="utf-8") as handle:
        return parse_esp_config(handle.read(), catalog=catalog)
