"""The ESP socket and the PR-ESP reconfiguration decoupler.

Every tile is encapsulated in a *socket* that bridges it to the NoC:
proxies translate the tile's load/store, register-access and interrupt
traffic into NoC packets on the appropriate physical planes. The
reconfigurable tile adds *decoupling logic* between the wrapper and the
socket: during reconfiguration the decoupler isolates all wrapper
interfaces and gates the inputs of the NoC queues, then resets and
re-enables them once the new bitstream is live (Sec. III of the paper).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List, Optional

from repro.errors import ReconfigurationError


class ProxyKind(enum.Enum):
    """Socket proxies, one per wrapper interface."""

    DMA = "dma"  # load/store ports for memory access
    REG = "reg"  # memory-mapped configuration registers
    IRQ = "irq"  # task-completion interrupt


#: NoC physical plane used by each proxy (mirrors ESP's plane split).
PROXY_PLANES = {
    ProxyKind.DMA: 4,
    ProxyKind.REG: 5,
    ProxyKind.IRQ: 5,
}


class DecouplerState(enum.Enum):
    """States of the reconfiguration decoupler FSM."""

    COUPLED = "coupled"  # normal operation: wrapper wired to socket
    DECOUPLED = "decoupled"  # isolation active, NoC queue inputs disabled


@dataclass
class Decoupler:
    """Software-controlled isolation logic of a reconfigurable tile.

    The FSM is deliberately strict: decoupling an already-decoupled
    tile (or re-coupling a coupled one) indicates a runtime-manager bug
    and raises, exactly the kind of misuse the hardware would turn into
    silent corruption.
    """

    tile_name: str
    state: DecouplerState = DecouplerState.COUPLED
    #: Number of decouple/recouple cycles performed (telemetry).
    cycles: int = 0

    @property
    def queues_enabled(self) -> bool:
        """True while the NoC queue inputs of the tile are enabled."""
        return self.state is DecouplerState.COUPLED

    def decouple(self) -> None:
        """Isolate the wrapper before reconfiguration starts."""
        if self.state is DecouplerState.DECOUPLED:
            raise ReconfigurationError(f"{self.tile_name}: already decoupled")
        self.state = DecouplerState.DECOUPLED

    def recouple(self) -> None:
        """Reset queues and re-attach the wrapper after reconfiguration."""
        if self.state is DecouplerState.COUPLED:
            raise ReconfigurationError(f"{self.tile_name}: not decoupled")
        self.state = DecouplerState.COUPLED
        self.cycles += 1


@dataclass
class Socket:
    """A tile socket: proxies plus (for reconfigurable tiles) a decoupler."""

    tile_name: str
    reconfigurable: bool = False
    decoupler: Optional[Decoupler] = None

    def __post_init__(self) -> None:
        if self.reconfigurable and self.decoupler is None:
            self.decoupler = Decoupler(tile_name=self.tile_name)
        if not self.reconfigurable and self.decoupler is not None:
            raise ReconfigurationError(
                f"{self.tile_name}: only reconfigurable sockets carry a decoupler"
            )

    def proxies(self) -> List[ProxyKind]:
        """Proxies instantiated by this socket."""
        return list(ProxyKind)

    def can_accept_traffic(self) -> bool:
        """True if wrapper-bound traffic may enter the socket right now."""
        if self.decoupler is None:
            return True
        return self.decoupler.queues_enabled
