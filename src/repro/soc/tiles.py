"""Tile taxonomy of the PR-ESP architecture.

PR-ESP keeps ESP's tile kinds (processor, memory, auxiliary, shared
local memory, accelerator) and adds the *reconfigurable tile*: an
accelerator socket whose wrapper is a reconfigurable partition able to
host any accelerator of the SoC's mode set, fronted by decoupling logic
(see ``repro.soc.socket``). The paper's Class 2.1 designs also allow a
*CPU-hosted* reconfigurable tile: the processor is placed inside a
reconfigurable partition purely to shrink the static part (it is never
actually swapped at runtime).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.errors import ConfigurationError
from repro.fabric.resources import ResourceVector
from repro.soc.esp_library import (
    AcceleratorIP,
    CPU_TILE_GLUE_LUTS,
    LEON3_CORE_LUTS,
)


class TileKind(enum.Enum):
    """Kinds of tiles on the grid."""

    CPU = "cpu"
    MEM = "mem"
    AUX = "aux"
    SLM = "slm"
    ACC = "acc"  # static (non-reconfigurable) accelerator tile
    RECONF = "reconf"  # PR-ESP reconfigurable tile
    EMPTY = "empty"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


class CpuCore(enum.Enum):
    """Processor cores ESP supports for the CPU tile."""

    LEON3 = "leon3"  # 32-bit SPARC
    CVA6 = "cva6"  # 64-bit RISC-V (Ariane)


#: Post-synthesis LUT cost of each CPU core including tile glue.
#: Leon3 comes from Table II (41,544 core + 1,469 glue); CVA6 is not in
#: the paper and uses the published Ariane FPGA figure (~65k LUTs).
CPU_TILE_LUTS = {
    CpuCore.LEON3: LEON3_CORE_LUTS + CPU_TILE_GLUE_LUTS,
    CpuCore.CVA6: 65000 + CPU_TILE_GLUE_LUTS,
}

#: Base LUT cost of non-CPU tile kinds (excluding the NoC router/socket).
#: Calibrated so a 3x3 SoC with one MEM + one AUX tile reproduces the
#: published static-part sizes of Table II exactly (see tests).
TILE_BASE_LUTS = {
    TileKind.MEM: 18054,
    TileKind.AUX: 13000,
    TileKind.SLM: 5800,
    TileKind.EMPTY: 0,
}

#: LUTs of one NoC router plus the socket proxies, per grid position.
ROUTER_SOCKET_LUTS = 300

#: SoC-level miscellaneous static logic (I/O, DDR controller front-end).
SOC_MISC_LUTS = 5500

#: Resource overhead of the reconfigurable wrapper + decoupler, added on
#: top of the largest mode when sizing a reconfigurable partition.
RECONF_WRAPPER_LUTS = 420


@dataclass(frozen=True)
class Tile:
    """One tile instance (position is assigned by the SoC config grid)."""

    kind: TileKind
    name: str
    cpu_core: Optional[CpuCore] = None
    accelerator: Optional[AcceleratorIP] = None

    def __post_init__(self) -> None:
        if self.kind is TileKind.CPU and self.cpu_core is None:
            object.__setattr__(self, "cpu_core", CpuCore.LEON3)
        if self.kind is not TileKind.CPU and self.cpu_core is not None:
            raise ConfigurationError(f"tile {self.name}: only CPU tiles take a core")
        if self.kind is TileKind.ACC and self.accelerator is None:
            raise ConfigurationError(f"tile {self.name}: ACC tile needs an accelerator")
        if self.kind not in (TileKind.ACC, TileKind.RECONF) and self.accelerator is not None:
            raise ConfigurationError(
                f"tile {self.name}: {self.kind.value} tiles do not host accelerators"
            )

    @property
    def is_static(self) -> bool:
        """True for tiles that belong to the static part of a DPR design."""
        return self.kind is not TileKind.RECONF

    def base_luts(self) -> int:
        """LUTs the tile contributes excluding the router/socket."""
        if self.kind is TileKind.CPU:
            assert self.cpu_core is not None
            return CPU_TILE_LUTS[self.cpu_core]
        if self.kind is TileKind.ACC:
            assert self.accelerator is not None
            return self.accelerator.luts
        if self.kind is TileKind.RECONF:
            raise ConfigurationError(
                "reconfigurable tiles are sized from their mode set; "
                "use ReconfigurableTile.partition_resources()"
            )
        return TILE_BASE_LUTS[self.kind]


@dataclass(frozen=True)
class ReconfigurableTile(Tile):
    """A PR-ESP reconfigurable tile with its set of hostable modes.

    ``modes`` is the set of accelerators that may be loaded into this
    tile at runtime; the reconfigurable partition must be floorplanned
    for the component-wise maximum of their demands. ``host_cpu``
    reproduces the paper's Class 2.1 trick of placing the processor in
    the reconfigurable part to shrink the static region.
    """

    modes: Tuple[AcceleratorIP, ...] = ()
    host_cpu: bool = False
    hosted_cpu_core: CpuCore = CpuCore.LEON3

    def __init__(
        self,
        name: str,
        modes: Sequence[AcceleratorIP],
        host_cpu: bool = False,
        hosted_cpu_core: CpuCore = CpuCore.LEON3,
    ) -> None:
        super().__init__(kind=TileKind.RECONF, name=name)
        object.__setattr__(self, "modes", tuple(modes))
        object.__setattr__(self, "host_cpu", host_cpu)
        object.__setattr__(self, "hosted_cpu_core", hosted_cpu_core)
        if not self.modes and not host_cpu:
            raise ConfigurationError(f"tile {name}: reconfigurable tile with no modes")
        seen = set()
        for ip in self.modes:
            if ip.name in seen:
                raise ConfigurationError(f"tile {name}: duplicate mode {ip.name!r}")
            seen.add(ip.name)

    def mode_names(self) -> List[str]:
        """Names of the hostable accelerators."""
        return [ip.name for ip in self.modes]

    def partition_resources(self) -> ResourceVector:
        """Demand of the reconfigurable partition: max over modes + wrapper."""
        demand = ResourceVector.zero()
        for ip in self.modes:
            demand = demand.component_max(ip.resources)
        if self.host_cpu:
            demand = demand.component_max(
                ResourceVector(
                    lut=CPU_TILE_LUTS[self.hosted_cpu_core],
                    ff=int(CPU_TILE_LUTS[self.hosted_cpu_core] * 1.2),
                    bram=16,
                    dsp=8,
                )
            )
        return demand + ResourceVector(lut=RECONF_WRAPPER_LUTS, ff=RECONF_WRAPPER_LUTS)

    def synthesis_luts(self) -> int:
        """Sum of LUTs of everything synthesized for this tile.

        This is the paper's :math:`lut_i` — the size that drives the
        P&R runtime of the tile's (grouped) implementation runs. For a
        multi-mode tile every mode must be placed and routed once, so
        the CAD effort scales with the sum, not the max.
        """
        total = sum(ip.luts for ip in self.modes)
        if self.host_cpu:
            total += CPU_TILE_LUTS[self.hosted_cpu_core]
        return total + RECONF_WRAPPER_LUTS
