"""End-to-end integration: config → flow → bitstreams → runtime → energy."""

import pytest

from repro.core.designs import wami_deployment_socs, wami_soc_y, wami_soc_z
from repro.core.platform import PrEspPlatform
from repro.core.strategy import ImplementationStrategy


@pytest.fixture(scope="module")
def platform():
    return PrEspPlatform()


@pytest.fixture(scope="module")
def built_y(platform):
    config = wami_soc_y()
    return config, platform.flow.build(config)


class TestBuildThenDeploy:
    def test_flow_bitstreams_feed_the_runtime(self, platform, built_y):
        config, flow_result = built_y
        report = platform.deploy_wami(config, flow_result=flow_result, frames=2)
        # Every reconfiguration streamed a bitstream the flow produced.
        assert report.reconfigurations > 0
        assert report.timeline.reconfiguration_time() > 0

    def test_reconfiguration_count_matches_mode_switches(self, platform, built_y):
        config, flow_result = built_y
        report = platform.deploy_wami(config, flow_result=flow_result, frames=1)
        # Frame 1: every hardware stage forces one load of its mode.
        hardware_stages = 12 - len(report.software_stages)
        assert report.reconfigurations == hardware_stages

    def test_steady_state_reconfigurations_per_frame(self, platform, built_y):
        config, flow_result = built_y
        one = platform.deploy_wami(config, flow_result=flow_result, frames=1)
        three = platform.deploy_wami(config, flow_result=flow_result, frames=3)
        per_frame = (three.reconfigurations - one.reconfigurations) / 2
        # Steady state: tiles cycle through all their modes each frame.
        assert per_frame == pytest.approx(one.reconfigurations, abs=1)

    def test_energy_report_consistency(self, platform, built_y):
        config, flow_result = built_y
        report = platform.deploy_wami(config, flow_result=flow_result, frames=2)
        energy = report.energy
        assert energy.total_j == pytest.approx(
            energy.baseline_j + energy.dynamic_j + energy.software_j + energy.reconfig_j
        )
        assert energy.makespan_s == pytest.approx(report.timeline.makespan_s)


class TestFig4Shape:
    """The headline runtime result: Z fastest, X slowest (2.6x/3.6x)."""

    @pytest.fixture(scope="class")
    def reports(self, platform):
        return {
            name: platform.deploy_wami(cfg, frames=4)
            for name, cfg in wami_deployment_socs().items()
        }

    def test_time_ordering(self, reports):
        assert (
            reports["soc_z"].seconds_per_frame
            < reports["soc_y"].seconds_per_frame
            < reports["soc_x"].seconds_per_frame
        )

    def test_time_ratios_match_paper(self, reports):
        x = reports["soc_x"].seconds_per_frame
        y = reports["soc_y"].seconds_per_frame
        z = reports["soc_z"].seconds_per_frame
        assert x / y == pytest.approx(2.6, rel=0.15)
        assert x / z == pytest.approx(3.6, rel=0.15)

    def test_z_has_most_reconfigurations(self, reports):
        assert reports["soc_z"].reconfigurations > reports["soc_x"].reconfigurations

    def test_x_has_higher_noninterleaved_reconfiguration(self, reports):
        """The paper: X suffers 'higher non-interleaved reconfiguration
        due to the fewer number of reconfigurable tiles' — reconfig
        stalls make up a larger share of X's frame time."""
        def stall_share(report):
            return report.timeline.reconfiguration_time() / report.timeline.makespan_s

        assert stall_share(reports["soc_x"]) < stall_share(reports["soc_z"])
        # ... but per-frame exec density is far lower on X:
        def exec_density(report):
            return sum(
                e.duration_s for e in report.timeline.spans("exec")
            ) / report.timeline.makespan_s

        assert exec_density(reports["soc_x"]) < exec_density(reports["soc_z"])


class TestStrategySweepConsistency:
    def test_chosen_strategy_is_fastest_of_three(self, platform):
        """Replaying SoC_Z's flow under all three strategies, the one
        the algorithm picked must have the smallest P&R makespan."""
        config = wami_soc_z()
        results = {
            s: platform.flow.build(config, strategy_override=s)
            for s in ImplementationStrategy
        }
        chosen = platform.flow.build(config).strategy
        times = {s: r.par_makespan_minutes for s, r in results.items()}
        assert times[chosen] == min(times.values())
