"""End-to-end runtime resilience: faults -> recovery -> degraded runs.

The acceptance scenarios of the resilience layer: a WAMI deployment
under persistent runtime faults completes degraded (quarantine plus
scheduler failover) instead of deadlocking, same-seed deployments
replay the identical fault timeline, and the CLI exposes the whole
path (``deploy``/``monitor`` exit semantics included).
"""

import json

from repro import api
from repro.cli import main
from repro.core.designs import wami_soc_y
from repro.obs import events as ev
from repro.obs.health import Verdict
from repro.runtime.faults import (
    PERSISTENT,
    RecoveryPolicy,
    RuntimeFaultKind,
    RuntimeFaultModel,
    RuntimeFaultOptions,
)

CRC = RuntimeFaultKind.BITSTREAM_CORRUPTION


def quarantine_rt1_options():
    model = RuntimeFaultModel()
    model.inject("rt1", "change_detection", CRC, count=PERSISTENT)
    return RuntimeFaultOptions(faults=model)


class TestDegradedWamiDeployment:
    def test_wami_completes_with_a_quarantined_tile(self):
        report, health, bus = api.monitor(
            wami_soc_y(), frames=2, runtime_options=quarantine_rt1_options()
        )
        # The run completed every frame despite rt1 going away.
        assert report.frames == 2
        assert report.seconds_per_frame > 0
        stats = report.runtime_stats
        assert stats.quarantined == {"rt1": "crc"}
        assert stats.tiles["rt1"].quarantined
        assert stats.failovers > 0
        assert stats.fallbacks > 0  # change_detection fell back first
        # Health: degraded, not critical, and the verdict maps to exit 1.
        assert health.verdict is Verdict.DEGRADED
        assert health.verdict.exit_code == 1
        assert health.quarantined_tiles == ["rt1"]
        assert health.failovers == stats.failovers
        rules = {f.rule for f in health.findings}
        assert "tile-quarantined" in rules
        assert "scheduler-failover" in rules
        # The timeline shows the re-planning.
        failovers = bus.events(ev.SCHED_FAILOVER)
        assert failovers and failovers[0].source == "rt1"
        assert bus.events(ev.TILE_QUARANTINED)

    def test_degraded_run_is_slower_than_healthy(self):
        healthy = api.deploy(wami_soc_y(), frames=2)
        degraded = api.deploy(
            wami_soc_y(), frames=2, runtime_options=quarantine_rt1_options()
        )
        assert degraded.seconds_per_frame > healthy.seconds_per_frame
        assert healthy.runtime_stats.quarantined == {}
        assert healthy.runtime_stats.failovers == 0

    def test_custom_recovery_policy_is_honoured(self):
        model = RuntimeFaultModel()
        model.inject("rt1", "change_detection", CRC, count=PERSISTENT)
        options = RuntimeFaultOptions(
            faults=model, recovery=RecoveryPolicy(quarantine_after=1)
        )
        report = api.deploy(wami_soc_y(), frames=1, runtime_options=options)
        stats = report.runtime_stats
        assert stats.quarantined == {"rt1": "crc"}
        # quarantine_after=1: the very first abandonment quarantined the
        # tile, so no fallback ever ran.
        assert stats.fallbacks == 0


class TestSameSeedDeterminism:
    def stochastic_options(self):
        return RuntimeFaultOptions(
            faults=RuntimeFaultModel(seed=3, rates={CRC: 0.15})
        )

    def event_log(self, bus):
        return [
            (e.kind, e.time, e.source, tuple(sorted(e.attrs.items())))
            for e in bus.events()
        ]

    def test_same_seed_deploys_replay_identically(self):
        runs = []
        for _ in range(2):
            report, health, bus = api.monitor(
                wami_soc_y(), frames=2, runtime_options=self.stochastic_options()
            )
            runs.append(
                (
                    self.event_log(bus),
                    report.runtime_stats.to_dict(),
                    report.seconds_per_frame,
                    health.to_dict(),
                )
            )
        assert runs[0][0] == runs[1][0]
        assert runs[0][1] == runs[1][1]
        assert runs[0][2] == runs[1][2]
        assert runs[0][3] == runs[1][3]
        # The 15% CRC rate produced actual faults (the runs are not
        # trivially identical because nothing happened).
        assert runs[0][1]["failed_attempts"] > 0

    def test_different_seed_changes_the_timeline(self):
        base, _, _ = api.monitor(
            wami_soc_y(), frames=2, runtime_options=self.stochastic_options()
        )
        other, _, _ = api.monitor(
            wami_soc_y(),
            frames=2,
            runtime_options=RuntimeFaultOptions(
                faults=RuntimeFaultModel(seed=4, rates={CRC: 0.15})
            ),
        )
        assert (
            base.runtime_stats.to_dict() != other.runtime_stats.to_dict()
        )

    def test_options_object_is_reusable_across_deploys(self):
        # The platform deploys from a fresh copy of the model, so one
        # options object drives many identical runs (no leaked attempt
        # counters between deployments).
        options = self.stochastic_options()
        first = api.deploy(wami_soc_y(), frames=1, runtime_options=options)
        second = api.deploy(wami_soc_y(), frames=1, runtime_options=options)
        assert first.runtime_stats.to_dict() == second.runtime_stats.to_dict()
        assert not options.faults.enabled or options.faults.drawn[CRC] == 0


class TestDeployCli:
    def test_forced_quarantine_still_exits_zero(self, capsys):
        code = main(
            [
                "deploy",
                "soc_y",
                "--frames",
                "2",
                "--inject-runtime-fault",
                "rt1:change_detection",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0  # the deployment completed, degraded
        assert "QUARANTINED" in out
        assert "failovers=" in out

    def test_json_payload_carries_resilience_stats(self, capsys):
        code = main(
            [
                "deploy",
                "soc_y",
                "--frames",
                "1",
                "--json",
                "--inject-runtime-fault",
                "rt1:change_detection:crc",
            ]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        runtime = payload["runtime"]
        assert runtime["quarantined"] == {"rt1": "crc"}
        assert runtime["failovers"] > 0
        assert runtime["tiles"]["rt1"]["quarantined"] is True

    def test_stochastic_rate_flags_are_deterministic(self, capsys):
        args = [
            "deploy",
            "soc_y",
            "--frames",
            "1",
            "--json",
            "--runtime-fault-rate",
            "crc=0.15",
            "--runtime-fault-seed",
            "3",
        ]
        assert main(args) == 0
        first = json.loads(capsys.readouterr().out)
        assert main(args) == 0
        second = json.loads(capsys.readouterr().out)
        assert first["runtime"] == second["runtime"]

    def test_bad_specs_are_errors(self, capsys):
        assert main(["deploy", "soc_y", "--inject-runtime-fault", "rt1"]) == 1
        assert "error:" in capsys.readouterr().err
        assert (
            main(["deploy", "soc_y", "--inject-runtime-fault", "rt1:fft:nope"])
            == 1
        )
        assert "error:" in capsys.readouterr().err
        assert main(["deploy", "soc_y", "--runtime-fault-rate", "wat"]) == 1
        assert "error:" in capsys.readouterr().err
        assert main(["deploy", "soc_y", "--runtime-fault-rate", "crc=2.0"]) == 1
        assert "error:" in capsys.readouterr().err


class TestMonitorCli:
    def test_quarantine_degrades_the_verdict(self, capsys):
        code = main(
            [
                "monitor",
                "soc_y",
                "--frames",
                "2",
                "--inject-runtime-fault",
                "rt1:change_detection",
            ]
        )
        out = capsys.readouterr().out
        assert code == 1
        assert "DEGRADED" in out
        assert "tile-quarantined" in out
        assert "scheduler-failover" in out

    def test_json_payload_reports_runtime_faults(self, capsys):
        code = main(
            [
                "monitor",
                "soc_y",
                "--frames",
                "2",
                "--json",
                "--inject-runtime-fault",
                "rt1:change_detection",
            ]
        )
        assert code == 1
        payload = json.loads(capsys.readouterr().out)
        faults = payload["runtime_faults"]
        assert faults["quarantined_tiles"] == ["rt1"]
        assert faults["failovers"] > 0
        kinds = {event["kind"] for event in payload["events"]}
        assert kinds  # the ring buffer made it into the payload

    def test_hang_injection_shows_up_in_health(self, capsys):
        code = main(
            [
                "monitor",
                "soc_y",
                "--frames",
                "1",
                "--inject-runtime-fault",
                "rt2:hessian:hang",
            ]
        )
        out = capsys.readouterr().out
        assert code == 1
        assert "kernel hangs" in out
