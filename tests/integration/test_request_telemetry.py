"""End-to-end request telemetry: correlation IDs through the platform.

Covers the tentpole acceptance criteria: concurrent ``build_many``
requests through one platform produce fully disjoint, joinable
telemetry; pool and inline batches agree under a context; the null
observability paths never consult the context variable; and the
``repro dashboard`` verb reports SLO state deterministically with
verdict-driven exit codes.
"""

import importlib.util
import json
import re
import threading
import time
from pathlib import Path

from repro import api
from repro.cli import main
from repro.core.platform import PrEspPlatform
from repro.flow.batch import BuildRequest
from repro.obs.context import RequestIdFactory, TelemetryContext, activate
from repro.obs.events import EventBus
from repro.obs.export import parse_prometheus_text
from repro.obs.instrumentation import Instrumentation
from repro.obs.metrics import NULL_METRICS, MetricsRegistry
from repro.obs.profiler import NULL_PROFILER
from repro.obs.tracer import NULL_TRACER
from repro.obs.tsdb import TelemetryStore
from repro.sim.kernel import Simulator
from repro.soc.config import SocConfig
from repro.soc.esp_library import stock_accelerator
from repro.soc.tiles import ReconfigurableTile, Tile, TileKind

REPO_ROOT = Path(__file__).resolve().parents[2]


def _smoke_ceiling() -> float:
    """The perf-smoke wall ceiling, read from the tool itself."""
    spec = importlib.util.spec_from_file_location(
        "perf_smoke", REPO_ROOT / "tools" / "perf_smoke.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module.SMOKE_WALL_CEILING_S


def tiny_soc(name: str) -> SocConfig:
    return SocConfig.assemble(
        name=name,
        board="vc707",
        rows=2,
        cols=2,
        tiles=[
            Tile(kind=TileKind.CPU, name="cpu0"),
            Tile(kind=TileKind.MEM, name="mem0"),
            Tile(kind=TileKind.AUX, name="aux0"),
            ReconfigurableTile(name="rt0", modes=[stock_accelerator("mac")]),
        ],
    )


def request_labels(registry) -> set:
    """Distinct ``request=...`` label values across all series."""
    found = set()
    for key in registry.snapshot():
        match = re.search(r"request=([^,}]+)", key)
        if match:
            found.add(match.group(1))
    return found


class TestRequestScoping:
    def test_platform_mints_deterministic_ids(self, small_soc):
        def run():
            registry = MetricsRegistry()
            plat = PrEspPlatform(
                request_ids=RequestIdFactory(seed=3),
                instrumentation=Instrumentation(metrics=registry),
            )
            plat.build(small_soc)
            return registry

        first, second = run(), run()
        assert sorted(first.snapshot()) == sorted(second.snapshot())
        ids = request_labels(first)
        assert len(ids) == 1
        assert next(iter(ids)).startswith("build-")

    def test_explicit_context_wins_over_minting(self, small_soc):
        factory = RequestIdFactory(seed=0)
        registry = MetricsRegistry()
        plat = PrEspPlatform(
            request_ids=factory,
            instrumentation=Instrumentation(metrics=registry),
        )
        ctx = TelemetryContext(request_id="my-req", tenant="acme")
        plat.build(small_soc, context=ctx)
        assert factory.minted == 0
        assert request_labels(registry) == {"my-req"}
        assert any("tenant=acme" in key for key in registry.snapshot())

    def test_compare_runs_under_a_single_request(self, small_soc):
        factory = RequestIdFactory(seed=0)
        plat = PrEspPlatform(
            request_ids=factory,
            instrumentation=Instrumentation(metrics=MetricsRegistry()),
        )
        plat.compare_with_monolithic(small_soc)
        assert factory.minted == 1
        assert factory.mint("probe").request_id.startswith("probe-")

    def test_platform_store_records_after_each_verb(self, small_soc):
        store = TelemetryStore()
        registry = MetricsRegistry()
        plat = PrEspPlatform(
            telemetry=store,
            instrumentation=Instrumentation(metrics=registry),
        )
        plat.build(small_soc)
        assert len(store) == 1
        plat.build(small_soc)  # cache hit still closes out a request
        assert len(store) == 2
        assert store.latest().values  # snapshots carry the flow counters


class TestConcurrentBatches:
    def test_two_batches_stay_disjoint_and_joinable(self):
        registry = MetricsRegistry()
        bus = EventBus()
        plat = PrEspPlatform(
            request_ids=RequestIdFactory(seed=11),
            instrumentation=Instrumentation(metrics=registry, events=bus),
        )
        configs = {"alpha": tiny_soc("alpha"), "beta": tiny_soc("beta")}
        outcomes = {}

        def run(name):
            outcomes[name] = plat.build_many(
                [BuildRequest(config=configs[name])]
            )

        threads = [
            threading.Thread(target=run, args=(name,)) for name in configs
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

        assert all(o[0].ok for o in outcomes.values())
        ids = request_labels(registry)
        assert len(ids) == 2  # one request id per batch, fully disjoint
        assert all(rid.startswith("batch-") for rid in ids)
        # Event-stream correlation joins on the same ids.
        event_ids = {
            event.attrs["request_id"]
            for event in bus.events()
            if "request_id" in event.attrs
        }
        assert event_ids <= ids

    def test_pool_matches_inline_under_context(self):
        requests = [
            BuildRequest(config=tiny_soc(name)) for name in ("s1", "s2", "s3")
        ]

        def run(jobs):
            plat = PrEspPlatform(request_ids=RequestIdFactory(seed=5))
            try:
                return plat.build_many(requests, jobs=jobs)
            finally:
                plat.close()

        inline, pooled = run(1), run(4)
        for a, b in zip(inline, pooled):
            assert a.ok and b.ok
            assert a.result.to_summary_dict() == b.result.to_summary_dict()


class TestNullParity:
    def test_null_paths_never_consult_the_context(
        self, small_soc, monkeypatch
    ):
        calls = {"count": 0}

        def counting(module):
            original = module
            def probe(*args, **kwargs):
                calls["count"] += 1
                return original(*args, **kwargs)
            return probe

        import repro.obs.events as events_mod
        import repro.obs.metrics as metrics_mod
        import repro.obs.profiler as profiler_mod
        import repro.obs.tracer as tracer_mod

        monkeypatch.setattr(
            metrics_mod, "current_context", counting(metrics_mod.current_context)
        )
        for module in (events_mod, profiler_mod, tracer_mod):
            monkeypatch.setattr(
                module,
                "current_request_id",
                counting(module.current_request_id),
            )

        with activate(TelemetryContext(request_id="r-null")):
            api.deploy(small_soc, frames=1)
        assert calls["count"] == 0

    def test_fast_dispatch_loop_survives_null_hooks(self):
        sim = Simulator()
        sim.attach_observability(profiler=NULL_PROFILER, tracer=NULL_TRACER)
        assert sim._profiler is None
        assert sim._tracer is None

    def test_context_changes_nothing_on_uninstrumented_deploys(self, small_soc):
        plain = api.deploy(small_soc, frames=2).to_summary_dict()
        start = time.perf_counter()
        with activate(TelemetryContext(request_id="r-1", tenant="t")):
            scoped = api.deploy(small_soc, frames=2).to_summary_dict()
        elapsed = time.perf_counter() - start
        assert scoped == plain
        assert elapsed < _smoke_ceiling()

    def test_exporters_accept_the_null_registry(self):
        from repro.obs.export import otlp_metrics_lines, prometheus_text

        assert prometheus_text(NULL_METRICS) == ""
        assert otlp_metrics_lines(NULL_METRICS) == []


class TestDashboardCli:
    def test_healthy_run_exits_zero(self, capsys):
        assert main(["dashboard", "soc_y", "--frames", "2"]) == 0
        out = capsys.readouterr().out
        assert "slo verdict" in out
        assert "overall" in out

    def test_breached_budget_exits_nonzero(self, capsys):
        code = main([
            "dashboard",
            "soc_y",
            "--frames",
            "2",
            "--inject-failure",
            "rt1:change_detection:2",
        ])
        assert code != 0
        out = capsys.readouterr().out
        assert "deploy-failure-rate" in out

    def test_json_output_is_deterministic(self, capsys):
        def run():
            main(["dashboard", "soc_y", "--frames", "2", "--seed", "1", "--json"])
            return capsys.readouterr().out

        first, second = run(), run()
        assert first == second
        payload = json.loads(first)
        assert payload["verdict"] == "ok"
        assert payload["requests"]["minted"] >= 1
        assert {s["name"] for s in payload["slo"]["objectives"]} == {
            "reconfig-latency-p95",
            "deploy-failure-rate",
            "cad-retry-rate",
        }

    def test_prometheus_scrape_file_parses(self, tmp_path, capsys):
        prom = tmp_path / "dash.prom"
        otlp = tmp_path / "dash.otlp.jsonl"
        code = main([
            "dashboard",
            "soc_y",
            "--frames",
            "2",
            "--prom",
            str(prom),
            "--otlp",
            str(otlp),
        ])
        assert code == 0
        families = parse_prometheus_text(prom.read_text())
        assert families  # non-empty scrape
        assert any(name.startswith("flow_") for name in families)
        lines = otlp.read_text().splitlines()
        assert lines
        for line in lines:
            json.loads(line)

    def test_follow_replays_verdict_timeline(self, capsys):
        code = main([
            "dashboard",
            "soc_y",
            "--frames",
            "2",
            "--follow",
            "--json",
        ])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        replay = payload["replay"]
        assert replay
        assert [frame["time"] for frame in replay] == sorted(
            frame["time"] for frame in replay
        )
        assert all(
            frame["verdict"] in ("ok", "degraded", "critical")
            for frame in replay
        )
