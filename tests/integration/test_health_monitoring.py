"""End-to-end health monitoring: event bus -> HealthMonitor -> verdicts.

Covers the acceptance scenario for the watchdog: a deliberately stalled
reconfiguration must surface as a ``critical`` verdict while the
triggering event is still visible in the bus's ring buffer.
"""

import pytest

from repro.cli import main
from repro.core.designs import wami_soc_z
from repro.core.platform import PrEspPlatform
from repro.noc.mesh import Mesh
from repro.obs import events as ev
from repro.obs.events import EventBus
from repro.obs.health import HealthMonitor, Verdict
from repro.runtime.driver import AcceleratorDriver, DriverRegistry
from repro.runtime.manager import ReconfigurationManager
from repro.runtime.memory import BitstreamStore
from repro.runtime.prc import PrcDevice
from repro.vivado.bitstream import Bitstream, BitstreamKind


def build_manager(sim, bus, size_bytes):
    """A minimal one-tile runtime whose only partial bitstream is
    ``size_bytes`` long, so the ICAP transfer time is under test control."""
    mesh = Mesh(3, 3, clock_hz=78e6)
    prc = PrcDevice(sim, mesh, mem_position=(0, 1), aux_position=(0, 2))
    store = BitstreamStore()
    store.load(
        Bitstream(
            name="rt0_fft.pbs",
            kind=BitstreamKind.PARTIAL,
            size_bytes=size_bytes,
            compressed=True,
            target_rp="rt0",
            mode="fft",
        ),
        "rt0",
    )
    registry = DriverRegistry()
    registry.install(AcceleratorDriver(accelerator="fft", exec_time_s=0.010))
    bus.use_clock(lambda: sim.now)
    manager = ReconfigurationManager(sim, prc, store, registry, events=bus)
    manager.attach_tile("rt0")
    return manager


class TestStalledReconfiguration:
    def test_stalled_reconfiguration_goes_critical(self, sim):
        """A transfer still in flight past the deadline is flagged
        ``critical``, and the RECONFIG_STARTED event that tripped the
        watchdog is retrievable from the ring buffer."""
        bus = EventBus()
        monitor = HealthMonitor(bus, reconfig_deadline_s=0.05)
        # ~400 MB partial: several simulated seconds of ICAP streaming.
        manager = build_manager(sim, bus, size_bytes=400_000_000)
        manager.invoke("rt0", "fft")
        sim.run(until=0.5)  # freeze mid-transfer, well past the deadline

        report = monitor.report(now=sim.now)
        assert report.verdict is Verdict.CRITICAL
        assert report.verdict.exit_code == 2
        finding = report.findings[0]
        assert finding.rule == "stuck-reconfiguration"
        assert "rt0" in finding.message
        assert report.active_reconfigs["rt0"] == pytest.approx(0.5, abs=1e-3)

        # The triggering event is still in the (unwrapped) ring buffer.
        started = bus.events(ev.RECONFIG_STARTED)
        assert len(started) == 1
        assert started[0].source == "rt0"
        assert started[0].attrs["mode"] == "fft"
        assert bus.dropped == 0

    def test_fast_reconfiguration_stays_ok(self, sim):
        bus = EventBus()
        monitor = HealthMonitor(bus, reconfig_deadline_s=0.05)
        manager = build_manager(sim, bus, size_bytes=300_000)
        proc = manager.invoke("rt0", "fft")
        sim.run()
        assert proc.value.reconfig_s < 0.05
        report = monitor.report(now=sim.now)
        assert report.verdict is Verdict.OK
        assert report.active_reconfigs == {}
        assert report.reconfig_s.count == 1


class TestMonitorWami:
    def test_healthy_deployment_reports_ok(self):
        platform = PrEspPlatform()
        report, health, bus = platform.monitor_wami(wami_soc_z(), frames=2)
        assert report.frames == 2
        assert health.verdict is Verdict.OK
        assert health.completions > 0
        assert health.failures == 0
        assert bus.emitted > 0
        kinds = {event.kind for event in bus.events()}
        assert ev.RECONFIG_STARTED in kinds
        assert ev.RECONFIG_COMPLETED in kinds

    def test_injected_failures_degrade_the_verdict(self):
        platform = PrEspPlatform()
        _report, health, bus = platform.monitor_wami(
            wami_soc_z(),
            frames=2,
            failure_rate_degraded=0.001,
            inject_failures=[("rt1", "change_detection", 1)],
        )
        assert health.verdict is Verdict.DEGRADED
        assert health.failures >= 1
        failed = bus.events(ev.RECONFIG_FAILED)
        assert failed and failed[0].source == "rt1"
        assert failed[0].attrs["abandoned"] is False  # retry succeeded


class TestMonitorCli:
    def test_healthy_run_exits_zero(self, capsys):
        assert main(["monitor", "soc_z", "--frames", "2"]) == 0
        out = capsys.readouterr().out
        assert "verdict       : OK" in out
        assert "recent events" in out

    def test_injected_failure_exits_one(self, capsys):
        code = main([
            "monitor", "soc_z", "--frames", "2",
            "--inject-failure", "rt1:change_detection:1",
            "--failure-rate-degraded", "0.001",
        ])
        assert code == 1
        out = capsys.readouterr().out
        assert "verdict       : DEGRADED" in out
        assert "failure-rate" in out

    def test_json_payload(self, capsys):
        import json

        assert main(["monitor", "soc_z", "--frames", "1", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["verdict"] == "ok"
        assert payload["deploy"]["config"] == "soc_z"
        assert payload["deploy"]["frames"] == 1
        assert payload["events"]
        assert {"seq", "kind", "time", "source", "attrs"} <= set(
            payload["events"][0]
        )

    def test_bad_injection_spec_is_an_error(self, capsys):
        assert main(["monitor", "soc_z", "--inject-failure", "rt1"]) == 1
        assert "error:" in capsys.readouterr().err


class TestBenchDiffCli:
    def write_demo_summary(self, results, value):
        from repro.obs.perfbase import write_summary

        write_summary(results, "demo", {"total_min": value})

    def test_no_baselines_is_an_error(self, tmp_path, capsys):
        code = main([
            "bench-diff",
            "--results-dir", str(tmp_path / "results"),
            "--baselines-dir", str(tmp_path / "baselines"),
        ])
        assert code == 1
        assert "no baselines" in capsys.readouterr().err

    def test_update_then_clean_run_exits_zero(self, tmp_path, capsys):
        results = tmp_path / "results"
        baselines = tmp_path / "baselines"
        self.write_demo_summary(results, 100.0)
        args = [
            "bench-diff",
            "--results-dir", str(results),
            "--baselines-dir", str(baselines),
        ]
        assert main(args + ["--update"]) == 0
        capsys.readouterr()
        assert main(args) == 0
        out = capsys.readouterr().out
        assert "1/1 experiments in band" in out

    def test_regression_exits_nonzero(self, tmp_path, capsys):
        results = tmp_path / "results"
        baselines = tmp_path / "baselines"
        self.write_demo_summary(results, 100.0)
        args = [
            "bench-diff",
            "--results-dir", str(results),
            "--baselines-dir", str(baselines),
        ]
        assert main(args + ["--update"]) == 0
        capsys.readouterr()
        # Inject a 25% slowdown against the freshly pinned baseline.
        self.write_demo_summary(results, 125.0)
        assert main(args) == 1
        out = capsys.readouterr().out
        assert "REGRESSION" in out
        assert "+25.0%" in out
