"""Property tests: flow invariants over randomly generated SoCs."""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.strategy import ImplementationStrategy
from repro.flow.dpr_flow import DprFlow
from repro.floorplan.constraints import validate_floorplan
from repro.soc.config import SocConfig
from repro.soc.esp_library import STOCK_ACCELERATORS, stock_accelerator
from repro.soc.tiles import ReconfigurableTile, Tile, TileKind
from repro.vivado.bitstream import BitstreamKind


@st.composite
def random_socs(draw):
    """Valid random SoCs: trio of static tiles + 1..6 reconf tiles with
    1..3 stock modes each."""
    num_tiles = draw(st.integers(min_value=1, max_value=6))
    names = sorted(STOCK_ACCELERATORS)
    tiles = [
        Tile(kind=TileKind.CPU, name="cpu0"),
        Tile(kind=TileKind.MEM, name="mem0"),
        Tile(kind=TileKind.AUX, name="aux0"),
    ]
    for index in range(num_tiles):
        mode_names = draw(
            st.lists(st.sampled_from(names), min_size=1, max_size=3, unique=True)
        )
        tiles.append(
            ReconfigurableTile(
                name=f"rt{index}",
                modes=[stock_accelerator(n) for n in mode_names],
            )
        )
    rows, cols = 3, 3
    if len(tiles) > 9:
        rows, cols = 3, 4
    return SocConfig.assemble("random_soc", "vc707", rows, cols, tiles)


FLOW = DprFlow()


def _infeasible_density(config) -> bool:
    """True when the design plainly cannot floorplan: inflated RP
    demand plus the static part exceeds the device."""
    device_luts = config.device().capacity().lut
    inflated = sum(
        int(t.partition_resources().lut / 0.7) for t in config.reconfigurable_tiles
    )
    return inflated + config.static_luts() > device_luts


@settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(random_socs())
def test_flow_invariants_hold_for_any_valid_soc(config):
    from repro.errors import FloorplanError

    try:
        result = FLOW.build(config)
    except FloorplanError:
        # Only legitimately over-dense designs may fail to floorplan.
        assert _infeasible_density(config)
        return

    # 1. Totals compose.
    assert result.total_minutes == pytest.approx(
        result.synth_makespan_minutes + result.par_makespan_minutes
    )
    assert result.total_minutes > 0

    # 2. Parallel strategies decompose into t_static + max omega.
    if result.strategy is not ImplementationStrategy.SERIAL:
        assert result.static_par_minutes is not None
        assert result.par_makespan_minutes == pytest.approx(
            result.static_par_minutes + result.max_omega_minutes
        )
    else:
        assert result.static_par_minutes is None
        assert result.omega_minutes == {}

    # 3. Floorplan is legal and covers every RP.
    device = config.device()
    report = validate_floorplan(device, result.floorplan)
    assert report.legal, report.violations
    assert len(result.floorplan.assignments) == result.partition.num_rps

    # 4. Bitstreams: one full + per-mode partials + one blank per tile.
    fulls = [b for b in result.bitstreams if b.kind is BitstreamKind.FULL]
    assert len(fulls) == 1
    partials = result.partial_bitstreams()
    expected = sum(len(t.modes) for t in config.reconfigurable_tiles) + len(
        config.reconfigurable_tiles
    )
    assert len(partials) == expected

    # 5. The strategy is the one Table I maps the design's class to
    #    (the algorithm is class-driven; it is *not* a global argmin,
    #    and near class boundaries another strategy can model-beat it).
    from repro.core.classes import DesignClass

    table_one = {
        DesignClass.CLASS_1_1: {ImplementationStrategy.SERIAL},
        DesignClass.CLASS_1_2: {
            ImplementationStrategy.SEMI_PARALLEL,
            ImplementationStrategy.FULLY_PARALLEL,
        },
        DesignClass.CLASS_1_3: {ImplementationStrategy.SEMI_PARALLEL},
        DesignClass.CLASS_2_1: {ImplementationStrategy.FULLY_PARALLEL},
        DesignClass.CLASS_2_2: {ImplementationStrategy.SERIAL},
    }
    assert result.strategy in table_one[result.decision.design_class]


@settings(max_examples=12, deadline=None)
@given(random_socs())
def test_metrics_classification_total_function(config):
    """Every valid SoC classifies and plans without errors."""
    from repro.core.classes import classify
    from repro.core.metrics import compute_metrics
    from repro.core.strategy import choose_strategy
    from repro.flow.schedule import plan_implementation
    from repro.soc.partition import partition_design

    metrics = compute_metrics(config)
    classification = classify(metrics)
    decision = choose_strategy(metrics)
    assert decision.design_class is classification.design_class
    plan = plan_implementation(partition_design(config), decision)
    covered = sorted(name for run in plan.runs for name in run.rp_names)
    assert covered == sorted(t.name for t in config.reconfigurable_tiles)
