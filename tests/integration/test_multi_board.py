"""The flow must work on all three boards the paper targets."""

import pytest

from repro.core.metrics import compute_metrics
from repro.flow.dpr_flow import DprFlow
from repro.soc.config import SocConfig
from repro.soc.esp_library import stock_accelerator
from repro.soc.tiles import ReconfigurableTile, Tile, TileKind


def soc_on(board: str) -> SocConfig:
    tiles = [
        Tile(kind=TileKind.CPU, name="cpu0"),
        Tile(kind=TileKind.MEM, name="mem0"),
        Tile(kind=TileKind.AUX, name="aux0"),
    ] + [
        ReconfigurableTile(name=f"rt_{n}", modes=[stock_accelerator(n)])
        for n in ("conv2d", "gemm", "fft", "sort")
    ]
    return SocConfig.assemble(f"soc_{board}", board, 3, 3, tiles)


@pytest.mark.parametrize("board", ["vc707", "vcu118", "vcu128"])
class TestAllBoards:
    def test_flow_builds(self, board):
        result = DprFlow().build(soc_on(board))
        assert result.total_minutes > 0
        assert len(result.floorplan.assignments) == 4

    def test_floorplan_respects_board_geometry(self, board):
        config = soc_on(board)
        result = DprFlow().build(config)
        device = config.device()
        for assignment in result.floorplan.assignments:
            assert assignment.pblock.col_hi < device.num_columns
            assert assignment.pblock.row_hi < device.region_rows

    def test_bigger_boards_shift_the_class(self, board):
        """κ and α_av are device-relative: the same design is
        reconfigurable-dominant on VC707 but static-dominant classes
        shift on the ~4x larger UltraScale+ parts."""
        metrics = compute_metrics(soc_on(board))
        if board == "vc707":
            assert metrics.kappa > 0.2
        else:
            assert metrics.kappa < 0.1


class TestBoardComparison:
    def test_same_design_floorplans_smaller_fraction_on_big_parts(self):
        reports = {}
        for board in ("vc707", "vcu118"):
            config = soc_on(board)
            result = DprFlow().build(config)
            device = config.device()
            reserved = sum(
                a.provided.lut for a in result.floorplan.assignments
            )
            reports[board] = reserved / device.capacity().lut
        assert reports["vcu118"] < reports["vc707"]
