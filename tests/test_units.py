"""Tests for the unit helpers."""

import pytest
from hypothesis import given, strategies as st

from repro import units


class TestConversions:
    def test_minutes_round_trip(self):
        assert units.to_minutes(units.minutes(42.0)) == pytest.approx(42.0)

    def test_kib_round_trip(self):
        assert units.to_kib(units.kib(256.0)) == pytest.approx(256.0)

    def test_mhz(self):
        assert units.mhz(78.0) == pytest.approx(78e6)

    def test_cycles_to_seconds(self):
        assert units.cycles_to_seconds(78e6, 78e6) == pytest.approx(1.0)

    def test_seconds_to_cycles(self):
        assert units.seconds_to_cycles(1.0, 78e6) == 78_000_000

    def test_bad_clock_rejected(self):
        with pytest.raises(ValueError):
            units.cycles_to_seconds(1, 0)
        with pytest.raises(ValueError):
            units.seconds_to_cycles(1, -5)

    @given(st.floats(min_value=1e-9, max_value=1e6))
    def test_cycle_round_trip(self, seconds):
        clock = 78e6
        cycles = units.seconds_to_cycles(seconds, clock)
        back = units.cycles_to_seconds(cycles, clock)
        assert back == pytest.approx(seconds, rel=1e-6, abs=1.0 / clock)


class TestFormatting:
    def test_fmt_duration_scales(self):
        assert units.fmt_duration(5e-7) == "0.5us"
        assert units.fmt_duration(2.5e-3) == "2.50ms"
        assert units.fmt_duration(3.0) == "3.00s"
        assert units.fmt_duration(600.0) == "10.0min"

    def test_fmt_duration_negative(self):
        assert units.fmt_duration(-2.5e-3) == "-2.50ms"

    def test_fmt_size_scales(self):
        assert units.fmt_size(512) == "512B"
        assert units.fmt_size(300 * 1024) == "300KB"
        assert units.fmt_size(19 * 1024 * 1024) == "19.00MB"

    def test_fmt_size_negative(self):
        assert units.fmt_size(-2048) == "-2KB"


class TestErrorHierarchy:
    def test_all_errors_derive_from_presp_error(self):
        from repro import errors

        leaves = [
            errors.ConfigurationError,
            errors.FabricError,
            errors.ResourceError,
            errors.FloorplanError,
            errors.DprRuleViolation,
            errors.SynthesisError,
            errors.ImplementationError,
            errors.FlowError,
            errors.SimulationError,
            errors.ReconfigurationError,
            errors.DriverError,
            errors.NocError,
        ]
        for leaf in leaves:
            assert issubclass(leaf, errors.PrEspError)

    def test_resource_error_is_fabric_error(self):
        from repro import errors

        assert issubclass(errors.ResourceError, errors.FabricError)

    def test_driver_error_is_reconfiguration_error(self):
        from repro import errors

        assert issubclass(errors.DriverError, errors.ReconfigurationError)
