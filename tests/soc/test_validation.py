"""Tests for the advisory design-rule checker."""


from repro.soc.config import SocConfig
from repro.soc.esp_library import stock_accelerator
from repro.soc.tiles import ReconfigurableTile, Tile, TileKind
from repro.soc.validation import Severity, check_design


def soc(tiles, rows=3, cols=3, name="drc"):
    return SocConfig.assemble(name, "vc707", rows, cols, tiles)


def trio():
    return [
        Tile(kind=TileKind.CPU, name="cpu0"),
        Tile(kind=TileKind.MEM, name="mem0"),
        Tile(kind=TileKind.AUX, name="aux0"),
    ]


def rules_of(findings):
    return {f.rule for f in findings}


class TestModeSizeSpread:
    def test_wild_spread_flagged(self):
        cfg = soc(
            trio()
            + [
                ReconfigurableTile(
                    name="rt0",
                    modes=[stock_accelerator("conv2d"), stock_accelerator("mac")],
                )
            ]
        )
        findings = check_design(cfg)
        assert "mode-size-spread" in rules_of(findings)

    def test_uniform_modes_quiet(self):
        cfg = soc(
            trio()
            + [
                ReconfigurableTile(
                    name="rt0",
                    modes=[stock_accelerator("conv2d"), stock_accelerator("fft")],
                )
            ]
        )
        assert "mode-size-spread" not in rules_of(check_design(cfg))


class TestAuxMemDistance:
    def test_adjacent_quiet(self):
        cfg = soc(trio() + [ReconfigurableTile(name="rt0", modes=[stock_accelerator("mac")])])
        assert "aux-mem-distance" not in rules_of(check_design(cfg))

    def test_far_apart_flagged(self):
        tiles = [
            Tile(kind=TileKind.MEM, name="mem0"),  # (0, 0)
            Tile(kind=TileKind.CPU, name="cpu0"),
            Tile(kind=TileKind.EMPTY, name="e0"),
            Tile(kind=TileKind.EMPTY, name="e1"),
            Tile(kind=TileKind.EMPTY, name="e2"),
            Tile(kind=TileKind.EMPTY, name="e3"),
            Tile(kind=TileKind.EMPTY, name="e4"),
            ReconfigurableTile(name="rt0", modes=[stock_accelerator("mac")]),
            Tile(kind=TileKind.AUX, name="aux0"),  # (2, 2): 4 hops away
        ]
        cfg = SocConfig(name="far", board="vc707", rows=3, cols=3, tiles=tuple(tiles))
        assert "aux-mem-distance" in rules_of(check_design(cfg))


class TestDensity:
    def test_light_design_quiet(self, small_soc):
        assert "reconf-density" not in rules_of(check_design(small_soc))

    def test_dense_design_flagged(self):
        cfg = soc(
            trio()
            + [
                ReconfigurableTile(name=f"rt{i}", modes=[stock_accelerator("conv2d")])
                for i in range(5)
            ],
            rows=3,
            cols=3,
        )
        findings = [f for f in check_design(cfg) if f.rule == "reconf-density"]
        assert findings

    def test_paper_soc4_reports_density_info(self, all_paper_socs):
        findings = check_design(all_paper_socs["soc_4"])
        assert "reconf-density" in rules_of(findings)


class TestBottlenecks:
    def test_many_tiles_one_memory(self, all_paper_socs):
        findings = check_design(all_paper_socs["soc_a"])
        assert "memory-bottleneck" in rules_of(findings)

    def test_few_tiles_quiet(self, small_soc):
        assert "memory-bottleneck" not in rules_of(check_design(small_soc))


class TestEmptyShare:
    def test_mostly_empty_grid_flagged(self):
        cfg = soc(
            trio() + [ReconfigurableTile(name="rt0", modes=[stock_accelerator("mac")])],
            rows=3,
            cols=4,
        )
        assert "empty-grid" in rules_of(check_design(cfg))


class TestSeverities:
    def test_findings_carry_severity_and_message(self, all_paper_socs):
        for finding in check_design(all_paper_socs["soc_4"]):
            assert finding.severity in (Severity.INFO, Severity.WARNING)
            assert finding.message

    def test_clean_design_has_no_warnings(self):
        cfg = soc(
            trio()
            + [
                ReconfigurableTile(name="rt0", modes=[stock_accelerator("gemm")]),
                ReconfigurableTile(name="rt1", modes=[stock_accelerator("fft")]),
            ],
            rows=2,
            cols=3,
        )
        warnings = [f for f in check_design(cfg) if f.severity is Severity.WARNING]
        assert warnings == []
