"""Tests for the socket and the reconfiguration decoupler."""

import pytest

from repro.errors import ReconfigurationError
from repro.soc.socket import Decoupler, DecouplerState, ProxyKind, Socket


class TestDecoupler:
    def test_starts_coupled(self):
        dec = Decoupler(tile_name="rt0")
        assert dec.state is DecouplerState.COUPLED
        assert dec.queues_enabled

    def test_decouple_disables_queues(self):
        dec = Decoupler(tile_name="rt0")
        dec.decouple()
        assert dec.state is DecouplerState.DECOUPLED
        assert not dec.queues_enabled

    def test_recouple_counts_cycles(self):
        dec = Decoupler(tile_name="rt0")
        for _ in range(3):
            dec.decouple()
            dec.recouple()
        assert dec.cycles == 3
        assert dec.queues_enabled

    def test_double_decouple_is_a_bug(self):
        dec = Decoupler(tile_name="rt0")
        dec.decouple()
        with pytest.raises(ReconfigurationError, match="already decoupled"):
            dec.decouple()

    def test_recouple_when_coupled_is_a_bug(self):
        dec = Decoupler(tile_name="rt0")
        with pytest.raises(ReconfigurationError, match="not decoupled"):
            dec.recouple()


class TestSocket:
    def test_reconfigurable_socket_gets_decoupler(self):
        socket = Socket(tile_name="rt0", reconfigurable=True)
        assert socket.decoupler is not None

    def test_static_socket_has_no_decoupler(self):
        socket = Socket(tile_name="cpu0")
        assert socket.decoupler is None

    def test_static_socket_rejects_decoupler(self):
        with pytest.raises(ReconfigurationError):
            Socket(tile_name="cpu0", decoupler=Decoupler(tile_name="cpu0"))

    def test_all_proxies_present(self):
        socket = Socket(tile_name="rt0", reconfigurable=True)
        assert set(socket.proxies()) == set(ProxyKind)

    def test_traffic_gated_by_decoupler(self):
        socket = Socket(tile_name="rt0", reconfigurable=True)
        assert socket.can_accept_traffic()
        socket.decoupler.decouple()
        assert not socket.can_accept_traffic()
        socket.decoupler.recouple()
        assert socket.can_accept_traffic()

    def test_static_socket_always_accepts(self):
        assert Socket(tile_name="mem0").can_accept_traffic()
