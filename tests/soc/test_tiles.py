"""Tests for the tile taxonomy."""

import pytest

from repro.errors import ConfigurationError
from repro.soc.esp_library import stock_accelerator
from repro.soc.tiles import (
    CPU_TILE_LUTS,
    CpuCore,
    RECONF_WRAPPER_LUTS,
    ReconfigurableTile,
    Tile,
    TileKind,
)


class TestStaticTiles:
    def test_cpu_tile_defaults_to_leon3(self):
        tile = Tile(kind=TileKind.CPU, name="cpu0")
        assert tile.cpu_core is CpuCore.LEON3

    def test_cpu_core_only_on_cpu_tiles(self):
        with pytest.raises(ConfigurationError):
            Tile(kind=TileKind.MEM, name="m", cpu_core=CpuCore.LEON3)

    def test_acc_tile_needs_accelerator(self):
        with pytest.raises(ConfigurationError):
            Tile(kind=TileKind.ACC, name="a")

    def test_non_acc_tile_rejects_accelerator(self):
        with pytest.raises(ConfigurationError):
            Tile(kind=TileKind.MEM, name="m", accelerator=stock_accelerator("mac"))

    def test_base_luts_cpu(self):
        tile = Tile(kind=TileKind.CPU, name="cpu0")
        assert tile.base_luts() == CPU_TILE_LUTS[CpuCore.LEON3]

    def test_base_luts_acc_is_ip_size(self):
        ip = stock_accelerator("gemm")
        tile = Tile(kind=TileKind.ACC, name="a", accelerator=ip)
        assert tile.base_luts() == ip.luts

    def test_all_static_kinds_report_static(self):
        assert Tile(kind=TileKind.MEM, name="m").is_static
        assert Tile(kind=TileKind.EMPTY, name="e").is_static


class TestReconfigurableTile:
    def test_needs_modes_or_cpu(self):
        with pytest.raises(ConfigurationError):
            ReconfigurableTile(name="rt", modes=[])

    def test_duplicate_modes_rejected(self):
        mac = stock_accelerator("mac")
        with pytest.raises(ConfigurationError):
            ReconfigurableTile(name="rt", modes=[mac, mac])

    def test_is_not_static(self):
        tile = ReconfigurableTile(name="rt", modes=[stock_accelerator("mac")])
        assert not tile.is_static

    def test_base_luts_is_an_error(self):
        tile = ReconfigurableTile(name="rt", modes=[stock_accelerator("mac")])
        with pytest.raises(ConfigurationError):
            tile.base_luts()

    def test_partition_resources_is_max_plus_wrapper(self):
        conv = stock_accelerator("conv2d")
        sort = stock_accelerator("sort")
        tile = ReconfigurableTile(name="rt", modes=[conv, sort])
        demand = tile.partition_resources()
        assert demand.lut == conv.luts + RECONF_WRAPPER_LUTS
        assert demand.bram == max(conv.resources.bram, sort.resources.bram)

    def test_synthesis_luts_is_sum_plus_wrapper(self):
        conv = stock_accelerator("conv2d")
        sort = stock_accelerator("sort")
        tile = ReconfigurableTile(name="rt", modes=[conv, sort])
        assert tile.synthesis_luts() == conv.luts + sort.luts + RECONF_WRAPPER_LUTS

    def test_host_cpu_adds_core(self):
        tile = ReconfigurableTile(name="rt", modes=[], host_cpu=True)
        assert tile.synthesis_luts() == CPU_TILE_LUTS[CpuCore.LEON3] + RECONF_WRAPPER_LUTS
        assert tile.partition_resources().lut >= CPU_TILE_LUTS[CpuCore.LEON3]

    def test_mode_names(self):
        tile = ReconfigurableTile(
            name="rt", modes=[stock_accelerator("fft"), stock_accelerator("mac")]
        )
        assert tile.mode_names() == ["fft", "mac"]
