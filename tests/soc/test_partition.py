"""Tests for static/reconfigurable partitioning."""

import pytest

from repro.errors import FlowError
from repro.soc.partition import partition_design


class TestPartitioning:
    def test_one_rp_per_reconf_tile(self, soc2):
        partition = partition_design(soc2)
        assert partition.num_rps == len(soc2.reconfigurable_tiles)

    def test_static_matches_config(self, soc2):
        partition = partition_design(soc2)
        assert partition.static.luts == soc2.static_luts()

    def test_rp_luts_match_config(self, soc2):
        partition = partition_design(soc2)
        assert partition.rp_luts() == soc2.reconfigurable_luts()

    def test_rp_lookup(self, soc2):
        partition = partition_design(soc2)
        rp = partition.rp_by_name(soc2.reconfigurable_tiles[0].name)
        assert rp.tile is soc2.reconfigurable_tiles[0]

    def test_rp_lookup_unknown(self, soc2):
        partition = partition_design(soc2)
        with pytest.raises(FlowError):
            partition.rp_by_name("missing")

    def test_demand_dominates_every_mode(self, socy):
        partition = partition_design(socy)
        for rp in partition.rps:
            for ip in rp.tile.modes:
                assert ip.resources.fits_in(rp.demand)

    def test_static_module_list_excludes_rp_contents(self, soc2):
        partition = partition_design(soc2)
        tile = soc2.reconfigurable_tiles[0]
        assert f"{tile.name}_wrapper" not in partition.static.module_names
        # The static socket of the reconfigurable tile stays static.
        assert f"{tile.name}_socket" in partition.static.module_names

    def test_mode_names_exposed(self, socy):
        partition = partition_design(socy)
        tile = socy.reconfigurable_tiles[0]
        rp = partition.rp_by_name(tile.name)
        assert rp.mode_names == tile.mode_names()
