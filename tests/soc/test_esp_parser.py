"""Tests for the esp_config text format."""

import pytest

from repro.errors import ConfigurationError
from repro.soc.esp_parser import (
    default_catalog,
    load_esp_config,
    parse_esp_config,
    render_esp_config,
)
from repro.soc.tiles import CpuCore, TileKind

VALID = """
[soc]
name = demo
board = vc707
rows = 2
cols = 3

[tile cpu0]
type = cpu
core = leon3

[tile mem0]
type = mem

[tile aux0]
type = aux

[tile rt0]
type = reconf
modes = fft, gemm
"""


class TestParsing:
    def test_valid_config(self):
        config = parse_esp_config(VALID)
        assert config.name == "demo"
        assert config.rows == 2 and config.cols == 3
        assert config.reconfigurable_tiles[0].mode_names() == ["fft", "gemm"]

    def test_cpu_core_parsed(self):
        config = parse_esp_config(VALID)
        assert config.tiles_of_kind(TileKind.CPU)[0].cpu_core is CpuCore.LEON3

    def test_wami_kernels_resolvable(self):
        text = VALID.replace("modes = fft, gemm", "modes = debayer, hessian")
        config = parse_esp_config(text)
        assert config.reconfigurable_tiles[0].mode_names() == ["debayer", "hessian"]

    def test_host_cpu(self):
        text = """
[soc]
name = hosted
board = vc707
rows = 2
cols = 2

[tile mem0]
type = mem

[tile aux0]
type = aux

[tile rt_cpu]
type = reconf
host_cpu = true
"""
        config = parse_esp_config(text)
        assert config.reconfigurable_tiles[0].host_cpu

    def test_missing_soc_section(self):
        with pytest.raises(ConfigurationError, match=r"\[soc\]"):
            parse_esp_config("[tile cpu0]\ntype = cpu\n")

    def test_missing_key(self):
        with pytest.raises(ConfigurationError, match="missing 'rows'"):
            parse_esp_config("[soc]\nname = x\nboard = vc707\ncols = 2\n")

    def test_unknown_accelerator(self):
        with pytest.raises(ConfigurationError, match="unknown accelerator"):
            parse_esp_config(VALID.replace("fft, gemm", "nvdla"))

    def test_unknown_tile_type(self):
        with pytest.raises(ConfigurationError, match="unknown tile type"):
            parse_esp_config(VALID.replace("type = mem", "type = gpu"))

    def test_unknown_section(self):
        with pytest.raises(ConfigurationError, match="unknown section"):
            parse_esp_config(VALID + "\n[power]\nbudget = 5\n")

    def test_malformed_text(self):
        with pytest.raises(ConfigurationError, match="malformed"):
            parse_esp_config("this is not ini [at all")

    def test_validation_still_applies(self):
        # No AUX tile -> the SocConfig invariants fire.
        text = VALID.replace("[tile aux0]\ntype = aux\n", "")
        with pytest.raises(ConfigurationError, match="auxiliary"):
            parse_esp_config(text)


class TestRendering:
    def test_round_trip(self):
        config = parse_esp_config(VALID)
        clone = parse_esp_config(render_esp_config(config))
        assert clone.name == config.name
        assert clone.static_luts() == config.static_luts()
        assert clone.reconfigurable_luts() == config.reconfigurable_luts()
        assert [t.kind for t in clone.tiles] == [t.kind for t in config.tiles]

    def test_round_trip_paper_design(self):
        from repro.core.designs import wami_soc_z

        config = wami_soc_z()
        clone = parse_esp_config(render_esp_config(config))
        assert clone.reconfigurable_luts() == config.reconfigurable_luts()
        assert [t.mode_names() for t in clone.reconfigurable_tiles] == [
            t.mode_names() for t in config.reconfigurable_tiles
        ]

    def test_round_trip_host_cpu(self):
        from repro.core.designs import soc_4

        clone = parse_esp_config(render_esp_config(soc_4()))
        assert any(t.host_cpu for t in clone.reconfigurable_tiles)


class TestFileLoading:
    def test_load_from_disk(self, tmp_path):
        path = tmp_path / "demo.esp_config"
        path.write_text(VALID)
        config = load_esp_config(path)
        assert config.name == "demo"

    def test_catalog_contains_both_families(self):
        catalog = default_catalog()
        assert "mac" in catalog and "conv2d" in catalog  # stock
        assert "debayer" in catalog and "lk_flow" in catalog  # WAMI
