"""Tests for RTL hierarchy generation and DPR rule checking."""


from repro.soc.rtl import Module, generate_rtl


class TestModuleTree:
    def test_walk_is_preorder(self):
        root = Module("root")
        a = root.add(Module("a"))
        a.add(Module("a1"))
        root.add(Module("b"))
        assert [m.name for m in root.walk()] == ["root", "a", "a1", "b"]

    def test_total_luts_sums_subtree(self):
        root = Module("root", luts=1)
        root.add(Module("a", luts=10)).add(Module("a1", luts=100))
        assert root.total_luts() == 111

    def test_find(self):
        root = Module("root")
        root.add(Module("needle"))
        assert root.find("needle") is not None
        assert root.find("missing") is None

    def test_reconfigurable_roots_do_not_nest(self):
        root = Module("root")
        wrapper = root.add(Module("w", reconfigurable=True))
        wrapper.add(Module("inner", reconfigurable=True))
        assert [m.name for m in root.reconfigurable_roots()] == ["w"]

    def test_static_luts_excludes_rp_subtrees(self):
        root = Module("root", luts=5)
        wrapper = root.add(Module("w", luts=100, reconfigurable=True))
        wrapper.add(Module("acc", luts=1000))
        assert root.static_luts() == 5
        assert root.total_luts() == 1105


class TestDprRules:
    def test_clock_modifier_inside_rp_flagged(self):
        root = Module("root")
        wrapper = root.add(Module("w", reconfigurable=True))
        wrapper.add(Module("pll", clock_modifying=True))
        violations = root.check_dpr_rules()
        assert len(violations) == 1
        assert "clock-modifying" in violations[0]

    def test_route_through_inside_rp_flagged(self):
        root = Module("root")
        wrapper = root.add(Module("w", reconfigurable=True))
        wrapper.add(Module("feedthrough", route_through=True))
        assert any("route-through" in v for v in root.check_dpr_rules())

    def test_clock_modifier_in_static_is_fine(self):
        root = Module("root")
        root.add(Module("pll", clock_modifying=True))
        root.add(Module("w", reconfigurable=True))
        assert root.check_dpr_rules() == []


class TestGeneratedHierarchy:
    def test_static_total_matches_config_accounting(self, soc2):
        rtl = generate_rtl(soc2)
        assert rtl.static_luts() == soc2.static_luts()

    def test_total_matches_design_total(self, soc2):
        rtl = generate_rtl(soc2)
        assert rtl.total_luts() == soc2.total_design_luts()

    def test_one_wrapper_per_reconf_tile(self, soc2):
        rtl = generate_rtl(soc2)
        roots = rtl.reconfigurable_roots()
        assert len(roots) == len(soc2.reconfigurable_tiles)

    def test_wrapper_holds_all_modes(self, socy):
        rtl = generate_rtl(socy)
        tile = socy.reconfigurable_tiles[0]
        wrapper = rtl.find(f"{tile.name}_wrapper")
        children = {m.name for m in wrapper.walk()} - {wrapper.name}
        for ip in tile.modes:
            assert f"{tile.name}_{ip.name}" in children

    def test_aux_tile_contains_dfx_controller(self, soc2):
        rtl = generate_rtl(soc2)
        assert rtl.find("aux0_dfx_controller") is not None
        assert rtl.find("aux0_icap_primitive") is not None

    def test_generated_tree_is_dpr_legal(self, soc2):
        assert generate_rtl(soc2).check_dpr_rules() == []

    def test_every_tile_has_a_socket(self, soc2):
        rtl = generate_rtl(soc2)
        for tile in soc2.tiles:
            assert rtl.find(f"{tile.name}_socket") is not None

    def test_reconf_socket_has_decoupler(self, soc2):
        rtl = generate_rtl(soc2)
        tile = soc2.reconfigurable_tiles[0]
        assert rtl.find(f"{tile.name}_decoupler") is not None
