"""Tests for the stock ESP accelerator catalog (Table II figures)."""

import pytest

from repro.errors import ConfigurationError
from repro.soc.esp_library import (
    AcceleratorIP,
    HlsFlow,
    LEON3_CORE_LUTS,
    STOCK_ACCELERATORS,
    stock_accelerator,
)
from repro.fabric.resources import ResourceVector


#: Published LUT counts of Table II.
TABLE_II = {"mac": 2450, "conv2d": 36741, "gemm": 30617, "fft": 33690, "sort": 20468}


class TestTable2Figures:
    @pytest.mark.parametrize("name,luts", sorted(TABLE_II.items()))
    def test_published_lut_counts(self, name, luts):
        assert stock_accelerator(name).luts == luts

    def test_leon3_core_size(self):
        assert LEON3_CORE_LUTS == 41544

    def test_mac_is_vivado_hls(self):
        assert stock_accelerator("mac").hls_flow is HlsFlow.VIVADO_HLS

    def test_stratus_accelerators(self):
        for name in ("conv2d", "gemm", "fft", "sort"):
            assert stock_accelerator(name).hls_flow is HlsFlow.STRATUS_HLS


class TestCatalog:
    def test_lookup_case_insensitive(self):
        assert stock_accelerator("MAC").name == "mac"

    def test_unknown_accelerator(self):
        with pytest.raises(ConfigurationError, match="unknown stock accelerator"):
            stock_accelerator("nvdla")

    def test_catalog_is_keyed_by_name(self):
        for name, ip in STOCK_ACCELERATORS.items():
            assert name == ip.name


class TestAcceleratorIP:
    def test_upper_case_name_rejected(self):
        with pytest.raises(ConfigurationError):
            AcceleratorIP(
                name="Mac", hls_flow=HlsFlow.RTL, resources=ResourceVector(lut=1)
            )

    def test_non_positive_throughput_rejected(self):
        with pytest.raises(ConfigurationError):
            AcceleratorIP(
                name="x",
                hls_flow=HlsFlow.RTL,
                resources=ResourceVector(lut=1),
                throughput_factor=0.0,
            )

    def test_negative_power_rejected(self):
        with pytest.raises(ConfigurationError):
            AcceleratorIP(
                name="x",
                hls_flow=HlsFlow.RTL,
                resources=ResourceVector(lut=1),
                dynamic_power_w=-0.1,
            )
