"""Tests for SoC configuration validation and size accounting."""

import pytest

from repro.errors import ConfigurationError
from repro.soc.config import SocConfig
from repro.soc.esp_library import (
    STATIC_WITH_CPU_LUTS,
    STATIC_WITHOUT_CPU_LUTS,
    stock_accelerator,
)
from repro.soc.tiles import ReconfigurableTile, Tile, TileKind


def trio():
    return [
        Tile(kind=TileKind.CPU, name="cpu0"),
        Tile(kind=TileKind.MEM, name="mem0"),
        Tile(kind=TileKind.AUX, name="aux0"),
    ]


def reconf(name="rt0", acc="mac"):
    return ReconfigurableTile(name=name, modes=[stock_accelerator(acc)])


class TestValidation:
    def test_assemble_pads_with_empty(self):
        cfg = SocConfig.assemble("s", "vc707", 2, 2, trio() + [reconf()])
        assert cfg.num_tiles == 4
        assert len(cfg.tiles_of_kind(TileKind.EMPTY)) == 0

    def test_assemble_overflow_rejected(self):
        with pytest.raises(ConfigurationError, match="fit"):
            SocConfig.assemble("s", "vc707", 1, 2, trio())

    def test_unknown_board_rejected(self):
        with pytest.raises(ConfigurationError, match="board"):
            SocConfig.assemble("s", "zynq", 2, 2, trio())

    def test_needs_exactly_one_aux(self):
        tiles = trio() + [Tile(kind=TileKind.AUX, name="aux1")]
        with pytest.raises(ConfigurationError, match="auxiliary"):
            SocConfig.assemble("s", "vc707", 2, 2, tiles)

    def test_needs_memory(self):
        tiles = [Tile(kind=TileKind.CPU, name="c"), Tile(kind=TileKind.AUX, name="a")]
        with pytest.raises(ConfigurationError, match="memory"):
            SocConfig.assemble("s", "vc707", 2, 2, tiles)

    def test_needs_processor(self):
        tiles = [
            Tile(kind=TileKind.MEM, name="m"),
            Tile(kind=TileKind.AUX, name="a"),
            reconf(),
        ]
        with pytest.raises(ConfigurationError, match="processor"):
            SocConfig.assemble("s", "vc707", 2, 2, tiles)

    def test_hosted_cpu_satisfies_processor_rule(self):
        tiles = [
            Tile(kind=TileKind.MEM, name="m"),
            Tile(kind=TileKind.AUX, name="a"),
            ReconfigurableTile(name="rt", modes=[], host_cpu=True),
        ]
        cfg = SocConfig.assemble("s", "vc707", 2, 2, tiles)
        assert cfg.reconfigurable_tiles[0].host_cpu

    def test_static_and_hosted_cpu_exclusive(self):
        tiles = trio() + [ReconfigurableTile(name="rt", modes=[], host_cpu=True)]
        with pytest.raises(ConfigurationError, match="exclusive"):
            SocConfig.assemble("s", "vc707", 2, 2, tiles)

    def test_duplicate_names_rejected(self):
        tiles = trio() + [Tile(kind=TileKind.MEM, name="mem0")]
        with pytest.raises(ConfigurationError, match="unique"):
            SocConfig.assemble("s", "vc707", 2, 3, tiles)

    def test_grid_size_mismatch(self):
        with pytest.raises(ConfigurationError, match="needs"):
            SocConfig(name="s", board="vc707", rows=2, cols=2, tiles=tuple(trio()))


class TestQueries:
    def test_tile_at_row_major(self):
        cfg = SocConfig.assemble("s", "vc707", 2, 2, trio() + [reconf()])
        assert cfg.tile_at(0, 0).name == "cpu0"
        assert cfg.tile_at(1, 1).name == "rt0"

    def test_position_of(self):
        cfg = SocConfig.assemble("s", "vc707", 2, 2, trio() + [reconf()])
        assert cfg.position_of("aux0") == (1, 0)

    def test_position_of_unknown(self):
        cfg = SocConfig.assemble("s", "vc707", 2, 2, trio() + [reconf()])
        with pytest.raises(ConfigurationError):
            cfg.position_of("nope")

    def test_static_and_reconf_split(self):
        cfg = SocConfig.assemble("s", "vc707", 2, 2, trio() + [reconf()])
        assert len(cfg.static_tiles) == 3
        assert len(cfg.reconfigurable_tiles) == 1


class TestSizeAccounting:
    """The calibration identities against Table II of the paper."""

    def test_3x3_static_with_cpu_matches_table2(self):
        tiles = trio() + [reconf(f"rt{i}", a) for i, a in enumerate(["conv2d", "gemm", "fft", "sort"])]
        cfg = SocConfig.assemble("s", "vc707", 3, 3, tiles)
        assert cfg.static_luts() == STATIC_WITH_CPU_LUTS  # 82,267

    def test_3x3_static_without_cpu_matches_table2(self):
        tiles = [
            Tile(kind=TileKind.MEM, name="mem0"),
            Tile(kind=TileKind.AUX, name="aux0"),
            ReconfigurableTile(name="rt_cpu", modes=[], host_cpu=True),
        ] + [reconf(f"rt{i}", a) for i, a in enumerate(["conv2d", "gemm", "fft", "sort"])]
        cfg = SocConfig.assemble("s", "vc707", 3, 3, tiles)
        assert cfg.static_luts() == STATIC_WITHOUT_CPU_LUTS  # 39,254

    def test_total_is_static_plus_rps(self):
        cfg = SocConfig.assemble("s", "vc707", 2, 2, trio() + [reconf()])
        assert cfg.total_design_luts() == cfg.static_luts() + sum(
            cfg.reconfigurable_luts()
        )


class TestSerialization:
    def test_round_trip(self):
        tiles = trio() + [
            ReconfigurableTile(
                name="rt0",
                modes=[stock_accelerator("conv2d"), stock_accelerator("sort")],
            )
        ]
        cfg = SocConfig.assemble("s", "vc707", 2, 2, tiles)
        clone = SocConfig.from_dict(cfg.to_dict())
        assert clone == cfg

    def test_round_trip_host_cpu(self):
        tiles = [
            Tile(kind=TileKind.MEM, name="m"),
            Tile(kind=TileKind.AUX, name="a"),
            ReconfigurableTile(name="rt", modes=[], host_cpu=True),
        ]
        cfg = SocConfig.assemble("s", "vc707", 2, 2, tiles)
        clone = SocConfig.from_dict(cfg.to_dict())
        assert clone.reconfigurable_tiles[0].host_cpu

    def test_round_trip_preserves_sizes(self, soc2):
        clone = SocConfig.from_dict(soc2.to_dict())
        assert clone.static_luts() == soc2.static_luts()
        assert clone.reconfigurable_luts() == soc2.reconfigurable_luts()
