"""Tests for the Group/Class taxonomy."""

import pytest
from hypothesis import given, strategies as st

from repro.core.classes import (
    DesignClass,
    DesignGroup,
    GammaBand,
    classify,
    gamma_band,
)
from repro.core.metrics import compute_metrics, metrics_from_sizes


class TestGammaBand:
    def test_bands(self):
        assert gamma_band(0.5) is GammaBand.BELOW
        assert gamma_band(1.0) is GammaBand.NEAR
        assert gamma_band(2.0) is GammaBand.ABOVE

    def test_band_edges(self):
        assert gamma_band(0.8) is GammaBand.NEAR
        assert gamma_band(1.15) is GammaBand.NEAR
        assert gamma_band(0.79) is GammaBand.BELOW
        assert gamma_band(1.16) is GammaBand.ABOVE

    def test_custom_band(self):
        assert gamma_band(1.3, low=0.5, high=1.5) is GammaBand.NEAR


class TestClassify:
    def test_class_1_1(self):
        m = metrics_from_sizes(80_000, [4_000] * 4, 300_000)
        assert classify(m).design_class is DesignClass.CLASS_1_1

    def test_class_1_2(self):
        m = metrics_from_sizes(80_000, [30_000] * 4, 300_000)
        assert classify(m).design_class is DesignClass.CLASS_1_2

    def test_class_1_3(self):
        m = metrics_from_sizes(80_000, [27_000] * 3, 300_000)
        assert classify(m).design_class is DesignClass.CLASS_1_3

    def test_class_2_1(self):
        m = metrics_from_sizes(40_000, [35_000] * 4, 300_000)
        assert classify(m).design_class is DesignClass.CLASS_2_1

    def test_class_2_2_single_tile(self):
        m = metrics_from_sizes(40_000, [40_000], 300_000)
        assert classify(m).design_class is DesignClass.CLASS_2_2

    def test_group_of_each_class(self):
        assert DesignClass.CLASS_1_1.group is DesignGroup.STATIC_DOMINANT
        assert DesignClass.CLASS_2_1.group is DesignGroup.RECONF_DOMINANT

    def test_classification_carries_metrics(self):
        m = metrics_from_sizes(80_000, [4_000] * 4, 300_000)
        result = classify(m)
        assert result.metrics is m
        assert result.gamma_band is GammaBand.BELOW

    @pytest.mark.parametrize(
        "name,expected",
        [
            ("soc_1", "1.1"),
            ("soc_2", "1.2"),
            ("soc_3", "1.3"),
            ("soc_4", "2.1"),
            ("soc_a", "1.2"),
            ("soc_b", "1.1"),
            ("soc_c", "1.3"),
            ("soc_d", "2.1"),
        ],
    )
    def test_paper_designs_classify_as_published(self, name, expected, all_paper_socs):
        m = compute_metrics(all_paper_socs[name])
        assert classify(m).design_class.value == expected


class TestProperties:
    sizes = st.tuples(
        st.integers(1_000, 200_000),
        st.lists(st.integers(500, 100_000), min_size=1, max_size=16),
    )

    @given(sizes)
    def test_always_produces_a_class(self, pair):
        static, rps = pair
        m = metrics_from_sizes(static, rps, 302_400)
        assert classify(m).design_class in DesignClass

    @given(sizes)
    def test_group_consistent_with_class(self, pair):
        static, rps = pair
        m = metrics_from_sizes(static, rps, 302_400)
        result = classify(m)
        assert result.design_class.group is result.group

    @given(sizes)
    def test_multi_tile_group2_never_class_22(self, pair):
        static, rps = pair
        m = metrics_from_sizes(static, rps, 302_400)
        result = classify(m)
        if len(rps) > 1:
            assert result.design_class is not DesignClass.CLASS_2_2
