"""Tests for the paper's evaluation SoC definitions."""


from repro.core.designs import (
    WAMI_FLOW_SOC_ACCS,
    WAMI_TILE_ALLOCATION,
    characterization_socs,
    wami_deployment_socs,
    wami_parallelism_socs,
)
from repro.soc.tiles import TileKind
from repro.wami.graph import WamiStage


class TestCharacterizationSocs:
    def test_soc1_shape(self):
        cfg = characterization_socs()["soc_1"]
        assert (cfg.rows, cfg.cols) == (4, 5)
        assert len(cfg.reconfigurable_tiles) == 16
        assert all(t.mode_names() == ["mac"] for t in cfg.reconfigurable_tiles)

    def test_soc2_accelerators(self):
        cfg = characterization_socs()["soc_2"]
        modes = sorted(m for t in cfg.reconfigurable_tiles for m in t.mode_names())
        assert modes == ["conv2d", "fft", "gemm", "sort"]

    def test_soc3_drops_fft(self):
        cfg = characterization_socs()["soc_3"]
        modes = sorted(m for t in cfg.reconfigurable_tiles for m in t.mode_names())
        assert modes == ["conv2d", "gemm", "sort"]

    def test_soc4_hosts_cpu_in_rp(self):
        cfg = characterization_socs()["soc_4"]
        assert not cfg.tiles_of_kind(TileKind.CPU)
        assert any(t.host_cpu for t in cfg.reconfigurable_tiles)

    def test_static_trio_everywhere_else(self):
        for name in ("soc_1", "soc_2", "soc_3"):
            cfg = characterization_socs()[name]
            assert len(cfg.tiles_of_kind(TileKind.CPU)) == 1
            assert len(cfg.tiles_of_kind(TileKind.MEM)) == 1
            assert len(cfg.tiles_of_kind(TileKind.AUX)) == 1


class TestWamiFlowSocs:
    def test_table4_accelerator_sets(self):
        socs = wami_parallelism_socs()
        for name, indexes in WAMI_FLOW_SOC_ACCS.items():
            cfg = socs[name]
            hosted = {
                m for t in cfg.reconfigurable_tiles for m in t.mode_names()
            }
            expected = {WamiStage.from_index(i).kernel_name for i in indexes}
            assert hosted == expected, name

    def test_soc_d_is_cpu_hosted(self):
        cfg = wami_parallelism_socs()["soc_d"]
        assert any(t.host_cpu for t in cfg.reconfigurable_tiles)
        assert len(cfg.reconfigurable_tiles) == 5

    def test_all_are_3x3_vc707(self):
        for cfg in wami_parallelism_socs().values():
            assert (cfg.rows, cfg.cols) == (3, 3)
            assert cfg.board == "vc707"


class TestWamiDeploymentSocs:
    def test_tile_counts(self):
        socs = wami_deployment_socs()
        assert len(socs["soc_x"].reconfigurable_tiles) == 2
        assert len(socs["soc_y"].reconfigurable_tiles) == 3
        assert len(socs["soc_z"].reconfigurable_tiles) == 4

    def test_table6_allocation(self):
        socs = wami_deployment_socs()
        for name, allocation in WAMI_TILE_ALLOCATION.items():
            cfg = socs[name]
            for tile, indexes in zip(cfg.reconfigurable_tiles, allocation):
                expected = [WamiStage.from_index(i).kernel_name for i in indexes]
                assert tile.mode_names() == expected

    def test_soc_z_covers_all_stages(self):
        cfg = wami_deployment_socs()["soc_z"]
        hosted = {m for t in cfg.reconfigurable_tiles for m in t.mode_names()}
        assert hosted == {s.kernel_name for s in WamiStage}

    def test_soc_x_leaves_change_detection_in_software(self):
        """Table VI's SoC_X allocation covers indexes 1..11 only."""
        cfg = wami_deployment_socs()["soc_x"]
        hosted = {m for t in cfg.reconfigurable_tiles for m in t.mode_names()}
        assert WamiStage.CHANGE_DETECTION.kernel_name not in hosted

    def test_static_trio(self):
        for cfg in wami_deployment_socs().values():
            assert len(cfg.tiles_of_kind(TileKind.CPU)) == 1
