"""Tests for the Eq. 1 design metrics."""

import pytest
from hypothesis import given, strategies as st

from repro.core.metrics import compute_metrics, metrics_from_sizes
from repro.errors import ConfigurationError


class TestFormulas:
    def test_kappa(self):
        m = metrics_from_sizes(82267, [100], 303600)
        assert m.kappa == pytest.approx(82267 / 303600)

    def test_alpha_av(self):
        m = metrics_from_sizes(1000, [100, 300], 10000)
        assert m.alpha_av == pytest.approx(400 / (2 * 10000))

    def test_gamma(self):
        m = metrics_from_sizes(1000, [400, 600], 10000)
        assert m.gamma == pytest.approx(1.0)

    def test_num_rps_and_total(self):
        m = metrics_from_sizes(1000, [1, 2, 3], 10000)
        assert m.num_rps == 3
        assert m.total_rp_luts == 6

    def test_summary_format(self):
        m = metrics_from_sizes(1000, [500], 10000)
        text = m.summary()
        assert "kappa=10.0%" in text and "gamma=0.50" in text


class TestValidation:
    def test_zero_static_rejected(self):
        with pytest.raises(ConfigurationError):
            metrics_from_sizes(0, [1], 100)

    def test_empty_rps_rejected(self):
        with pytest.raises(ConfigurationError):
            metrics_from_sizes(10, [], 100)

    def test_zero_rp_rejected(self):
        with pytest.raises(ConfigurationError):
            metrics_from_sizes(10, [0], 100)

    def test_zero_device_rejected(self):
        with pytest.raises(ConfigurationError):
            metrics_from_sizes(10, [1], 0)


class TestFromConfig:
    def test_monolithic_design_rejected(self, small_soc):
        from repro.soc.config import SocConfig
        from repro.soc.tiles import Tile, TileKind

        cfg = SocConfig.assemble(
            "mono",
            "vc707",
            2,
            2,
            [
                Tile(kind=TileKind.CPU, name="c"),
                Tile(kind=TileKind.MEM, name="m"),
                Tile(kind=TileKind.AUX, name="a"),
            ],
        )
        with pytest.raises(ConfigurationError, match="no reconfigurable"):
            compute_metrics(cfg)

    def test_matches_config_accounting(self, soc2):
        m = compute_metrics(soc2)
        assert m.static_luts == soc2.static_luts()
        assert list(m.rp_luts) == soc2.reconfigurable_luts()
        assert m.device_luts == soc2.device().capacity().lut

    def test_paper_metrics_reproduced(self, all_paper_socs):
        """κ/α_av/γ of all eight designs stay near the published values."""
        published = {
            # name: (kappa %, alpha_av %, gamma)
            "soc_1": (27.0, 0.8, 0.48),
            "soc_2": (27.2, 10.1, 1.47),
            "soc_3": (27.1, 9.6, 1.07),
            "soc_4": (11.5, 10.8, 4.1),
            "soc_a": (29.1, 9.2, 1.26),
            "soc_b": (28.3, 4.5, 0.6),
            "soc_c": (28.2, 5.5, 0.97),
            # soc_d's published alpha_av (23.5) is inconsistent with its
            # own kappa/gamma; we track kappa and gamma only.
            "soc_d": (12.2, None, 2.4),
        }
        for name, (kappa, alpha, gamma) in published.items():
            m = compute_metrics(all_paper_socs[name])
            assert m.kappa * 100 == pytest.approx(kappa, abs=2.0), name
            assert m.gamma == pytest.approx(gamma, rel=0.15), name
            if alpha is not None:
                assert m.alpha_av * 100 == pytest.approx(alpha, abs=1.5), name


class TestGammaIdentity:
    @given(
        st.integers(1, 10**6),
        st.lists(st.integers(1, 10**5), min_size=1, max_size=20),
        st.integers(10**6, 10**7),
    )
    def test_group2_gamma_below_one_impossible(self, static, rps, device):
        """The paper's observation: if κ <= α_av then γ >= 1 cannot be
        violated — when the static part is no bigger than the average
        tile, the tile sum must reach it."""
        m = metrics_from_sizes(static, rps, device)
        if m.kappa <= m.alpha_av:
            assert m.gamma >= 1.0
