"""Tests for the Table-I strategy choice."""

import pytest

from repro.core.classes import DesignClass
from repro.core.metrics import compute_metrics, metrics_from_sizes
from repro.core.strategy import ImplementationStrategy, choose_strategy
from repro.vivado.runtime_model import CALIBRATED_MODEL


def metrics_of_class(cls: DesignClass):
    table = {
        DesignClass.CLASS_1_1: (80_000, [4_000] * 4),
        DesignClass.CLASS_1_2: (80_000, [30_000] * 4),
        DesignClass.CLASS_1_3: (80_000, [27_000] * 3),
        DesignClass.CLASS_2_1: (40_000, [35_000] * 4),
        DesignClass.CLASS_2_2: (40_000, [40_000]),
    }
    static, rps = table[cls]
    return metrics_from_sizes(static, rps, 300_000)


class TestTableOne:
    def test_class_11_serial(self):
        decision = choose_strategy(metrics_of_class(DesignClass.CLASS_1_1))
        assert decision.strategy is ImplementationStrategy.SERIAL
        assert decision.tau == 1

    def test_class_13_semi_parallel(self):
        decision = choose_strategy(metrics_of_class(DesignClass.CLASS_1_3))
        assert decision.strategy is ImplementationStrategy.SEMI_PARALLEL
        assert decision.tau == 2

    def test_class_21_fully_parallel(self):
        decision = choose_strategy(metrics_of_class(DesignClass.CLASS_2_1))
        assert decision.strategy is ImplementationStrategy.FULLY_PARALLEL
        assert decision.tau == 4

    def test_class_22_serial(self):
        decision = choose_strategy(metrics_of_class(DesignClass.CLASS_2_2))
        assert decision.strategy is ImplementationStrategy.SERIAL

    def test_class_12_defaults_fully_parallel(self):
        decision = choose_strategy(metrics_of_class(DesignClass.CLASS_1_2))
        assert decision.strategy is ImplementationStrategy.FULLY_PARALLEL
        assert decision.estimated_semi_minutes is None

    def test_class_12_with_estimator_records_estimates(self):
        decision = choose_strategy(
            metrics_of_class(DesignClass.CLASS_1_2),
            estimator=CALIBRATED_MODEL.strategy_estimator(),
        )
        assert decision.estimated_semi_minutes is not None
        assert decision.estimated_fully_minutes is not None
        assert decision.strategy in (
            ImplementationStrategy.FULLY_PARALLEL,
            ImplementationStrategy.SEMI_PARALLEL,
        )

    def test_class_12_estimator_tie_break_picks_faster(self):
        def estimator(metrics, strategy):
            return (
                10.0 if strategy is ImplementationStrategy.SEMI_PARALLEL else 20.0
            )

        decision = choose_strategy(
            metrics_of_class(DesignClass.CLASS_1_2), estimator=estimator
        )
        assert decision.strategy is ImplementationStrategy.SEMI_PARALLEL

    def test_semi_tau_clamped_to_rp_count(self):
        metrics = metrics_from_sizes(80_000, [27_000, 27_000], 300_000)
        decision = choose_strategy(metrics, semi_tau=5)
        if decision.strategy is ImplementationStrategy.SEMI_PARALLEL:
            assert decision.tau <= 2


class TestPaperDecisions:
    """PR-ESP's published choices (bold columns of Tables III/IV)."""

    EXPECTED = {
        "soc_1": ImplementationStrategy.SERIAL,
        "soc_2": ImplementationStrategy.FULLY_PARALLEL,
        "soc_3": ImplementationStrategy.SEMI_PARALLEL,
        "soc_4": ImplementationStrategy.FULLY_PARALLEL,
        "soc_a": ImplementationStrategy.FULLY_PARALLEL,
        "soc_b": ImplementationStrategy.SERIAL,
        "soc_c": ImplementationStrategy.SEMI_PARALLEL,
        "soc_d": ImplementationStrategy.FULLY_PARALLEL,
    }

    @pytest.mark.parametrize("name", sorted(EXPECTED))
    def test_choice_matches_paper(self, name, all_paper_socs):
        metrics = compute_metrics(all_paper_socs[name])
        decision = choose_strategy(
            metrics, estimator=CALIBRATED_MODEL.strategy_estimator()
        )
        assert decision.strategy is self.EXPECTED[name], name
