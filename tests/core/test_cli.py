"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import main, paper_designs, resolve_config


class TestResolve:
    def test_known_design(self):
        assert resolve_config("soc_2").name == "soc_2"

    def test_esp_config_file(self, tmp_path):
        path = tmp_path / "x.esp_config"
        path.write_text(
            "[soc]\nname = filecfg\nboard = vc707\nrows = 2\ncols = 2\n\n"
            "[tile cpu0]\ntype = cpu\n\n[tile mem0]\ntype = mem\n\n"
            "[tile aux0]\ntype = aux\n\n[tile rt0]\ntype = reconf\nmodes = mac\n"
        )
        assert resolve_config(str(path)).name == "filecfg"

    def test_unknown_spec(self):
        from repro.errors import PrEspError

        with pytest.raises(PrEspError):
            resolve_config("not_a_design")

    def test_all_eleven_designs_present(self):
        assert len(paper_designs()) == 11


class TestCommands:
    def test_designs(self, capsys):
        assert main(["designs"]) == 0
        out = capsys.readouterr().out
        for name in ("soc_1", "soc_d", "soc_z"):
            assert name in out

    def test_build(self, capsys):
        assert main(["build", "soc_3"]) == 0
        out = capsys.readouterr().out
        assert "PR-ESP flow report: soc_3" in out
        assert "semi-parallel" in out

    def test_build_with_strategy_override(self, capsys):
        assert main(["build", "soc_3", "--strategy", "serial"]) == 0
        out = capsys.readouterr().out
        assert "strategy: serial" in out

    def test_build_with_baseline(self, capsys):
        assert main(["build", "soc_3", "--baseline"]) == 0
        assert "monolithic" in capsys.readouterr().out

    def test_compare(self, capsys):
        assert main(["compare", "soc_d"]) == 0
        out = capsys.readouterr().out
        assert "improvement" in out

    def test_deploy(self, capsys):
        assert main(["deploy", "soc_z", "--frames", "2"]) == 0
        out = capsys.readouterr().out
        assert "frame latency" in out
        assert "reconfigs" in out

    def test_profile_by_name(self, capsys):
        assert main(["profile", "hessian"]) == 0
        assert "38000" in capsys.readouterr().out

    def test_profile_by_index(self, capsys):
        assert main(["profile", "8"]) == 0
        assert "hessian" in capsys.readouterr().out

    def test_profile_unknown(self, capsys):
        assert main(["profile", "quantum"]) == 1
        assert "error:" in capsys.readouterr().err

    def test_model(self, capsys):
        assert main(["model"]) == 0
        out = capsys.readouterr().out
        assert "serial_dpr_par" in out
        assert "reconfigurable-LUT weight" in out

    def test_unknown_design_is_an_error(self, capsys):
        assert main(["build", "soc_zz"]) == 1
        assert "error:" in capsys.readouterr().err


class TestCheckCommand:
    def test_check_clean_design(self, capsys):
        assert main(["check", "soc_x"]) == 0
        assert "no advisory findings" in capsys.readouterr().out

    def test_check_dense_design(self, capsys):
        assert main(["check", "soc_4"]) == 0
        out = capsys.readouterr().out
        assert "reconf-density" in out
        assert "memory-bottleneck" in out

    def test_build_json(self, capsys):
        import json

        assert main(["build", "soc_3", "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["soc"] == "soc_3"
        assert data["strategy"] == "semi-parallel"


class TestObservabilityFlags:
    def test_deploy_json_carries_runtime_and_metrics(self, capsys):
        import json

        assert main(["deploy", "soc_z", "--frames", "2", "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["soc"] == "soc_z"
        assert data["reconfigurations"] > 0
        assert data["runtime"]["total_invocations"] > 0
        assert any(key.startswith("runtime.") for key in data["metrics"])

    def test_deploy_trace_writes_chrome_file(self, capsys, tmp_path):
        import json

        path = tmp_path / "run.json"
        assert main(["deploy", "soc_z", "--frames", "1", "--trace", str(path)]) == 0
        doc = json.loads(path.read_text())
        categories = {
            e["cat"] for e in doc["traceEvents"] if e["ph"] == "X"
        }
        assert "kernel.icap" in categories
        assert "app.exec" in categories

    def test_deploy_metrics_prints_snapshot(self, capsys):
        assert main(["deploy", "soc_z", "--frames", "1", "--metrics"]) == 0
        out = capsys.readouterr().out
        assert "runtime.invocations" in out
        assert "noc.bytes" in out

    def test_build_trace_writes_flow_file(self, capsys, tmp_path):
        import json

        path = tmp_path / "flow.json"
        assert main(["build", "soc_3", "--trace", str(path)]) == 0
        doc = json.loads(path.read_text())
        categories = {
            e["cat"] for e in doc["traceEvents"] if e["ph"] == "X"
        }
        assert {"flow.build", "flow.stage", "flow.job"} <= categories

    def test_verbosity_flags_accepted(self, capsys):
        assert main(["-v", "designs"]) == 0
        capsys.readouterr()
        assert main(["--log-level", "debug", "designs"]) == 0


class TestSweep:
    def test_sweep_table(self, capsys):
        assert main(["sweep", "soc_a", "--strategies", "all"]) == 0
        out = capsys.readouterr().out
        for label in (
            "soc_a/auto",
            "soc_a/serial",
            "soc_a/semi-parallel",
            "soc_a/fully-parallel",
        ):
            assert label in out

    def test_sweep_json(self, capsys):
        import json

        assert main(["sweep", "soc_a", "soc_b", "--json"]) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["schema_version"] == 1
        assert document["kind"] == "sweep"
        rows = document["outcomes"]
        assert [row["request"] for row in rows] == ["soc_a/auto", "soc_b/auto"]
        assert all(row["ok"] for row in rows)
        assert all("summary" in row for row in rows)

    def test_sweep_strategy_list(self, capsys):
        assert main(["sweep", "soc_b", "--strategies", "serial,fully-parallel"]) == 0
        out = capsys.readouterr().out
        assert "soc_b/serial" in out
        assert "soc_b/auto" not in out

    def test_sweep_cache_round_trip(self, capsys, tmp_path):
        args = ["sweep", "soc_a", "--cache", "--cache-dir", str(tmp_path)]
        assert main(args) == 0
        first = capsys.readouterr().out
        assert "built" in first
        assert main(args) == 0
        second = capsys.readouterr().out
        assert "cached" in second
        assert "1 hits" in second

    def test_sweep_unknown_design_fails(self, capsys):
        assert main(["sweep", "nope"]) == 1
        assert "error" in capsys.readouterr().err

    def test_build_cache_flag(self, capsys, tmp_path):
        args = ["build", "soc_3", "--cache", "--cache-dir", str(tmp_path)]
        assert main(args) == 0
        assert "flow cache" not in capsys.readouterr().out
        assert main(args) == 0
        assert "served from the flow cache" in capsys.readouterr().out

    def test_sweep_unknown_strategy_fails_cleanly(self, capsys):
        assert main(["sweep", "soc_a", "--strategies", "bogus"]) == 1
        assert "unknown strategy" in capsys.readouterr().err


class TestFaultFlags:
    def test_degraded_build_exits_zero(self, capsys):
        assert main(
            ["build", "soc_3", "--inject-cad-fault", "synthesis:synth_rt_sort:3"]
        ) == 0
        out = capsys.readouterr().out
        assert "DEGRADED: dark tiles rt_sort" in out
        assert "rt_sort_blank.pbs" in out

    def test_fault_rate_retries_show_in_json(self, capsys):
        assert main(
            ["build", "soc_3", "--fault-rate", "0.5", "--fault-seed", "0", "--json"]
        ) == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["fault_tolerance"]["retries"] > 0

    def test_bad_injection_spec_fails_cleanly(self, capsys):
        assert main(["build", "soc_3", "--inject-cad-fault", "nocolon"]) == 1
        assert "inject-cad-fault" in capsys.readouterr().err

    def test_fault_rate_out_of_range_fails_cleanly(self, capsys):
        assert main(["build", "soc_3", "--fault-rate", "1.5"]) == 1
        assert "fault-rate" in capsys.readouterr().err

    def test_resume_without_checkpoint_dir_fails_cleanly(self, capsys):
        assert main(["build", "soc_3", "--resume"]) == 1
        assert "checkpoint" in capsys.readouterr().err


class TestCheckpointFlags:
    def test_checkpoint_then_resume_matches(self, capsys, tmp_path):
        ckpt = str(tmp_path / "ckpt")
        assert main(["build", "soc_3", "--checkpoint-dir", ckpt, "--json"]) == 0
        first = json.loads(capsys.readouterr().out)
        assert main(
            ["build", "soc_3", "--checkpoint-dir", ckpt, "--resume", "--json"]
        ) == 0
        resumed = json.loads(capsys.readouterr().out)
        assert resumed == first

    def test_resume_reports_restored_stages(self, capsys, tmp_path):
        ckpt = str(tmp_path / "ckpt")
        assert main(["build", "soc_3", "--checkpoint-dir", ckpt]) == 0
        capsys.readouterr()
        assert main(["build", "soc_3", "--checkpoint-dir", ckpt, "--resume"]) == 0
        assert "resumed 7 checkpointed stage(s)" in capsys.readouterr().out
