"""Tests for the ``repro.api`` facade and the deprecated-kwarg shims."""

import pytest

import repro.api as presp
from repro.core.platform import BuildResult, PrEspPlatform, WamiRunReport
from repro.core.strategy import ImplementationStrategy
from repro.errors import ConfigurationError
from repro.flow.batch import BuildRequest
from repro.flow.cache import FlowCache
from repro.flow.options import BuildOptions
from repro.obs.events import EventBus
from repro.obs.instrumentation import Instrumentation
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import Tracer


class TestFacade:
    def test_build_returns_build_result(self, small_soc):
        result = presp.build(small_soc)
        assert isinstance(result, BuildResult)
        assert result.flow.config.name == "small"
        assert result.flow.degraded is False

    def test_build_honors_strategy_and_baseline(self, small_soc):
        result = presp.build(
            small_soc,
            strategy=ImplementationStrategy.SERIAL,
            with_baseline=True,
        )
        assert result.flow.strategy is ImplementationStrategy.SERIAL
        assert result.baseline is not None

    def test_shared_platform_reuses_the_cache(self, small_soc):
        platform = presp.platform(options=BuildOptions(cache=FlowCache()))
        first = presp.build(small_soc, platform=platform)
        second = presp.build(small_soc, platform=platform)
        assert first.cached is False
        assert second.cached is True

    def test_platform_excludes_options_and_instrumentation(self, small_soc):
        platform = presp.platform()
        with pytest.raises(ConfigurationError, match="not both"):
            presp.build(small_soc, platform=platform, options=BuildOptions())
        with pytest.raises(ConfigurationError, match="not both"):
            presp.build(
                small_soc, platform=platform, instrumentation=Instrumentation()
            )

    def test_build_many(self, small_soc, soc2):
        outcomes = presp.build_many(
            [BuildRequest(config=small_soc), BuildRequest(config=soc2)]
        )
        assert [o.ok for o in outcomes] == [True, True]

    def test_compare(self, small_soc):
        flow, mono = presp.compare(small_soc)
        assert flow.config.name == mono.config.name == "small"
        assert mono.total_minutes > 0

    def test_deploy(self, socy):
        report = presp.deploy(socy, frames=1)
        assert isinstance(report, WamiRunReport)
        assert report.frames == 1
        assert report.reconfigurations > 0

    def test_deploy_threads_instrumentation(self, socy):
        tracer = Tracer()
        metrics = MetricsRegistry()
        presp.deploy(
            socy,
            frames=1,
            instrumentation=Instrumentation(tracer=tracer, metrics=metrics),
        )
        assert len(tracer.spans) > 0
        assert metrics.snapshot()

    def test_monitor(self, socy):
        report, health, bus = presp.monitor(socy, frames=1)
        assert report.frames == 1
        assert health.verdict.exit_code == 0
        assert len(bus) > 0

    def test_resume_needs_checkpoint_dir(self, small_soc):
        with pytest.raises(ConfigurationError, match="checkpoint"):
            presp.build(small_soc, options=BuildOptions(resume=True))

    def test_build_resume_round_trip(self, small_soc, tmp_path):
        options = BuildOptions(checkpoint_dir=tmp_path / "ckpt")
        first = presp.build(small_soc, options=options)
        resumed = presp.build(small_soc, options=options, resume=True)
        assert resumed.flow.resumed_stages != ()
        assert (
            resumed.flow.to_summary_dict() == first.flow.to_summary_dict()
        )


class TestRetiredKwargs:
    """The deprecation-era kwarg shims are gone: clear TypeErrors now.

    BuildOptions / Instrumentation are the only style; these tests pin
    that the old spellings fail loudly instead of silently doing
    something else.
    """

    def test_platform_cache_jobs_kwargs_are_rejected(self):
        with pytest.raises(TypeError, match="cache"):
            PrEspPlatform(cache=FlowCache(), jobs=2)

    def test_platform_new_style_still_works(self, small_soc):
        cache = FlowCache()
        platform = PrEspPlatform(options=BuildOptions(cache=cache, jobs=2))
        assert platform.cache is cache
        assert platform.options.jobs == 2
        assert platform.build(small_soc).flow.config.name == "small"

    def test_build_tracer_kwarg_is_rejected(self, small_soc):
        platform = PrEspPlatform()
        with pytest.raises(TypeError, match="tracer"):
            platform.build(small_soc, tracer=Tracer(time_unit="min"))

    def test_build_instrumentation_tracer_still_works(self, small_soc):
        tracer = Tracer(time_unit="min")
        platform = PrEspPlatform(
            instrumentation=Instrumentation(tracer=tracer)
        )
        platform.build(small_soc)
        assert len(tracer.spans) > 0

    def test_deploy_trio_kwargs_are_rejected(self, socy):
        platform = PrEspPlatform()
        with pytest.raises(TypeError, match="events"):
            platform.deploy_wami(socy, frames=1, events=EventBus())

    def test_deploy_instrumentation_bus_still_works(self, socy):
        platform = PrEspPlatform()
        bus = EventBus()
        report = platform.deploy_wami(
            socy, frames=1, instrumentation=Instrumentation(events=bus)
        )
        assert report.frames == 1
        assert len(bus) > 0


class TestBuildOptionsValidation:
    def test_jobs_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            BuildOptions(jobs=0)

    def test_resume_requires_checkpoint_dir(self):
        with pytest.raises(ConfigurationError):
            BuildOptions(resume=True)
