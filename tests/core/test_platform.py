"""Tests for the PrEspPlatform facade."""

import pytest

from repro.core.platform import PrEspPlatform
from repro.core.strategy import ImplementationStrategy
from repro.errors import ConfigurationError
from repro.wami.graph import WamiStage


@pytest.fixture(scope="module")
def platform():
    return PrEspPlatform()


class TestBuild:
    def test_build_returns_flow_result(self, platform, small_soc):
        result = platform.build(small_soc)
        assert result.flow.config is small_soc
        assert result.baseline is None
        assert result.speedup_vs_baseline is None

    def test_build_with_baseline(self, platform, small_soc):
        result = platform.build(small_soc, with_baseline=True)
        assert result.baseline is not None
        assert result.speedup_vs_baseline > 0

    def test_strategy_override(self, platform, soc2):
        result = platform.build(
            soc2, strategy_override=ImplementationStrategy.SERIAL
        )
        assert result.flow.strategy is ImplementationStrategy.SERIAL

    def test_compare_with_monolithic(self, platform, small_soc):
        presp, mono = platform.compare_with_monolithic(small_soc)
        assert presp.config.name == mono.config.name


class TestProfiling:
    def test_profile_wami_returns_fig3_quantities(self, platform):
        profile = platform.profile_wami(WamiStage.DEBAYER)
        assert profile.luts == 12000
        assert profile.exec_time_s == pytest.approx(0.007)
        assert profile.partial_bitstream_kib > 50
        assert profile.region_kluts >= profile.luts / 1000.0

    def test_profiles_are_distinct_across_stages(self, platform):
        a = platform.profile_wami(WamiStage.GRAYSCALE)
        b = platform.profile_wami(WamiStage.HESSIAN)
        assert a.luts != b.luts
        assert a.partial_bitstream_kib != b.partial_bitstream_kib


class TestDeployment:
    def test_deploy_runs_frames(self, platform):
        from repro.core.designs import wami_soc_z

        report = platform.deploy_wami(wami_soc_z(), frames=2)
        assert report.frames == 2
        assert report.seconds_per_frame > 0
        assert report.joules_per_frame > 0
        assert report.reconfigurations > 0

    def test_deploy_zero_frames_rejected(self, platform):
        from repro.core.designs import wami_soc_z

        with pytest.raises(ConfigurationError):
            platform.deploy_wami(wami_soc_z(), frames=0)

    def test_deploy_reuses_flow_result(self, platform):
        from repro.core.designs import wami_soc_z

        config = wami_soc_z()
        flow_result = platform.flow.build(config)
        report = platform.deploy_wami(config, flow_result=flow_result, frames=1)
        assert report.config is config

    def test_deploy_rejects_mismatched_flow_result(self, platform):
        from repro.core.designs import wami_soc_y, wami_soc_z

        flow_result = platform.flow.build(wami_soc_y())
        with pytest.raises(ConfigurationError, match="different SoC"):
            platform.deploy_wami(wami_soc_z(), flow_result=flow_result)

    def test_software_stages_reported(self, platform):
        from repro.core.designs import wami_soc_x

        report = platform.deploy_wami(wami_soc_x(), frames=1)
        assert WamiStage.CHANGE_DETECTION in report.software_stages


class TestRuntimeStatsIntegration:
    def test_deploy_attaches_stats(self, platform):
        from repro.core.designs import wami_soc_z

        report = platform.deploy_wami(wami_soc_z(), frames=2)
        stats = report.runtime_stats
        assert stats is not None
        assert stats.total_reconfigurations == report.reconfigurations
        assert stats.icap_utilization > 0
        assert set(stats.tiles) == {
            t.name for t in report.config.reconfigurable_tiles
        }
