"""Tests for energy accounting over execution timelines."""

import pytest

from repro.energy.measure import measure_energy
from repro.energy.power import PowerModel
from repro.errors import ConfigurationError
from repro.runtime.executor import ExecutionTimeline, TimelineEvent


def timeline(events, makespan):
    return ExecutionTimeline(events=list(events), makespan_s=makespan)


MODEL = PowerModel(
    static_w_per_klut=0.01,
    region_w_per_klut=0.02,
    board_w=1.0,
    cpu_active_w=2.0,
    reconfig_w=0.5,
)


def exec_event(task, start, end, worker="rt0"):
    return TimelineEvent(task=task, worker=worker, kind="exec", start_s=start, end_s=end)


class TestAccounting:
    def test_baseline_energy(self):
        report = measure_energy(
            timeline([], 2.0),
            frames=1,
            static_kluts=100.0,
            region_kluts={"rt0": 50.0},
            mode_power_w={},
            task_modes={},
            model=MODEL,
        )
        expected_power = 1.0 + 0.01 * 100 + 0.02 * 50
        assert report.baseline_j == pytest.approx(expected_power * 2.0)
        assert report.total_j == pytest.approx(report.baseline_j)

    def test_dynamic_energy(self):
        report = measure_energy(
            timeline([exec_event("t", 0.0, 1.0)], 2.0),
            frames=1,
            static_kluts=1.0,
            region_kluts={},
            mode_power_w={"fft": 3.0},
            task_modes={"t": "fft"},
            model=MODEL,
        )
        assert report.dynamic_j == pytest.approx(3.0)

    def test_software_energy(self):
        event = TimelineEvent(task="sw", worker="cpu", kind="sw", start_s=0, end_s=0.5)
        report = measure_energy(
            timeline([event], 1.0),
            frames=1,
            static_kluts=1.0,
            region_kluts={},
            mode_power_w={},
            task_modes={},
            model=MODEL,
        )
        assert report.software_j == pytest.approx(1.0)  # 2 W x 0.5 s

    def test_reconfig_energy(self):
        event = TimelineEvent(
            task="t", worker="rt0", kind="reconfig", start_s=0, end_s=0.2
        )
        report = measure_energy(
            timeline([event], 1.0),
            frames=1,
            static_kluts=1.0,
            region_kluts={},
            mode_power_w={},
            task_modes={},
            model=MODEL,
        )
        assert report.reconfig_j == pytest.approx(0.1)

    def test_joules_and_seconds_per_frame(self):
        report = measure_energy(
            timeline([], 4.0),
            frames=4,
            static_kluts=10.0,
            region_kluts={},
            mode_power_w={},
            task_modes={},
            model=MODEL,
        )
        assert report.seconds_per_frame == pytest.approx(1.0)
        assert report.joules_per_frame == pytest.approx(report.total_j / 4)
        assert report.average_power_w == pytest.approx(report.total_j / 4.0)

    def test_missing_mode_mapping_rejected(self):
        with pytest.raises(ConfigurationError, match="no mode mapping"):
            measure_energy(
                timeline([exec_event("t", 0, 1)], 1.0),
                frames=1,
                static_kluts=1.0,
                region_kluts={},
                mode_power_w={},
                task_modes={},
                model=MODEL,
            )

    def test_missing_power_rejected(self):
        with pytest.raises(ConfigurationError, match="no dynamic power"):
            measure_energy(
                timeline([exec_event("t", 0, 1)], 1.0),
                frames=1,
                static_kluts=1.0,
                region_kluts={},
                mode_power_w={},
                task_modes={"t": "fft"},
                model=MODEL,
            )

    def test_empty_timeline_rejected(self):
        with pytest.raises(ConfigurationError):
            measure_energy(
                timeline([], 0.0),
                frames=1,
                static_kluts=1.0,
                region_kluts={},
                mode_power_w={},
                task_modes={},
                model=MODEL,
            )

    def test_zero_frames_rejected(self):
        with pytest.raises(ConfigurationError):
            measure_energy(
                timeline([], 1.0),
                frames=0,
                static_kluts=1.0,
                region_kluts={},
                mode_power_w={},
                task_modes={},
                model=MODEL,
            )
