"""Tests for the power model."""

import pytest

from repro.energy.power import DEFAULT_POWER_MODEL, PowerModel


class TestPowerModel:
    def test_baseline_power_composition(self):
        model = PowerModel(
            static_w_per_klut=0.01,
            region_w_per_klut=0.02,
            board_w=1.0,
            cpu_active_w=2.0,
            reconfig_w=0.5,
        )
        assert model.baseline_power_w(100.0, 50.0) == pytest.approx(
            1.0 + 0.01 * 100 + 0.02 * 50
        )

    def test_more_configured_area_costs_more(self):
        model = DEFAULT_POWER_MODEL
        assert model.baseline_power_w(80.0, 170.0) > model.baseline_power_w(80.0, 90.0)

    def test_negative_coefficient_rejected(self):
        with pytest.raises(ValueError):
            PowerModel(board_w=-1.0)

    def test_defaults_are_vc707_plausible(self):
        """A configured 3x3 SoC should idle in the single-digit watts."""
        power = DEFAULT_POWER_MODEL.baseline_power_w(82.3, 140.0)
        assert 2.0 < power < 12.0
