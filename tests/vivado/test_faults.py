"""Tests for the deterministic CAD fault model and retry planning."""

import pytest

from repro.errors import FlowError
from repro.vivado.faults import (
    DEFAULT_RETRY_POLICY,
    NO_FAULTS,
    NO_RETRY,
    CadFaultError,
    CadFaultModel,
    FaultPlanner,
    RetryPolicy,
    plan_job_execution,
)
from repro.vivado.runtime_model import JobKind


class TestRetryPolicy:
    def test_validation(self):
        with pytest.raises(FlowError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(FlowError):
            RetryPolicy(factor=0.5)
        with pytest.raises(FlowError):
            RetryPolicy(jitter=1.5)
        with pytest.raises(FlowError):
            RetryPolicy(backoff_minutes=-1.0)

    def test_first_attempt_has_no_backoff(self):
        assert DEFAULT_RETRY_POLICY.backoff_before(1, seed=0, job_name="j") == 0.0

    def test_backoff_grows_exponentially_up_to_cap(self):
        policy = RetryPolicy(
            max_attempts=8, backoff_minutes=2.0, factor=2.0,
            cap_minutes=10.0, jitter=0.0,
        )
        waits = [
            policy.backoff_before(n, seed=0, job_name="j") for n in range(2, 8)
        ]
        assert waits[:3] == [2.0, 4.0, 8.0]
        assert waits[3:] == [10.0, 10.0, 10.0]  # capped

    def test_backoff_bounded_by_cap_times_jitter(self):
        policy = RetryPolicy(max_attempts=10, cap_minutes=30.0, jitter=0.25)
        for seed in range(5):
            for attempt in range(2, 11):
                wait = policy.backoff_before(attempt, seed, f"job{seed}")
                assert wait <= policy.max_backoff_minutes
        assert policy.max_backoff_minutes == pytest.approx(37.5)

    def test_jitter_is_seeded_and_deterministic(self):
        policy = RetryPolicy(jitter=0.25)
        a = policy.backoff_before(3, seed=7, job_name="synth_rt0")
        b = policy.backoff_before(3, seed=7, job_name="synth_rt0")
        assert a == b
        assert a >= policy.backoff_minutes * policy.factor  # base for n=3


class TestCadFaultModel:
    def test_rate_validation(self):
        with pytest.raises(FlowError):
            CadFaultModel(rates={JobKind.OOC_SYNTH: 1.0})
        with pytest.raises(FlowError):
            CadFaultModel(rates={"synth": 0.1})

    def test_disabled_by_default(self):
        assert not CadFaultModel().enabled
        assert NO_FAULTS.enabled is False

    def test_injection_consumes_first_attempts(self):
        model = CadFaultModel()
        model.inject_fault("synthesis", "synth_rt0", count=2)
        fails = [
            model.attempt_fails(JobKind.OOC_SYNTH, "synthesis", "synth_rt0", n)
            for n in (1, 2, 3)
        ]
        assert fails == [True, True, False]
        # Other jobs are untouched.
        assert not model.attempt_fails(JobKind.OOC_SYNTH, "synthesis", "synth_rt1", 1)

    def test_injection_count_must_be_positive(self):
        with pytest.raises(FlowError):
            CadFaultModel().inject_fault("synthesis", "synth_rt0", count=0)

    def test_no_faults_rejects_injection(self):
        with pytest.raises(FlowError, match="NO_FAULTS"):
            NO_FAULTS.inject_fault("synthesis", "synth_rt0")

    def test_draws_are_order_independent(self):
        model = CadFaultModel(seed=3, rates={JobKind.OOC_SYNTH: 0.5})
        forward = [
            model.attempt_fails(JobKind.OOC_SYNTH, "synthesis", f"j{i}", 1)
            for i in range(20)
        ]
        backward = [
            model.attempt_fails(JobKind.OOC_SYNTH, "synthesis", f"j{i}", 1)
            for i in reversed(range(20))
        ]
        assert forward == list(reversed(backward))

    def test_fingerprint_reflects_seed_rates_and_injections(self):
        a = CadFaultModel(seed=1, rates={JobKind.OOC_SYNTH: 0.1})
        b = CadFaultModel(seed=1, rates={JobKind.OOC_SYNTH: 0.1})
        assert a.fingerprint() == b.fingerprint()
        b.inject_fault("synthesis", "synth_rt0")
        assert a.fingerprint() != b.fingerprint()
        assert CadFaultModel(seed=2).fingerprint() != CadFaultModel(seed=1).fingerprint()


class TestPlanJobExecution:
    def test_healthy_job_is_one_attempt(self):
        execution = plan_job_execution(
            NO_FAULTS, DEFAULT_RETRY_POLICY, JobKind.OOC_SYNTH,
            "synthesis", "synth_rt0", 10.0,
        )
        assert execution.succeeded
        assert execution.retries == 0
        assert execution.total_minutes == pytest.approx(10.0)

    def test_each_attempt_pays_full_runtime_plus_backoff(self):
        model = CadFaultModel()
        model.inject_fault("synthesis", "synth_rt0", count=2)
        policy = RetryPolicy(max_attempts=3, backoff_minutes=2.0, jitter=0.0)
        execution = plan_job_execution(
            model, policy, JobKind.OOC_SYNTH, "synthesis", "synth_rt0", 10.0
        )
        assert execution.succeeded
        assert [a.succeeded for a in execution.attempts] == [False, False, True]
        assert execution.total_minutes == pytest.approx(30.0 + 2.0 + 4.0)

    def test_permanent_failure_exhausts_budget(self):
        model = CadFaultModel()
        model.inject_fault("synthesis", "synth_rt0", count=5)
        execution = plan_job_execution(
            model, DEFAULT_RETRY_POLICY, JobKind.OOC_SYNTH,
            "synthesis", "synth_rt0", 10.0,
        )
        assert not execution.succeeded
        assert len(execution.attempts) == DEFAULT_RETRY_POLICY.max_attempts

    def test_no_retry_policy_fails_fast(self):
        model = CadFaultModel()
        model.inject_fault("synthesis", "synth_rt0")
        execution = plan_job_execution(
            model, NO_RETRY, JobKind.OOC_SYNTH, "synthesis", "synth_rt0", 10.0
        )
        assert not execution.succeeded
        assert len(execution.attempts) == 1

    def test_determinism_same_inputs_same_timeline(self):
        model = CadFaultModel(seed=11, rates={JobKind.OOC_SYNTH: 0.4})
        plans = [
            plan_job_execution(
                model, DEFAULT_RETRY_POLICY, JobKind.OOC_SYNTH,
                "synthesis", "synth_rt0", 12.5,
            )
            for _ in range(2)
        ]
        assert plans[0] == plans[1]

    def test_negative_runtime_rejected(self):
        with pytest.raises(FlowError):
            plan_job_execution(
                NO_FAULTS, DEFAULT_RETRY_POLICY, JobKind.OOC_SYNTH,
                "synthesis", "synth_rt0", -1.0,
            )


class TestFaultPlanner:
    def test_ledger_accumulates(self):
        model = CadFaultModel()
        model.inject_fault("synthesis", "synth_rt0", count=1)
        planner = FaultPlanner(faults=model)
        planner.run(JobKind.OOC_SYNTH, "synthesis", "synth_rt0", 10.0)
        planner.run(JobKind.OOC_SYNTH, "synthesis", "synth_rt1", 10.0)
        assert planner.total_retries == 1
        assert planner.failed_jobs == ()
        assert sorted(planner.executions_dict()) == ["synth_rt0", "synth_rt1"]

    def test_failed_jobs_surface_sorted(self):
        model = CadFaultModel()
        model.inject_fault("synthesis", "synth_b", count=5)
        model.inject_fault("synthesis", "synth_a", count=5)
        planner = FaultPlanner(faults=model)
        planner.run(JobKind.OOC_SYNTH, "synthesis", "synth_b", 10.0)
        planner.run(JobKind.OOC_SYNTH, "synthesis", "synth_a", 10.0)
        assert [e.job_name for e in planner.failed_jobs] == ["synth_a", "synth_b"]

    def test_restore_readmits_checkpointed_execution(self):
        planner = FaultPlanner()
        execution = plan_job_execution(
            NO_FAULTS, DEFAULT_RETRY_POLICY, JobKind.OOC_SYNTH,
            "synthesis", "synth_rt0", 10.0,
        )
        planner.restore(execution)
        assert planner.executions["synth_rt0"] is execution

    def test_cad_fault_error_carries_execution(self):
        model = CadFaultModel()
        model.inject_fault("synthesis", "synth_rt0", count=5)
        execution = plan_job_execution(
            model, DEFAULT_RETRY_POLICY, JobKind.OOC_SYNTH,
            "synthesis", "synth_rt0", 10.0,
        )
        error = CadFaultError(execution)
        assert error.execution is execution
        assert "synth_rt0" in str(error)
