"""Tests for the timing-closure model."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import ImplementationError
from repro.flow.dpr_flow import DprFlow
from repro.vivado.timing import (
    SYSTEM_CLOCK_MHZ,
    analyze_timing,
    estimate_fmax_mhz,
)


class TestFmaxModel:
    def test_trivial_block_near_base(self):
        assert estimate_fmax_mhz(0.1, 0.1) > 150.0

    def test_size_degrades_fmax(self):
        assert estimate_fmax_mhz(50.0, 0.3) < estimate_fmax_mhz(5.0, 0.3)

    def test_congestion_degrades_fmax(self):
        assert estimate_fmax_mhz(20.0, 0.95) < estimate_fmax_mhz(20.0, 0.5)

    def test_no_congestion_below_knee(self):
        assert estimate_fmax_mhz(20.0, 0.2) == estimate_fmax_mhz(20.0, 0.55)

    def test_validation(self):
        with pytest.raises(ImplementationError):
            estimate_fmax_mhz(-1.0, 0.5)
        with pytest.raises(ImplementationError):
            estimate_fmax_mhz(1.0, 1.5)

    @given(
        st.floats(min_value=0.0, max_value=300.0),
        st.floats(min_value=0.0, max_value=1.0),
    )
    def test_fmax_positive_and_bounded(self, kluts, util):
        fmax = estimate_fmax_mhz(kluts, util)
        assert 0.0 < fmax <= 200.0

    @given(
        st.floats(min_value=0.0, max_value=300.0),
        st.floats(min_value=0.0, max_value=1.0),
        st.floats(min_value=0.0, max_value=1.0),
    )
    def test_monotone_in_utilization(self, kluts, u1, u2):
        lo, hi = sorted((u1, u2))
        assert estimate_fmax_mhz(kluts, hi) <= estimate_fmax_mhz(kluts, lo) + 1e-9


class TestDesignTiming:
    @pytest.fixture(scope="class")
    def report(self):
        from repro.core.designs import soc_2

        return analyze_timing(DprFlow().build(soc_2()))

    def test_paper_design_meets_78mhz(self, report):
        """The paper's SoCs run at 78 MHz; the model must agree."""
        assert report.meets_timing, [
            (p.name, p.fmax_mhz) for p in report.violations()
        ]

    def test_one_partition_per_rp_plus_static(self, report):
        from repro.core.designs import soc_2

        assert len(report.partitions) == len(soc_2().reconfigurable_tiles) + 1
        assert report.partitions[0].name == "static"

    def test_system_fmax_is_the_minimum(self, report):
        assert report.system_fmax_mhz == min(p.fmax_mhz for p in report.partitions)

    def test_slack_sign_convention(self, report):
        for partition in report.partitions:
            if partition.meets(SYSTEM_CLOCK_MHZ):
                assert partition.slack_ns >= 0

    def test_all_paper_socs_close_timing(self, all_paper_socs):
        flow = DprFlow()
        for name, config in all_paper_socs.items():
            report = analyze_timing(flow.build(config))
            assert report.meets_timing, name

    def test_wrong_input_rejected(self):
        with pytest.raises(ImplementationError):
            analyze_timing("not a flow result")
