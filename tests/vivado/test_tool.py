"""Tests for the Vivado tool-instance façade."""

import pytest

from repro.fabric.parts import vc707
from repro.fabric.pblock import Pblock
from repro.fabric.resources import ResourceVector
from repro.soc.rtl import Module
from repro.vivado.tool import VivadoInstance


@pytest.fixture
def device():
    return vc707()


def tree():
    root = Module("top", luts=500)
    wrapper = root.add(Module("rp0_wrapper", luts=20, reconfigurable=True))
    wrapper.add(Module("acc", luts=8000))
    return root


class TestJournal:
    def test_synthesis_journaled(self):
        tool = VivadoInstance("t0")
        tool.synth_design(tree(), ooc=True)
        assert len(tool.journal) == 1
        assert "synth_design" in tool.journal[0].command
        assert "out_of_context" in tool.journal[0].command

    def test_cpu_minutes_accumulate(self):
        tool = VivadoInstance("t0")
        tool.synth_design(tree())
        after_one = tool.cpu_minutes
        tool.synth_design(tree())
        assert tool.cpu_minutes == pytest.approx(2 * after_one)

    def test_journal_totals_match_cpu_time(self):
        tool = VivadoInstance("t0")
        tool.synth_design(tree())
        tool.synth_design(tree(), ooc=False)
        assert sum(e.cpu_minutes for e in tool.journal) == pytest.approx(
            tool.cpu_minutes
        )


class TestImplementationPath:
    def test_static_then_context_then_bitstream(self, device):
        tool = VivadoInstance("t0")
        static = tool.synth_design(tree(), ooc=True, black_box_names=["rp0_wrapper"])
        rp = tool.synth_design(tree().find("rp0_wrapper"), ooc=True)
        pblock = Pblock("pblock_rp0", 0, 20, 0, 1)
        demand = ResourceVector(lut=9000, ff=9000)
        routed = tool.implement_static(static, device, [pblock], [demand])
        assert routed.locked_static
        ctx = tool.implement_in_context(routed, [rp], ["pblock_rp0"])
        assert not ctx.locked_static
        bs = tool.write_partial_bitstream(
            "rp0", "acc", pblock.resources(device), ResourceVector(lut=8000)
        )
        assert bs.size_bytes > 0
        commands = " | ".join(e.command for e in tool.journal)
        assert "lock_design" in commands
        assert "write_bitstream" in commands

    def test_full_bitstream(self, device):
        tool = VivadoInstance("t0")
        bs = tool.write_full_bitstream("soc", device)
        assert bs.name == "soc.bit"
