"""Tests for the simulated place-and-route engine."""

import pytest

from repro.errors import ImplementationError
from repro.fabric.parts import vc707
from repro.fabric.pblock import Pblock
from repro.fabric.resources import ResourceVector
from repro.vivado.checkpoint import NetlistCheckpoint
from repro.vivado.par import ParEngine, ParMode


@pytest.fixture
def engine():
    return ParEngine()


@pytest.fixture
def device():
    return vc707()


def static_netlist(kluts=80.0, boxes=("rp0",)):
    return NetlistCheckpoint(design="static", kluts=kluts, ooc=True, black_boxes=boxes)


def rp_netlist(name="rp0", kluts=30.0):
    return NetlistCheckpoint(design=name, kluts=kluts, ooc=True)


def legal_pblock(name="pblock_rp0"):
    return Pblock(name, col_lo=0, col_hi=30, row_lo=0, row_hi=3)


class TestStaticRun:
    def test_produces_locked_checkpoint(self, engine, device):
        result = engine.run_static(
            static_netlist(), device, [legal_pblock()], [ResourceVector(lut=1000)]
        )
        assert result.checkpoint.locked_static
        assert result.cpu_minutes > 0

    def test_pblock_count_must_match_black_boxes(self, engine, device):
        with pytest.raises(ImplementationError, match="black"):
            engine.run_static(static_netlist(), device, [], [])

    def test_demand_count_must_match(self, engine, device):
        with pytest.raises(ImplementationError, match="demand"):
            engine.run_static(static_netlist(), device, [legal_pblock()], [])

    def test_illegal_pblock_rejected(self, engine, device):
        clk = device.forbidden_columns()[0]
        bad = Pblock("pblock_rp0", clk, clk, 0, 0)
        with pytest.raises(ImplementationError, match="illegal pblock"):
            engine.run_static(static_netlist(), device, [bad], [ResourceVector(lut=1)])


class TestInContextRun:
    def make_static(self, engine, device):
        return engine.run_static(
            static_netlist(), device, [legal_pblock()], [ResourceVector(lut=1000)]
        ).checkpoint

    def test_requires_locked_static(self, engine, device):
        unlocked = self.make_static(engine, device)
        object.__setattr__(unlocked, "locked_static", False)
        with pytest.raises(ImplementationError, match="locked"):
            engine.run_in_context(unlocked, [rp_netlist()], ["pblock_rp0"])

    def test_empty_group_rejected(self, engine, device):
        routed = self.make_static(engine, device)
        with pytest.raises(ImplementationError, match="empty group"):
            engine.run_in_context(routed, [], [])

    def test_non_ooc_member_rejected(self, engine, device):
        routed = self.make_static(engine, device)
        bad = NetlistCheckpoint(design="x", kluts=1.0, ooc=False)
        with pytest.raises(ImplementationError, match="OoC"):
            engine.run_in_context(routed, [bad], ["pblock_rp0"])

    def test_unknown_pblock_rejected(self, engine, device):
        routed = self.make_static(engine, device)
        with pytest.raises(ImplementationError, match="unknown target"):
            engine.run_in_context(routed, [rp_netlist()], ["nope"])

    def test_group_cost_scales_with_group_size(self, engine, device):
        routed = self.make_static(engine, device)
        one = engine.run_in_context(routed, [rp_netlist(kluts=10)], ["pblock_rp0"])
        two = engine.run_in_context(
            routed,
            [rp_netlist("a", 10), rp_netlist("b", 10)],
            ["pblock_rp0", "pblock_rp0"],
        )
        assert two.cpu_minutes > one.cpu_minutes


class TestFullRun:
    def test_serial_charges_weighted_curve(self, engine, device):
        result = engine.run_full(
            static_netlist(boxes=("rp0",)),
            [rp_netlist(kluts=50.0)],
            device,
            [legal_pblock()],
            [ResourceVector(lut=1000)],
            mode=ParMode.FULL_SERIAL,
        )
        expected = engine.model.serial_par_minutes(80.0, 50.0)
        assert result.cpu_minutes == pytest.approx(expected)

    def test_monolithic_charges_total_curve(self, engine, device):
        result = engine.run_full(
            NetlistCheckpoint(design="g", kluts=130.0, ooc=False),
            [],
            device,
            [legal_pblock()],
            [ResourceVector(lut=1000)],
            mode=ParMode.MONOLITHIC,
        )
        from repro.vivado.runtime_model import JobKind

        expected = engine.model.job_minutes(JobKind.MONO_DPR_PAR, 130.0)
        assert result.cpu_minutes == pytest.approx(expected)

    def test_wrong_mode_rejected(self, engine, device):
        with pytest.raises(ImplementationError):
            engine.run_full(
                static_netlist(), [], device, [], [], mode=ParMode.IN_CONTEXT
            )
