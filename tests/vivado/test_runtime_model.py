"""Tests for the calibrated runtime model."""

import pytest
from hypothesis import given, strategies as st

from repro.core.metrics import metrics_from_sizes
from repro.core.strategy import ImplementationStrategy
from repro.errors import ImplementationError
from repro.vivado.runtime_model import (
    CALIBRATED_MODEL,
    JobKind,
    RuntimeCurve,
    RuntimeModel,
    fit_runtime_curve,
)


class TestRuntimeCurve:
    def test_minutes_formula(self):
        curve = RuntimeCurve(c=10.0, a=2.0, p=1.0)
        assert curve.minutes(5.0) == pytest.approx(20.0)

    def test_seconds_conversion(self):
        curve = RuntimeCurve(c=0.0, a=1.0, p=1.0)
        assert curve.seconds(2.0) == pytest.approx(120.0)

    def test_negative_size_rejected(self):
        with pytest.raises(ImplementationError):
            RuntimeCurve(c=0, a=1, p=1).minutes(-1.0)

    @given(st.floats(min_value=0.0, max_value=500.0), st.floats(min_value=0.0, max_value=500.0))
    def test_monotonicity(self, a, b):
        curve = CALIBRATED_MODEL.curves[JobKind.CONTEXT_PAR]
        lo, hi = sorted((a, b))
        assert curve.minutes(lo) <= curve.minutes(hi) + 1e-9


class TestModelConstruction:
    def test_missing_curve_rejected(self):
        with pytest.raises(ImplementationError, match="missing curves"):
            RuntimeModel({JobKind.OOC_SYNTH: RuntimeCurve(0, 1, 1)})

    def test_low_reconf_weight_rejected(self):
        with pytest.raises(ImplementationError):
            RuntimeModel(dict(CALIBRATED_MODEL.curves), reconf_weight=0.5)


class TestStrategyEstimates:
    def metrics(self):
        # SOC_2-like: static 82k, four RPs.
        return metrics_from_sizes(82270, [37161, 34110, 31037, 20888], 302400)

    def test_serial_uses_weighted_reconf(self):
        model = CALIBRATED_MODEL
        metrics = self.metrics()
        serial = model.estimate_par_total(metrics, ImplementationStrategy.SERIAL)
        unweighted = model.curves[JobKind.SERIAL_DPR_PAR].minutes(
            (metrics.static_luts + metrics.total_rp_luts) / 1000.0
        )
        assert serial > unweighted  # weight > 1 inflates the effective size

    def test_fully_parallel_is_static_plus_max_omega(self):
        model = CALIBRATED_MODEL
        metrics = self.metrics()
        fully = model.estimate_par_total(metrics, ImplementationStrategy.FULLY_PARALLEL)
        expected = model.static_par_minutes(82.27) + model.context_par_minutes(37.161)
        assert fully == pytest.approx(expected)

    def test_semi_parallel_uses_lpt_groups(self):
        model = CALIBRATED_MODEL
        metrics = self.metrics()
        semi = model.estimate_par_total(
            metrics, ImplementationStrategy.SEMI_PARALLEL, tau=2
        )
        # LPT for [37.2, 34.1, 31.0, 20.9] at tau=2: {37.2+20.9}, {34.1+31.0}
        expected = model.static_par_minutes(82.27) + model.context_par_minutes(
            34.110 + 31.037
        )
        assert semi == pytest.approx(expected, rel=1e-3)

    def test_semi_never_faster_than_fully_under_monotone_omega(self):
        model = CALIBRATED_MODEL
        metrics = self.metrics()
        semi = model.estimate_par_total(metrics, ImplementationStrategy.SEMI_PARALLEL)
        fully = model.estimate_par_total(metrics, ImplementationStrategy.FULLY_PARALLEL)
        assert fully <= semi

    def test_estimator_adapter(self):
        estimate = CALIBRATED_MODEL.strategy_estimator(tau=2)
        metrics = self.metrics()
        assert estimate(metrics, ImplementationStrategy.SERIAL) == pytest.approx(
            CALIBRATED_MODEL.estimate_par_total(metrics, ImplementationStrategy.SERIAL)
        )


class TestFitting:
    def test_fit_recovers_affine_data(self):
        curve = fit_runtime_curve([(10, 25), (20, 45)])
        assert curve.p == 1.0
        assert curve.minutes(15) == pytest.approx(35.0, rel=0.05)

    def test_fit_power_law(self):
        truth = RuntimeCurve(c=5.0, a=0.5, p=1.3)
        data = [(l, truth.minutes(l)) for l in (10, 40, 80, 160, 300)]
        fitted = fit_runtime_curve(data)
        for l, t in data:
            assert fitted.minutes(l) == pytest.approx(t, rel=0.05)

    def test_fit_empty_rejected(self):
        with pytest.raises(ImplementationError):
            fit_runtime_curve([])
