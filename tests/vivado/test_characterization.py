"""Tests for the characterization harness."""

import pytest

from repro.core.classes import classify
from repro.core.metrics import compute_metrics
from repro.errors import ConfigurationError
from repro.vivado.characterization import (
    Characterizer,
    characterization_design,
    default_design_space,
    strategy_for_tau,
    synthetic_accelerator,
)
from repro.vivado.runtime_model import JobKind


class TestDesignGeneration:
    def test_synthetic_accelerator_scales(self):
        small = synthetic_accelerator("a", 2_000)
        large = synthetic_accelerator("b", 40_000)
        assert large.resources.bram > small.resources.bram
        assert large.luts == 40_000

    def test_design_has_one_rp_per_tile_size(self):
        config = characterization_design("chz", [5_000, 10_000, 15_000])
        assert len(config.reconfigurable_tiles) == 3
        assert config.reconfigurable_luts() == [
            5_420,
            10_420,
            15_420,
        ]  # + wrapper overhead

    def test_host_cpu_variant(self):
        config = characterization_design("chz", [5_000], host_cpu=True)
        assert any(t.host_cpu for t in config.reconfigurable_tiles)
        from repro.soc.tiles import TileKind

        assert not config.tiles_of_kind(TileKind.CPU)

    def test_empty_design_rejected(self):
        with pytest.raises(ConfigurationError):
            characterization_design("chz", [])

    def test_default_space_covers_the_four_classes(self):
        classes = set()
        for config in default_design_space():
            classes.add(classify(compute_metrics(config)).design_class.value)
        assert classes == {"1.1", "1.2", "1.3", "2.1"}


class TestSweep:
    @pytest.fixture(scope="class")
    def run(self):
        configs = [
            characterization_design("tiny_11", [3_000] * 4),
            characterization_design("tiny_12", [30_000, 34_000, 28_000]),
        ]
        return Characterizer().sweep(configs)

    def test_all_taus_measured(self, run):
        taus_11 = sorted(p.tau for p in run.points if p.design == "tiny_11")
        assert taus_11 == [1, 2, 3, 4]

    def test_class_11_prefers_serial(self, run):
        assert run.best_tau("tiny_11") == 1

    def test_class_12_prefers_parallel(self, run):
        assert run.best_tau("tiny_12") > 1

    def test_best_tau_unknown_design(self, run):
        with pytest.raises(ConfigurationError):
            run.best_tau("ghost")

    def test_observations_extracted(self, run):
        obs = run.observations()
        assert obs[JobKind.SERIAL_DPR_PAR]  # one per design
        assert obs[JobKind.STATIC_PAR]
        assert obs[JobKind.CONTEXT_PAR]

    def test_refit_produces_consistent_model(self, run):
        model = Characterizer().refit(run)
        # The refit curves must reproduce the sweep's own measurements
        # closely (the data came from curves of the same family).
        for kluts, minutes in run.observations()[JobKind.CONTEXT_PAR]:
            assert model.context_par_minutes(kluts) == pytest.approx(
                minutes, rel=0.15
            )

    def test_max_tau_cap(self):
        config = characterization_design("capped", [3_000] * 6)
        points = Characterizer().sweep([config], max_tau=3).points
        assert sorted({p.tau for p in points}) == [1, 2, 3]


class TestBuildService:
    def test_strategy_for_tau_mapping(self):
        from repro.core.strategy import ImplementationStrategy

        assert strategy_for_tau(4, 1) is ImplementationStrategy.SERIAL
        assert strategy_for_tau(4, 2) is ImplementationStrategy.SEMI_PARALLEL
        assert strategy_for_tau(4, 3) is ImplementationStrategy.SEMI_PARALLEL
        assert strategy_for_tau(4, 4) is ImplementationStrategy.FULLY_PARALLEL
        assert strategy_for_tau(4, 9) is ImplementationStrategy.FULLY_PARALLEL

    def test_cached_sweep_matches_cold_sweep(self):
        from repro.flow.cache import FlowCache

        configs = [characterization_design("chz_svc", [4_000, 5_000, 6_000])]
        plain = Characterizer().sweep(configs)
        cache = FlowCache()
        characterizer = Characterizer(cache=cache)
        cold = characterizer.sweep(configs)
        warm = characterizer.sweep(configs)
        assert cold.points == plain.points
        assert warm.points == cold.points
        assert cache.stats()["hits_memory"] == len(cold.points)

    def test_measure_uses_the_cache(self):
        from repro.flow.cache import FlowCache

        config = characterization_design("chz_meas", [4_000, 5_000])
        cache = FlowCache()
        characterizer = Characterizer(cache=cache)
        first = characterizer.measure(config, tau=2)
        second = characterizer.measure(config, tau=2)
        assert first == second
        assert cache.stats()["hits_memory"] == 1
