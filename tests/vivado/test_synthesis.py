"""Tests for the simulated synthesis engine."""

import pytest

from repro.errors import SynthesisError
from repro.soc.partition import partition_design
from repro.soc.rtl import Module
from repro.vivado.synthesis import SynthesisEngine


@pytest.fixture
def engine():
    return SynthesisEngine()


def small_tree():
    root = Module("top", luts=100)
    root.add(Module("a", luts=1000))
    wrapper = root.add(Module("wrapper", luts=50, reconfigurable=True))
    wrapper.add(Module("acc", luts=5000))
    return root


class TestSynthesis:
    def test_netlist_size_counts_subtree(self, engine):
        result = engine.synth_module(small_tree())
        assert result.checkpoint.kluts == pytest.approx(6.15)

    def test_black_box_excluded_from_size(self, engine):
        result = engine.synth_module(small_tree(), black_box_names=["wrapper"])
        assert result.checkpoint.kluts == pytest.approx(1.1)
        assert result.checkpoint.black_boxes == ("wrapper",)

    def test_missing_black_box_raises(self, engine):
        with pytest.raises(SynthesisError, match="not found"):
            engine.synth_module(small_tree(), black_box_names=["ghost"])

    def test_ooc_flag_propagates(self, engine):
        assert engine.synth_module(small_tree(), ooc=True).checkpoint.is_assemblable
        assert not engine.synth_module(small_tree(), ooc=False).checkpoint.is_assemblable

    def test_cpu_time_positive_and_monotone(self, engine):
        small = engine.synth_module(Module("s", luts=1000)).cpu_minutes
        large = engine.synth_module(Module("l", luts=100000)).cpu_minutes
        assert 0 < small < large

    def test_global_synthesis_of_soc(self, engine, soc2):
        partition = partition_design(soc2)
        result = engine.synth_global(partition.rtl)
        assert result.checkpoint.kluts == pytest.approx(
            soc2.total_design_luts() / 1000.0
        )
        assert not result.checkpoint.ooc

    def test_static_synthesis_of_soc_blackboxes_wrappers(self, engine, soc2):
        partition = partition_design(soc2)
        boxes = [rp.wrapper.name for rp in partition.rps]
        result = engine.synth_module(partition.rtl, black_box_names=boxes)
        assert result.checkpoint.kluts == pytest.approx(soc2.static_luts() / 1000.0)
