"""Calibration acceptance tests: the fitted model must reproduce the
paper's *winners* for every published design, and its magnitudes must
stay inside documented error bands.
"""

import pytest

from repro.core.metrics import compute_metrics
from repro.core.strategy import ImplementationStrategy
from repro.vivado.runtime_model import CALIBRATED_MODEL


#: design name -> the strategy the paper measured as fastest.
PAPER_WINNERS = {
    "soc_1": ImplementationStrategy.SERIAL,
    "soc_2": ImplementationStrategy.FULLY_PARALLEL,
    "soc_3": ImplementationStrategy.SEMI_PARALLEL,
    "soc_4": ImplementationStrategy.FULLY_PARALLEL,
    "soc_a": ImplementationStrategy.FULLY_PARALLEL,
    "soc_b": ImplementationStrategy.SERIAL,
    "soc_c": ImplementationStrategy.SEMI_PARALLEL,
    "soc_d": ImplementationStrategy.FULLY_PARALLEL,
}

#: Paper serial P&R minutes (τ=1 columns of Tables III and IV).
PAPER_SERIAL = {
    "soc_1": 89.0,
    "soc_2": 181.0,
    "soc_3": 158.0,
    "soc_4": 163.0,
    "soc_a": 192.0,
    "soc_b": 135.0,
    "soc_c": 167.0,
    "soc_d": 142.0,
}


@pytest.mark.parametrize("name", sorted(PAPER_WINNERS))
def test_paper_winner_beats_serial_or_is_serial(name, all_paper_socs):
    """The strategy the paper chose must beat the serial estimate (or
    be the serial estimate for Class 1.1 designs)."""
    metrics = compute_metrics(all_paper_socs[name])
    model = CALIBRATED_MODEL
    winner = PAPER_WINNERS[name]
    serial = model.estimate_par_total(metrics, ImplementationStrategy.SERIAL)
    winning = model.estimate_par_total(metrics, winner, tau=2)
    if winner is ImplementationStrategy.SERIAL:
        semi = model.estimate_par_total(metrics, ImplementationStrategy.SEMI_PARALLEL, tau=2)
        fully = model.estimate_par_total(metrics, ImplementationStrategy.FULLY_PARALLEL)
        assert serial < min(semi, fully), f"{name}: serial must win"
    else:
        assert winning < serial, f"{name}: {winner.value} must beat serial"


@pytest.mark.parametrize("name", sorted(PAPER_SERIAL))
def test_serial_magnitude_within_error_band(name, all_paper_socs):
    """Serial estimates stay within +-45% of the paper's measurements.

    The band is wide because the source data itself is inconsistent
    (Vivado reruns of identical designs differ by ~30% in the paper);
    the calibration prioritizes preserving the winners.
    """
    metrics = compute_metrics(all_paper_socs[name])
    estimate = CALIBRATED_MODEL.estimate_par_total(
        metrics, ImplementationStrategy.SERIAL
    )
    assert estimate == pytest.approx(PAPER_SERIAL[name], rel=0.45)


def test_static_par_magnitudes(all_paper_socs):
    """t_static at the two published static sizes (~82k and ~39k LUTs)."""
    model = CALIBRATED_MODEL
    # Published observations cluster at 75..98 min (82k) and 42..48 (39k).
    big = model.static_par_minutes(82.27)
    small = model.static_par_minutes(39.25)
    assert 75 <= big <= 98
    assert 40 <= small <= 50


def test_omega_magnitudes():
    """Ω at published group sizes stays within the observation spread."""
    model = CALIBRATED_MODEL
    # Single MAC tile (~2.9k): paper 18 min at τ=16.
    assert model.context_par_minutes(2.87) == pytest.approx(18.0, rel=0.35)
    # Conv2d alone (~37k): paper 58 (SOC_2 τ=4) and 52 (SOC_3 τ=3).
    assert model.context_par_minutes(37.16) == pytest.approx(55.0, rel=0.25)
