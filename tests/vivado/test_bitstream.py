"""Tests for the bitstream size/compression model."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import ImplementationError
from repro.fabric.resources import ResourceVector
from repro.vivado.bitstream import (
    BitstreamGenerator,
    BitstreamKind,
    BYTES_PER_AREA_LUT,
    PARTIAL_OVERHEAD_BYTES,
)


REGION = ResourceVector(lut=50_000, ff=100_000, bram=100, dsp=200)


class TestPartialBitstreams:
    def test_partial_needs_target(self):
        gen = BitstreamGenerator()
        bs = gen.partial_bitstream("rt0", "fft", REGION, ResourceVector(lut=30_000))
        assert bs.kind is BitstreamKind.PARTIAL
        assert bs.target_rp == "rt0"
        assert bs.mode == "fft"

    def test_size_driven_by_region_not_module(self):
        gen = BitstreamGenerator(compress=False)
        small = gen.partial_bitstream("rt0", "a", REGION, ResourceVector(lut=1_000))
        large = gen.partial_bitstream("rt0", "b", REGION, ResourceVector(lut=49_000))
        assert small.size_bytes == large.size_bytes  # uncompressed: frames only

    def test_uncompressed_size_formula(self):
        gen = BitstreamGenerator(compress=False)
        bs = gen.partial_bitstream("rt0", "a", REGION, ResourceVector(lut=1))
        assert bs.size_bytes == REGION.lut * BYTES_PER_AREA_LUT + PARTIAL_OVERHEAD_BYTES

    def test_compression_shrinks(self):
        raw = BitstreamGenerator(compress=False).partial_bitstream(
            "rt0", "a", REGION, ResourceVector(lut=30_000)
        )
        packed = BitstreamGenerator(compress=True).partial_bitstream(
            "rt0", "a", REGION, ResourceVector(lut=30_000)
        )
        assert packed.size_bytes < raw.size_bytes / 3

    def test_denser_modules_compress_worse(self):
        gen = BitstreamGenerator()
        sparse = gen.partial_bitstream("rt0", "a", REGION, ResourceVector(lut=5_000))
        dense = gen.partial_bitstream("rt0", "b", REGION, ResourceVector(lut=45_000))
        assert dense.size_bytes > sparse.size_bytes

    def test_module_exceeding_region_rejected(self):
        gen = BitstreamGenerator()
        with pytest.raises(ImplementationError, match="exceeds"):
            gen.partial_bitstream("rt0", "a", REGION, ResourceVector(lut=60_000))

    def test_empty_region_rejected(self):
        gen = BitstreamGenerator()
        with pytest.raises(ImplementationError):
            gen.partial_bitstream("rt0", "a", ResourceVector(), ResourceVector())

    def test_blanking_bitstream_is_smallest(self):
        gen = BitstreamGenerator()
        blank = gen.blanking_bitstream("rt0", REGION)
        loaded = gen.partial_bitstream("rt0", "a", REGION, ResourceVector(lut=30_000))
        assert blank.size_bytes < loaded.size_bytes
        assert blank.mode == "blank"

    @given(st.integers(min_value=1, max_value=50_000))
    def test_size_monotone_in_occupancy(self, module_luts):
        gen = BitstreamGenerator()
        bs = gen.partial_bitstream(
            "rt0", "a", REGION, ResourceVector(lut=module_luts)
        )
        fuller = gen.partial_bitstream("rt0", "b", REGION, ResourceVector(lut=50_000))
        assert bs.size_bytes <= fuller.size_bytes

    def test_size_kib(self):
        gen = BitstreamGenerator(compress=False)
        bs = gen.partial_bitstream("rt0", "a", REGION, ResourceVector(lut=1))
        assert bs.size_kib == pytest.approx(bs.size_bytes / 1024.0)


class TestFullBitstream:
    def test_full_device_size(self):
        gen = BitstreamGenerator()
        device = ResourceVector(lut=302_400)
        bs = gen.full_bitstream("soc", device)
        assert bs.kind is BitstreamKind.FULL
        # ~19 MB, like a real VC707 bitstream.
        assert 15 * 2**20 < bs.size_bytes < 25 * 2**20

    def test_full_is_never_compressed(self):
        gen = BitstreamGenerator(compress=True)
        assert not gen.full_bitstream("soc", ResourceVector(lut=1000)).compressed


class TestCompressionRatio:
    def test_ratio_clamps_occupancy(self):
        gen = BitstreamGenerator()
        assert gen.compression_ratio(-1.0) == gen.compression_ratio(0.0)
        assert gen.compression_ratio(2.0) == gen.compression_ratio(1.0)

    def test_ratio_increases_with_occupancy(self):
        gen = BitstreamGenerator()
        assert gen.compression_ratio(0.9) > gen.compression_ratio(0.1)
