"""Tests for the multi-instance job scheduler."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import FlowError
from repro.vivado.server import ToolJob, VivadoServer


class TestBasics:
    def test_single_job(self):
        result = VivadoServer(4).schedule([ToolJob("a", 10.0)])
        assert result.makespan_minutes == 10.0
        assert result.instances_used == 1

    def test_empty_rejected(self):
        with pytest.raises(FlowError):
            VivadoServer(1).schedule([])

    def test_duplicate_names_rejected(self):
        with pytest.raises(FlowError, match="unique"):
            VivadoServer(1).schedule([ToolJob("a", 1.0), ToolJob("a", 2.0)])

    def test_unknown_dependency_rejected(self):
        with pytest.raises(FlowError, match="unknown"):
            VivadoServer(1).schedule([ToolJob("a", 1.0, depends_on=("ghost",))])

    def test_cycle_detected(self):
        jobs = [
            ToolJob("a", 1.0, depends_on=("b",)),
            ToolJob("b", 1.0, depends_on=("a",)),
        ]
        with pytest.raises(FlowError, match="cycle"):
            VivadoServer(2).schedule(jobs)

    def test_zero_instances_rejected(self):
        with pytest.raises(FlowError):
            VivadoServer(0)

    def test_negative_cpu_rejected(self):
        with pytest.raises(FlowError):
            ToolJob("a", -1.0)


class TestParallelism:
    def test_parallel_jobs_overlap(self):
        jobs = [ToolJob(f"j{i}", 10.0) for i in range(4)]
        result = VivadoServer(4).schedule(jobs)
        assert result.makespan_minutes == 10.0
        assert result.instances_used == 4

    def test_serial_on_one_instance(self):
        jobs = [ToolJob(f"j{i}", 10.0) for i in range(4)]
        result = VivadoServer(1).schedule(jobs)
        assert result.makespan_minutes == 40.0

    def test_lpt_packs_two_instances(self):
        jobs = [ToolJob("big", 30.0), ToolJob("m1", 20.0), ToolJob("m2", 10.0)]
        result = VivadoServer(2).schedule(jobs)
        assert result.makespan_minutes == 30.0

    def test_dependency_sequences(self):
        jobs = [
            ToolJob("static", 50.0),
            ToolJob("ctx1", 20.0, depends_on=("static",)),
            ToolJob("ctx2", 30.0, depends_on=("static",)),
        ]
        result = VivadoServer(4).schedule(jobs)
        # t_static + max Omega: the paper's T_full structure.
        assert result.makespan_minutes == 80.0
        assert result.job_named("ctx1").start_minutes == 50.0

    def test_job_lookup_missing(self):
        result = VivadoServer(1).schedule([ToolJob("a", 1.0)])
        with pytest.raises(FlowError):
            result.job_named("b")


class TestProperties:
    @given(
        st.lists(st.floats(min_value=0.1, max_value=50.0), min_size=1, max_size=12),
        st.integers(min_value=1, max_value=8),
    )
    def test_makespan_bounds(self, durations, width):
        jobs = [ToolJob(f"j{i}", d) for i, d in enumerate(durations)]
        result = VivadoServer(width).schedule(jobs)
        total = sum(durations)
        longest = max(durations)
        assert result.makespan_minutes >= max(longest, total / width) - 1e-9
        assert result.makespan_minutes <= total + 1e-9

    @given(
        st.lists(st.floats(min_value=0.1, max_value=50.0), min_size=1, max_size=12),
        st.integers(min_value=1, max_value=8),
    )
    def test_no_instance_overlap(self, durations, width):
        jobs = [ToolJob(f"j{i}", d) for i, d in enumerate(durations)]
        result = VivadoServer(width).schedule(jobs)
        by_instance = {}
        for scheduled in result.jobs:
            by_instance.setdefault(scheduled.instance, []).append(scheduled)
        for spans in by_instance.values():
            spans.sort(key=lambda s: s.start_minutes)
            for a, b in zip(spans, spans[1:]):
                assert b.start_minutes >= a.end_minutes - 1e-9

    @given(st.integers(min_value=1, max_value=10))
    def test_dependencies_respected(self, n):
        jobs = [ToolJob("root", 5.0)] + [
            ToolJob(f"leaf{i}", 1.0, depends_on=("root",)) for i in range(n)
        ]
        result = VivadoServer(4).schedule(jobs)
        root_end = result.job_named("root").end_minutes
        for i in range(n):
            assert result.job_named(f"leaf{i}").start_minutes >= root_end - 1e-9


class TestJobIndex:
    """job_named is backed by a lazily built name -> job index."""

    def test_index_covers_every_job(self):
        jobs = [ToolJob("static", 50.0)] + [
            ToolJob(f"ctx{i}", 10.0 + i, depends_on=("static",)) for i in range(20)
        ]
        result = VivadoServer(4).schedule(jobs)
        for scheduled in result.jobs:
            assert result.job_named(scheduled.job.name) is scheduled

    def test_index_built_once(self):
        result = VivadoServer(2).schedule(
            [ToolJob("a", 1.0), ToolJob("b", 2.0)]
        )
        assert result._jobs_by_name is result._jobs_by_name

    def test_missing_name_still_raises_flow_error(self):
        result = VivadoServer(1).schedule([ToolJob("a", 1.0)])
        with pytest.raises(FlowError, match="ghost"):
            result.job_named("ghost")

    def test_result_survives_pickling(self):
        import pickle

        result = VivadoServer(2).schedule(
            [ToolJob("a", 1.0), ToolJob("b", 2.0, depends_on=("a",))]
        )
        result.job_named("a")  # populate the cached index first
        clone = pickle.loads(pickle.dumps(result))
        assert clone.job_named("b").start_minutes == result.job_named("b").start_minutes
