"""Tests for the span tracer and its disabled path."""

import pytest

from repro.obs.tracer import NULL_TRACER, NullTracer, Tracer, TracingError


class FakeClock:
    """A manually advanced clock for deterministic span bounds."""

    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, dt: float) -> None:
        self.now += dt


@pytest.fixture
def clock():
    return FakeClock()


@pytest.fixture
def tracer(clock):
    return Tracer(clock=clock)


class TestSpans:
    def test_begin_end_stamps_clock(self, tracer, clock):
        span = tracer.begin("work", category="test")
        clock.advance(2.5)
        tracer.end(span)
        assert span.start == 0.0
        assert span.end == 2.5
        assert span.duration == 2.5
        assert span.closed

    def test_context_manager(self, tracer, clock):
        with tracer.span("work", category="test", track="t/a") as span:
            clock.advance(1.0)
        assert span.duration == 1.0
        assert tracer.spans == [span]

    def test_nesting_assigns_parent(self, tracer, clock):
        with tracer.span("outer") as outer:
            clock.advance(1.0)
            with tracer.span("inner") as inner:
                clock.advance(1.0)
            clock.advance(1.0)
        assert inner.parent_id == outer.span_id
        assert outer.parent_id is None
        assert tracer.nesting_violations() == []

    def test_tracks_nest_independently(self, tracer, clock):
        a = tracer.begin("a", track="t/a")
        b = tracer.begin("b", track="t/b")
        clock.advance(1.0)
        tracer.end(a)  # closing a before b is fine: different tracks
        tracer.end(b)
        assert a.parent_id is None
        assert b.parent_id is None

    def test_unbalanced_end_rejected(self, tracer):
        outer = tracer.begin("outer")
        tracer.begin("inner")
        with pytest.raises(TracingError):
            tracer.end(outer)

    def test_record_explicit_interval(self, tracer):
        span = tracer.record("job", 3.0, 7.5, category="flow.job", luts=1200)
        assert span.start == 3.0
        assert span.duration == 4.5
        assert span.attrs["luts"] == 1200

    def test_record_backwards_interval_rejected(self, tracer):
        with pytest.raises(TracingError):
            tracer.record("bad", 5.0, 4.0)

    def test_attrs_merge_on_end(self, tracer):
        span = tracer.begin("work", tile="rt0")
        tracer.end(span, failed=True)
        assert span.attrs == {"tile": "rt0", "failed": True}

    def test_exception_in_context_marks_error(self, tracer, clock):
        with pytest.raises(ValueError):
            with tracer.span("work") as span:
                raise ValueError("boom")
        assert span.attrs["error"] == "ValueError"
        assert span.closed

    def test_category_helpers(self, tracer, clock):
        with tracer.span("a", category="x"):
            clock.advance(2.0)
        with tracer.span("b", category="y"):
            clock.advance(3.0)
        assert tracer.total_duration("x") == 2.0
        assert [s.name for s in tracer.spans_in("y")] == ["b"]

    def test_use_clock_rebinds(self, tracer):
        tracer.use_clock(lambda: 42.0)
        span = tracer.begin("late")
        assert span.start == 42.0

    def test_bad_time_unit_rejected(self):
        with pytest.raises(TracingError):
            Tracer(time_unit="fortnights")


class TestNesting:
    def test_violation_detected(self, tracer):
        parent = tracer.record("parent", 0.0, 5.0)
        tracer.record("child", 4.0, 6.0, parent=parent)  # escapes parent
        violations = tracer.nesting_violations()
        assert len(violations) == 1
        assert "child" in violations[0]

    def test_open_spans_tracked(self, tracer):
        span = tracer.begin("open")
        assert tracer.open_spans() == [span]
        tracer.end(span)
        assert tracer.open_spans() == []


class TestNullTracer:
    def test_no_spans_allocated(self):
        null = NULL_TRACER
        with null.span("work", category="x") as span:
            assert span is None
        assert null.begin("a") is None
        null.end(None)
        assert null.record("b", 0.0, 1.0) is None
        assert list(null.spans) == []
        assert null.spans_in("x") == []
        assert null.total_duration("x") == 0.0
        assert null.nesting_violations() == []

    def test_disabled_flag(self):
        assert NullTracer.enabled is False
        assert Tracer.enabled is True

    def test_span_context_is_shared(self):
        # The disabled path allocates nothing per call.
        assert NULL_TRACER.span("a") is NULL_TRACER.span("b")
