"""Tests for the metrics registry."""

import pytest

from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    MetricsError,
    MetricsRegistry,
    NULL_METRICS,
    bucket_quantile,
)


@pytest.fixture
def registry():
    return MetricsRegistry()


class TestCounter:
    def test_inc_and_value(self, registry):
        counter = registry.counter("requests")
        counter.inc()
        counter.inc(2.0)
        assert counter.value() == 3.0

    def test_labels_are_separate_series(self, registry):
        counter = registry.counter("invocations")
        counter.inc(tile="rt0")
        counter.inc(tile="rt0")
        counter.inc(tile="rt1")
        assert counter.value(tile="rt0") == 2.0
        assert counter.value(tile="rt1") == 1.0
        assert counter.total() == 3.0

    def test_negative_increment_rejected(self, registry):
        with pytest.raises(MetricsError):
            registry.counter("bad").inc(-1.0)

    def test_label_order_does_not_matter(self, registry):
        counter = registry.counter("c")
        counter.inc(a="1", b="2")
        counter.inc(b="2", a="1")
        assert counter.value(a="1", b="2") == 2.0


class TestGauge:
    def test_set_overwrites(self, registry):
        gauge = registry.gauge("utilization")
        gauge.set(0.5)
        gauge.set(0.7)
        assert gauge.value() == 0.7

    def test_unset_series_reads_zero(self, registry):
        assert registry.gauge("g").value(tile="ghost") == 0.0


class TestHistogram:
    def test_count_sum_mean(self, registry):
        hist = registry.histogram("latency")
        for v in (0.1, 0.2, 0.3):
            hist.observe(v)
        assert hist.count() == 3
        assert hist.sum() == pytest.approx(0.6)
        assert hist.mean() == pytest.approx(0.2)

    def test_labeled_distributions(self, registry):
        hist = registry.histogram("wait")
        hist.observe(1.0, tile="rt0")
        hist.observe(3.0, tile="rt1")
        assert hist.count(tile="rt0") == 1
        assert hist.mean(tile="rt1") == 3.0

    def test_series_exports_min_max(self, registry):
        hist = registry.histogram("h")
        hist.observe(2.0)
        hist.observe(8.0)
        series = hist.series()
        assert series["h.min"] == 2.0
        assert series["h.max"] == 8.0
        assert series["h.count"] == 2.0

    def test_series_exports_quantiles(self, registry):
        hist = registry.histogram("h")
        for v in (0.002, 0.003, 0.004, 0.2):
            hist.observe(v)
        series = hist.series()
        assert series["h.min"] <= series["h.p50"] <= series["h.p95"]
        assert series["h.p95"] <= series["h.p99"] <= series["h.max"]

    def test_series_exports_cumulative_buckets(self, registry):
        hist = registry.histogram("h", buckets=(1.0, 10.0))
        for v in (0.5, 0.6, 5.0, 50.0):
            hist.observe(v)
        series = hist.series()
        assert series["h.bucket.le=1"] == 2.0
        assert series["h.bucket.le=10"] == 3.0
        assert series["h.bucket.le=inf"] == 4.0

    def test_quantile_method(self, registry):
        hist = registry.histogram("h")
        assert hist.quantile(0.5) is None  # no samples yet
        hist.observe(0.25)
        assert hist.quantile(0.0) == pytest.approx(0.25)
        assert hist.quantile(1.0) == pytest.approx(0.25)
        with pytest.raises(MetricsError):
            hist.quantile(1.5)

    def test_quantile_respects_labels(self, registry):
        hist = registry.histogram("h")
        hist.observe(0.1, tile="rt0")
        hist.observe(100.0, tile="rt1")
        assert hist.quantile(0.5, tile="rt0") == pytest.approx(0.1)
        assert hist.quantile(0.5, tile="rt1") == pytest.approx(100.0)


class TestBucketQuantile:
    def test_empty_distribution_is_none(self):
        assert bucket_quantile(DEFAULT_BUCKETS, [0] * 13, 0.5) is None

    def test_interpolates_within_bucket(self):
        # 10 samples in (1.0, 10.0]: the median interpolates inside it.
        counts = [0, 10, 0]
        value = bucket_quantile((1.0, 10.0), counts, 0.5)
        assert 1.0 < value < 10.0

    def test_min_max_tighten_the_estimate(self):
        counts = [0, 10, 0]
        value = bucket_quantile((1.0, 10.0), counts, 0.99, minimum=2.0, maximum=3.0)
        assert 2.0 <= value <= 3.0

    def test_overflow_bucket_uses_observed_max(self):
        counts = [0, 0, 4]  # all samples above the last bound
        value = bucket_quantile((1.0, 10.0), counts, 0.99, maximum=42.0)
        assert 10.0 <= value <= 42.0

    def test_bad_q_rejected(self):
        with pytest.raises(MetricsError):
            bucket_quantile((1.0,), [1, 0], -0.1)


class TestRegistry:
    def test_idempotent_registration(self, registry):
        assert registry.counter("x") is registry.counter("x")

    def test_kind_conflict_rejected(self, registry):
        registry.counter("x")
        with pytest.raises(MetricsError):
            registry.gauge("x")

    def test_snapshot_is_flat_and_sorted(self, registry):
        registry.counter("b").inc(tile="rt1")
        registry.counter("a").inc()
        registry.gauge("c").set(1.5, stat="s")
        snapshot = registry.snapshot()
        assert list(snapshot) == sorted(snapshot)
        assert snapshot["a"] == 1.0
        assert snapshot["b{tile=rt1}"] == 1.0
        assert snapshot["c{stat=s}"] == 1.5

    def test_snapshot_deterministic(self, registry):
        registry.counter("z").inc(b="2", a="1")
        registry.counter("z").inc(a="1", b="2")
        first = registry.snapshot()
        second = registry.snapshot()
        assert first == second
        assert list(first) == list(second)


class TestNullRegistry:
    def test_all_operations_are_noops(self):
        counter = NULL_METRICS.counter("x")
        counter.inc(5.0, tile="rt0")
        assert counter.value() == 0.0
        gauge = NULL_METRICS.gauge("g")
        gauge.set(1.0)
        hist = NULL_METRICS.histogram("h")
        hist.observe(1.0)
        assert hist.count() == 0
        assert NULL_METRICS.snapshot() == {}

    def test_shared_instrument(self):
        # One object serves every name: nothing accumulates per call.
        assert NULL_METRICS.counter("a") is NULL_METRICS.gauge("b")
