"""Cancelled DES events export as instants, never dangling spans.

A cancelled event withdrawn from the kernel heap runs no callbacks
and advances no clock — but a trace that silently swallows it hides
the runtime's recovery behaviour (the watchdog cancels the stall
timer of every aborted transfer). The kernel therefore records each
withdrawal as a zero-duration Chrome ``"I"`` instant plus a
``cancelled:<Type>`` profile leaf.
"""

import json

from repro.core.designs import wami_soc_y
from repro.core.platform import PrEspPlatform
from repro.obs.export import chrome_trace_json
from repro.obs.instrumentation import Instrumentation
from repro.obs.profiler import Profiler, profile_document
from repro.obs.tracer import Tracer
from repro.runtime.faults import (
    RuntimeFaultKind,
    RuntimeFaultModel,
    RuntimeFaultOptions,
)
from repro.sim.kernel import Simulator


class TestKernelLevel:
    def observed_sim(self):
        sim = Simulator()
        tracer = Tracer()
        tracer.use_clock(lambda: sim.now)
        profiler = Profiler()
        sim.attach_observability(profiler=profiler, tracer=tracer)
        return sim, tracer, profiler

    def test_cancelled_timeout_becomes_an_instant(self):
        sim, tracer, profiler = self.observed_sim()
        sim.timeout(1.0)
        doomed = sim.timeout(5.0)
        doomed.cancel()
        sim.run()
        # The clock never advanced to the cancelled deadline.
        assert sim.now == 1.0
        instants = [s for s in tracer.spans if s.instant]
        assert [s.name for s in instants] == ["cancelled:Timeout"]
        assert instants[0].duration == 0.0
        assert instants[0].category == "kernel.cancelled"
        assert tracer.open_spans() == []

    def test_cancelled_leaf_lands_in_the_profile(self):
        sim, _, profiler = self.observed_sim()
        sim.timeout(1.0)
        sim.timeout(2.0).cancel()
        sim.timeout(3.0).cancel()
        sim.run()
        tree = profile_document(profiler, "t")["tree"]
        leaf = next(
            c for c in tree["children"] if c["name"] == "cancelled:Timeout"
        )
        assert leaf["calls"] == 2
        assert leaf["self_host_s"] == 0.0

    def test_instants_export_as_chrome_i_events(self):
        sim, tracer, _ = self.observed_sim()
        sim.timeout(1.0)
        sim.timeout(2.0).cancel()
        sim.run()
        events = json.loads(chrome_trace_json(tracer))["traceEvents"]
        marks = [e for e in events if e["ph"] == "I"]
        assert len(marks) == 1
        assert marks[0]["name"] == "cancelled:Timeout"
        assert marks[0]["s"] == "t"
        assert "dur" not in marks[0]


class TestDeployLevel:
    def test_stuck_transfer_abort_leaves_no_dangling_span(self):
        # A stuck transfer forces the watchdog to abort it, cancelling
        # the stall timer mid-flight; the trace must close cleanly with
        # the withdrawal visible as an instant.
        model = RuntimeFaultModel()
        model.inject(
            "rt1",
            "change_detection",
            RuntimeFaultKind.STUCK_TRANSFER,
            count=1,
        )
        tracer = Tracer()
        platform = PrEspPlatform()
        config = wami_soc_y()
        platform.deploy_wami(
            config,
            flow_result=platform.flow.build(config),
            frames=1,
            instrumentation=Instrumentation(tracer=tracer),
            runtime_options=RuntimeFaultOptions(faults=model),
        )
        assert tracer.open_spans() == []
        assert tracer.nesting_violations() == []
        events = json.loads(chrome_trace_json(tracer))["traceEvents"]
        assert any(
            e["ph"] == "I" and e["name"].startswith("cancelled:")
            for e in events
        )
