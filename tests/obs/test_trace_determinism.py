"""End-to-end observability: determinism, nesting, reconciliation.

The acceptance bar of the observability layer: a traced deployment is
byte-reproducible, its span tree is well-formed, and the trace/metrics
agree with the human-facing reports (`RuntimeStats`, the timeline) to
float tolerance — they are read off the same records.
"""

import json

import pytest

from repro.obs.export import chrome_trace_json
from repro.obs.instrumentation import Instrumentation
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import Tracer


@pytest.fixture(scope="module")
def built_socy():
    from repro.core.designs import wami_soc_y
    from repro.core.platform import PrEspPlatform

    platform = PrEspPlatform()
    config = wami_soc_y()
    return platform, config, platform.flow.build(config)


def traced_deploy(built, frames=2):
    platform, config, flow_result = built
    tracer = Tracer()
    registry = MetricsRegistry()
    report = platform.deploy_wami(
        config,
        flow_result=flow_result,
        frames=frames,
        instrumentation=Instrumentation(tracer=tracer, metrics=registry),
    )
    return report, tracer, registry


class TestDeterminism:
    def test_two_deploys_export_identical_traces(self, built_socy):
        _, tracer_a, registry_a = traced_deploy(built_socy)
        _, tracer_b, registry_b = traced_deploy(built_socy)
        assert chrome_trace_json(tracer_a) == chrome_trace_json(tracer_b)
        assert registry_a.snapshot() == registry_b.snapshot()

    def test_two_builds_export_identical_traces(self, built_socy):
        platform, config, _ = built_socy
        texts = []
        for _ in range(2):
            tracer = Tracer(time_unit="min")
            platform.flow.build(config, tracer=tracer)
            texts.append(chrome_trace_json(tracer))
        assert texts[0] == texts[1]


class TestWellFormedness:
    def test_deploy_spans_nest(self, built_socy):
        _, tracer, _ = traced_deploy(built_socy)
        assert tracer.nesting_violations() == []
        assert tracer.open_spans() == []

    def test_flow_spans_nest(self, built_socy):
        platform, config, _ = built_socy
        tracer = Tracer(time_unit="min")
        result = platform.flow.build(config, tracer=tracer)
        assert tracer.nesting_violations() == []
        root = next(s for s in tracer.spans if s.category == "flow.build")
        for span in tracer.spans:
            assert span.start >= root.start - 1e-9
            assert span.end <= root.end + 1e-9

    def test_flow_stage_spans_match_report(self, built_socy):
        platform, config, _ = built_socy
        tracer = Tracer(time_unit="min")
        result = platform.flow.build(config, tracer=tracer)
        stages = {s.name: s for s in tracer.spans_in("flow.stage")}
        assert stages["synthesis"].duration == pytest.approx(
            result.synth_makespan_minutes
        )
        assert stages["implementation"].duration == pytest.approx(
            result.par_makespan_minutes
        )
        root = next(s for s in tracer.spans if s.category == "flow.build")
        assert root.duration == pytest.approx(result.total_minutes)
        # One job span per scheduled tool run, inside its stage window.
        jobs = tracer.spans_in("flow.job")
        expected = len(result.schedule.jobs) + len(result.synth_schedule.jobs)
        assert len(jobs) == expected


class TestReconciliation:
    def test_icap_span_total_equals_stats(self, built_socy):
        report, tracer, _ = traced_deploy(built_socy)
        stats = report.runtime_stats
        assert stats.icap_busy_s > 0
        assert tracer.total_duration("kernel.icap") == pytest.approx(
            stats.icap_busy_s
        )

    def test_exec_spans_reconcile_with_timeline(self, built_socy):
        report, tracer, _ = traced_deploy(built_socy)
        timeline = report.timeline
        timeline_exec = sum(e.duration_s for e in timeline.spans("exec"))
        timeline_reconf = sum(e.duration_s for e in timeline.spans("reconfig"))
        # The app-layer bridge is lossless...
        assert tracer.total_duration("app.exec") == pytest.approx(timeline_exec)
        assert tracer.total_duration("app.reconfig") == pytest.approx(
            timeline_reconf
        )
        assert len(tracer.spans_in("app.exec")) == len(timeline.spans("exec"))
        # ...and the kernel's own exec spans tell the same story.
        assert tracer.total_duration("kernel.exec") == pytest.approx(timeline_exec)

    def test_metrics_agree_with_stats(self, built_socy):
        report, _, registry = traced_deploy(built_socy)
        stats = report.runtime_stats
        totals = registry.gauge("runtime.totals")
        assert totals.value(stat="invocations") == stats.total_invocations
        assert totals.value(stat="icap_busy_s") == pytest.approx(stats.icap_busy_s)
        # Live counters and post-hoc gauges read the same records.
        live = registry.counter("runtime.invocations")
        assert live.total() == stats.total_invocations
        live_reconf = registry.counter("runtime.reconfigurations")
        assert live_reconf.total() == stats.total_reconfigurations
        assert registry.counter("prc.icap_busy_s").total() == pytest.approx(
            stats.icap_busy_s
        )

    def test_noc_counters_populated(self, built_socy):
        _, _, registry = traced_deploy(built_socy)
        snapshot = registry.snapshot()
        assert snapshot["noc.bytes{source=prc}"] > 0
        assert snapshot["noc.flits{source=prc}"] > 0

    def test_trace_is_valid_chrome_json(self, built_socy):
        _, tracer, _ = traced_deploy(built_socy)
        doc = json.loads(chrome_trace_json(tracer))
        events = doc["traceEvents"]
        assert all(e["ph"] in ("M", "X", "I") for e in events)
        complete = [e for e in events if e["ph"] == "X"]
        assert complete
        assert all(e["dur"] >= 0 and "pid" in e and "tid" in e for e in complete)


class TestZeroOverhead:
    def test_untraced_deploy_allocates_no_spans(self, built_socy):
        platform, config, flow_result = built_socy
        report = platform.deploy_wami(config, flow_result=flow_result, frames=1)
        # Default NULL paths: nothing recorded anywhere, run still works.
        assert report.runtime_stats.total_invocations > 0
