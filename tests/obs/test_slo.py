"""Tests for the SLO / error-budget tracker."""

import pytest

from repro.obs.health import Verdict
from repro.obs.slo import (
    DEFAULT_SLOS,
    SloError,
    SloSpec,
    SloTracker,
)
from repro.obs.tsdb import Sample, TelemetryStore


def value_spec(**overrides):
    base = dict(
        name="latency-p95",
        objective=1.0,
        series="latency*.p95",
        budget=0.10,
    )
    base.update(overrides)
    return SloSpec(**base)


def ratio_spec(**overrides):
    base = dict(
        name="failure-rate",
        objective=0.05,
        series="failed*",
        denominator=("attempts*",),
        budget=0.20,
    )
    base.update(overrides)
    return SloSpec(**base)


class TestSpecValidation:
    def test_needs_a_name(self):
        with pytest.raises(SloError):
            value_spec(name="")

    def test_objective_non_negative(self):
        with pytest.raises(SloError):
            value_spec(objective=-1.0)

    def test_budget_bounds(self):
        with pytest.raises(SloError):
            value_spec(budget=0.0)
        with pytest.raises(SloError):
            value_spec(budget=1.5)
        value_spec(budget=1.0)  # inclusive upper bound

    def test_agg_whitelist(self):
        with pytest.raises(SloError):
            value_spec(agg="median")

    def test_denominator_normalized_to_tuple(self):
        assert ratio_spec(denominator="attempts*").denominator == ("attempts*",)
        assert ratio_spec(denominator=["a*", "b*"]).denominator == ("a*", "b*")


class TestSli:
    def test_value_sli_folds_max_by_default(self):
        spec = value_spec()
        sample = Sample(0.0, {"latency{t=a}.p95": 0.4, "latency{t=b}.p95": 0.9})
        assert spec.sli(sample) == 0.9

    def test_value_sli_min_and_sum(self):
        sample = Sample(0.0, {"latency{t=a}.p95": 0.4, "latency{t=b}.p95": 0.9})
        assert value_spec(agg="min").sli(sample) == 0.4
        assert value_spec(agg="sum").sli(sample) == pytest.approx(1.3)

    def test_value_sli_none_without_match(self):
        assert value_spec().sli(Sample(0.0, {"other": 1.0})) is None

    def test_ratio_sli(self):
        sample = Sample(0.0, {"failed{t=a}": 1.0, "attempts{t=a}": 10.0})
        assert ratio_spec().sli(sample) == pytest.approx(0.1)

    def test_ratio_missing_numerator_is_zero(self):
        # A counter that was never incremented is a true zero, not
        # missing data — zero failures over live traffic is SLI 0.
        sample = Sample(0.0, {"attempts{t=a}": 10.0})
        assert ratio_spec().sli(sample) == 0.0

    def test_ratio_no_denominator_is_no_observation(self):
        assert ratio_spec().sli(Sample(0.0, {"failed": 1.0})) is None
        assert ratio_spec().sli(Sample(0.0, {"attempts": 0.0})) is None

    def test_ratio_sums_all_matching_series(self):
        spec = ratio_spec(denominator=("attempts*", "failed*"))
        sample = Sample(
            0.0, {"failed{t=a}": 1.0, "attempts{t=a}": 4.0, "attempts{t=b}": 5.0}
        )
        assert spec.sli(sample) == pytest.approx(0.1)


class TestEvaluation:
    def track(self, specs, samples):
        store = TelemetryStore()
        for time, values in samples:
            store.record(values, time=time)
        return SloTracker(store, specs=specs).evaluate()

    def test_empty_store_is_ok_no_data(self):
        report = self.track((value_spec(),), [])
        assert report.verdict is Verdict.OK
        status = report.statuses[0]
        assert status.observations == 0
        assert status.sli is None
        assert "no data" in status.summary()

    def test_within_budget_is_ok(self):
        samples = [(float(i), {"latency.p95": 0.5}) for i in range(9)]
        samples.append((9.0, {"latency.p95": 2.0}))  # 1 of 10 over
        report = self.track((value_spec(budget=0.2),), samples)
        status = report.statuses[0]
        assert report.verdict is Verdict.OK
        assert status.burn == pytest.approx(0.1)
        assert status.budget_remaining == pytest.approx(0.5)

    def test_budget_exhausted_is_degraded(self):
        samples = [(float(i), {"latency.p95": 2.0}) for i in range(3)]
        samples += [(float(i), {"latency.p95": 0.5}) for i in range(3, 10)]
        report = self.track((value_spec(budget=0.2),), samples)
        status = report.statuses[0]
        assert status.burn == pytest.approx(0.3)
        assert status.verdict is Verdict.DEGRADED
        assert status.budget_remaining < 0
        assert report.verdict is Verdict.DEGRADED

    def test_every_observation_violating_is_critical(self):
        samples = [(float(i), {"latency.p95": 5.0}) for i in range(4)]
        report = self.track((value_spec(),), samples)
        assert report.statuses[0].verdict is Verdict.CRITICAL
        assert report.verdict is Verdict.CRITICAL

    def test_unobserved_samples_do_not_count(self):
        samples = [
            (0.0, {}),  # no traffic: neither violation nor success
            (1.0, {"latency.p95": 0.5}),
        ]
        status = self.track((value_spec(),), samples).statuses[0]
        assert status.observations == 1
        assert status.violations == 0

    def test_report_folds_worst_status(self):
        specs = (value_spec(name="ok-one", objective=10.0), value_spec(name="bad-one"))
        samples = [(float(i), {"latency.p95": 5.0}) for i in range(4)]
        report = self.track(specs, samples)
        assert report.statuses[0].verdict is Verdict.OK
        assert report.statuses[1].verdict is Verdict.CRITICAL
        assert report.verdict is Verdict.CRITICAL

    def test_window_limits_samples(self):
        store = TelemetryStore()
        store.record({"latency.p95": 5.0}, time=0.0)  # old violation
        for t in (100.0, 101.0, 102.0):
            store.record({"latency.p95": 0.5}, time=t)
        tracker = SloTracker(store, specs=(value_spec(),))
        assert tracker.evaluate().verdict is Verdict.DEGRADED
        windowed = tracker.evaluate(window_s=5.0)
        assert windowed.verdict is Verdict.OK
        assert windowed.window_s == 5.0

    def test_duplicate_spec_names_rejected(self):
        with pytest.raises(SloError):
            SloTracker(TelemetryStore(), specs=(value_spec(), value_spec()))

    def test_to_dict_shape(self):
        report = self.track((value_spec(),), [(0.0, {"latency.p95": 0.5})])
        doc = report.to_dict()
        assert doc["verdict"] == "ok"
        assert doc["window_s"] is None
        objective = doc["objectives"][0]
        assert objective["name"] == "latency-p95"
        assert objective["sli"] == 0.5
        assert objective["burn"] == 0.0

    def test_summary_lines(self):
        report = self.track((value_spec(),), [(0.0, {"latency.p95": 0.5})])
        lines = report.summary_lines()
        assert lines[0].startswith("slo verdict")
        assert "latency-p95" in lines[1]


class TestDefaultSlos:
    def test_names_are_unique(self):
        names = [spec.name for spec in DEFAULT_SLOS]
        assert len(names) == len(set(names))

    def test_cover_the_three_serving_objectives(self):
        names = {spec.name for spec in DEFAULT_SLOS}
        assert names == {
            "reconfig-latency-p95",
            "deploy-failure-rate",
            "cad-retry-rate",
        }

    def test_match_real_registry_keys(self):
        # The patterns must match labeled and unlabeled snapshot keys.
        sample = Sample(
            0.0,
            {
                "runtime.reconfig_seconds{tile=rt0}.p95": 0.004,
                "runtime.reconfigurations{tile=rt0}": 10.0,
                "runtime.failed_attempts{tile=rt0}": 1.0,
                "flow.jobs_total{stage=synth}": 8.0,
                "flow.job_retries_total{stage=synth}": 1.0,
            },
        )
        by_name = {spec.name: spec for spec in DEFAULT_SLOS}
        assert by_name["reconfig-latency-p95"].sli(sample) == 0.004
        assert by_name["deploy-failure-rate"].sli(sample) == pytest.approx(1 / 11)
        assert by_name["cad-retry-rate"].sli(sample) == pytest.approx(1 / 8)
