"""Bus transport health: drop-oldest accounting and seq continuity.

The ring buffer bounds storage, not delivery — but a dropped event is
gone from the post-hoc history, so the monitor must say so: a
DEGRADED ``events-dropped`` finding for mid-window drops, plus a
``bus`` section (capacity/buffered/emitted/dropped/seq_gaps) in every
report and in ``repro monitor --json``.
"""

import json

from repro.cli import main
from repro.obs import events as ev
from repro.obs.events import Event, EventBus
from repro.obs.health import HealthMonitor, Verdict


def overflow(bus, count):
    for index in range(count):
        bus.emit("test.tick", time=float(index), source="t")


class TestDropAccounting:
    def test_mid_window_drops_degrade_the_verdict(self):
        bus = EventBus(capacity=4)
        monitor = HealthMonitor(bus)
        overflow(bus, 10)
        report = monitor.report(now=10.0)
        assert report.verdict is Verdict.DEGRADED
        finding = next(f for f in report.findings if f.rule == "events-dropped")
        assert "6 event(s) dropped" in finding.message
        assert report.bus["dropped"] == 6

    def test_drops_before_attach_do_not_degrade(self):
        bus = EventBus(capacity=4)
        overflow(bus, 10)  # 6 drops nobody was listening for
        monitor = HealthMonitor(bus)
        bus.emit("test.tick", time=11.0)  # one more drop, one more event
        report = monitor.report(now=12.0)
        rules = {f.rule for f in report.findings}
        # Only the one post-attach drop counts.
        finding = next(f for f in report.findings if f.rule == "events-dropped")
        assert "1 event(s) dropped" in finding.message
        assert rules == {"events-dropped"}
        # The cumulative bus counter still tells the whole story.
        assert report.bus["dropped"] == 7

    def test_healthy_bus_reports_clean_transport(self):
        bus = EventBus(capacity=64)
        monitor = HealthMonitor(bus)
        overflow(bus, 5)
        report = monitor.report(now=5.0)
        assert report.verdict is Verdict.OK
        assert report.bus == {
            "capacity": 64,
            "buffered": 5,
            "emitted": 5,
            "dropped": 0,
            "seq_gaps": 0,
        }


class TestSeqContinuity:
    def test_contiguous_seqs_count_no_gaps(self):
        bus = EventBus()
        monitor = HealthMonitor(bus)
        overflow(bus, 20)
        assert monitor.seq_gaps == 0

    def test_a_seq_discontinuity_is_counted(self):
        bus = EventBus()
        monitor = HealthMonitor(bus)
        # Simulate a delivery hole (events emitted while the monitor
        # was not subscribed — or a bus bug): seq jumps 1 -> 5.
        monitor._on_any(Event(seq=0, kind="test.tick", time=0.0))
        monitor._on_any(Event(seq=1, kind="test.tick", time=1.0))
        monitor._on_any(Event(seq=5, kind="test.tick", time=2.0))
        assert monitor.seq_gaps == 3
        report = monitor.report(now=3.0)
        assert report.bus["seq_gaps"] == 3


class TestReportSurface:
    def test_bus_section_round_trips_to_dict(self):
        bus = EventBus(capacity=4)
        monitor = HealthMonitor(bus)
        overflow(bus, 6)
        payload = monitor.report(now=6.0).to_dict()
        assert payload["bus"] == {
            "capacity": 4,
            "buffered": 4,
            "emitted": 6,
            "dropped": 2,
            "seq_gaps": 0,
        }

    def test_bus_line_in_the_text_dashboard(self):
        bus = EventBus(capacity=4)
        monitor = HealthMonitor(bus)
        overflow(bus, 6)
        text = "\n".join(monitor.report(now=6.0).summary_lines())
        assert "6 emitted, 4 buffered (capacity 4), 2 dropped, 0 seq gaps" in text

    def test_monitor_json_cli_surfaces_bus_state(self, capsys):
        code = main(["monitor", "soc_y", "--frames", "1", "--json"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        bus = payload["bus"]
        assert bus["emitted"] > 0
        assert bus["dropped"] == 0
        assert bus["seq_gaps"] == 0
        assert bus["capacity"] >= bus["buffered"] > 0

    def test_real_runtime_kinds_still_feed_the_windows(self):
        # The catch-all continuity subscriber must not disturb the
        # rule-kind subscription: both see the same emission.
        bus = EventBus()
        monitor = HealthMonitor(bus)
        bus.emit(ev.RECONFIG_STARTED, time=0.0, source="rt1")
        bus.emit(
            ev.RECONFIG_COMPLETED, time=0.4, source="rt1", duration_s=0.4
        )
        report = monitor.report(now=1.0)
        assert report.completions == 1
        assert monitor.events_seen == 2
        assert report.bus["emitted"] == 2
