"""Round-trip tests for the Prometheus / OTLP metric exporters.

The Prometheus page is re-parsed with the repo's own text-format
parser and compared against the registry snapshot; the OTLP JSONL
envelopes are validated against the checked-in shape contract in
``tests/obs/data/otlp_schema.json`` with a hand-rolled subset-of-JSON-
Schema validator (no third-party validator in the container).
"""

import json
import re
from pathlib import Path

import pytest

from repro import api
from repro.obs.context import TelemetryContext, activate
from repro.obs.export import (
    otlp_metrics_dict,
    otlp_metrics_lines,
    parse_prometheus_text,
    prometheus_name,
    prometheus_samples,
    prometheus_text,
    write_otlp_jsonl,
    write_prometheus_text,
)
from repro.obs.instrumentation import Instrumentation
from repro.obs.metrics import MetricsRegistry, NULL_METRICS

SCHEMA_PATH = Path(__file__).parent / "data" / "otlp_schema.json"


@pytest.fixture
def registry():
    reg = MetricsRegistry()
    counter = reg.counter("flow.jobs", "CAD jobs scheduled")
    counter.inc(3, stage="synth")
    counter.inc(2, stage="impl")
    reg.gauge("runtime.queue_depth", "per-tile queue depth").set(4, tile="rt0")
    hist = reg.histogram("runtime.reconfig_seconds", "reconfiguration latency")
    for value in (0.001, 0.004, 0.25, 3.0):
        hist.observe(value, tile="rt0")
    return reg


# ----------------------------------------------------------------------
# Prometheus text exposition
# ----------------------------------------------------------------------
class TestPrometheusRoundTrip:
    def test_counter_values_round_trip(self, registry):
        flat = prometheus_samples(prometheus_text(registry))
        assert flat["flow_jobs_total{stage=synth}"] == 3.0
        assert flat["flow_jobs_total{stage=impl}"] == 2.0

    def test_gauge_round_trips(self, registry):
        flat = prometheus_samples(prometheus_text(registry))
        assert flat["runtime_queue_depth{tile=rt0}"] == 4.0

    def test_histogram_round_trips_against_snapshot(self, registry):
        snapshot = registry.snapshot()
        flat = prometheus_samples(prometheus_text(registry))
        base = "runtime.reconfig_seconds{tile=rt0}"
        assert flat["runtime_reconfig_seconds_count{tile=rt0}"] == snapshot[
            f"{base}.count"
        ]
        assert flat["runtime_reconfig_seconds_sum{tile=rt0}"] == pytest.approx(
            snapshot[f"{base}.sum"]
        )
        # The +Inf bucket equals the total count.
        assert flat["runtime_reconfig_seconds_bucket{le=+Inf,tile=rt0}"] == 4.0

    def test_histogram_buckets_are_cumulative(self, registry):
        flat = prometheus_samples(prometheus_text(registry))
        buckets = [
            (key, value)
            for key, value in flat.items()
            if key.startswith("runtime_reconfig_seconds_bucket")
        ]
        values = [value for _, value in buckets]
        assert values == sorted(values)
        assert values[-1] == 4.0

    def test_every_family_has_help_and_type(self, registry):
        families = parse_prometheus_text(prometheus_text(registry))
        assert families["flow_jobs"]["type"] == "counter"
        assert families["flow_jobs"]["help"] == "CAD jobs scheduled"
        assert families["runtime_queue_depth"]["type"] == "gauge"
        assert families["runtime_reconfig_seconds"]["type"] == "histogram"

    def test_total_suffix_is_idempotent(self):
        reg = MetricsRegistry()
        reg.counter("requests_total").inc(5)
        flat = prometheus_samples(prometheus_text(reg))
        assert flat == {"requests_total": 5.0}

    def test_name_sanitization(self):
        assert prometheus_name("flow.jobs-per.stage") == "flow_jobs_per_stage"
        assert prometheus_name("0weird") == "_0weird"

    def test_label_value_escaping_round_trips(self):
        reg = MetricsRegistry()
        tricky = 'a"b\\c\nd'
        reg.counter("c").inc(1, label=tricky)
        families = parse_prometheus_text(prometheus_text(reg))
        sample = families["c"]["samples"][0]
        assert sample["labels"]["label"] == tricky

    def test_context_labels_surface_in_exposition(self):
        reg = MetricsRegistry()
        with activate(TelemetryContext(request_id="r-1", tenant="acme")):
            reg.counter("c").inc()
        flat = prometheus_samples(prometheus_text(reg))
        assert flat == {"c_total{request=r-1,tenant=acme}": 1.0}

    def test_null_registry_renders_empty_page(self):
        assert prometheus_text(NULL_METRICS) == ""
        assert otlp_metrics_lines(NULL_METRICS) == []

    def test_malformed_page_rejected(self):
        with pytest.raises(ValueError):
            parse_prometheus_text("this is not { prometheus\n")

    def test_write_prometheus_text(self, registry, tmp_path):
        path = tmp_path / "metrics.prom"
        write_prometheus_text(str(path), registry)
        reparsed = prometheus_samples(path.read_text())
        assert reparsed == prometheus_samples(prometheus_text(registry))


# ----------------------------------------------------------------------
# OTLP JSONL against the checked-in schema
# ----------------------------------------------------------------------
def _resolve(schema, root):
    ref = schema.get("$ref")
    if ref is None:
        return schema
    assert ref.startswith("#/"), f"only local refs supported: {ref}"
    node = root
    for part in ref[2:].split("/"):
        node = node[part]
    return node


def _validate(instance, schema, root, path="$"):
    """Subset JSON-Schema validator: type/required/properties/items/enum/pattern/oneOf/$ref."""
    errors = []
    schema = _resolve(schema, root)
    if "enum" in schema and instance not in schema["enum"]:
        errors.append(f"{path}: {instance!r} not in {schema['enum']}")
    expected = schema.get("type")
    checks = {
        "object": lambda v: isinstance(v, dict),
        "array": lambda v: isinstance(v, list),
        "string": lambda v: isinstance(v, str),
        "number": lambda v: isinstance(v, (int, float)) and not isinstance(v, bool),
        "boolean": lambda v: isinstance(v, bool),
    }
    if expected is not None and not checks[expected](instance):
        return errors + [f"{path}: expected {expected}, got {type(instance).__name__}"]
    if "pattern" in schema and isinstance(instance, str):
        if not re.search(schema["pattern"], instance):
            errors.append(f"{path}: {instance!r} !~ {schema['pattern']}")
    if isinstance(instance, dict):
        for name in schema.get("required", ()):
            if name not in instance:
                errors.append(f"{path}: missing required key {name!r}")
        for name, subschema in schema.get("properties", {}).items():
            if name in instance:
                errors.extend(
                    _validate(instance[name], subschema, root, f"{path}.{name}")
                )
    if isinstance(instance, list) and "items" in schema:
        for index, item in enumerate(instance):
            errors.extend(
                _validate(item, schema["items"], root, f"{path}[{index}]")
            )
    if "oneOf" in schema:
        matches = sum(
            1
            for option in schema["oneOf"]
            if not _validate(instance, option, root, path)
        )
        if matches != 1:
            errors.append(f"{path}: matched {matches} of oneOf, expected exactly 1")
    return errors


def assert_valid(instance, schema):
    errors = _validate(instance, schema, schema)
    assert not errors, "\n".join(errors)


@pytest.fixture(scope="module")
def schema():
    return json.loads(SCHEMA_PATH.read_text())


class TestOtlpExport:
    def test_single_document_validates(self, registry, schema):
        assert_valid(otlp_metrics_dict(registry, time_s=1.25), schema)

    def test_every_jsonl_line_validates(self, registry, schema):
        lines = otlp_metrics_lines(registry, time_s=1.25)
        assert len(lines) == 3  # one envelope per instrument
        for line in lines:
            assert_valid(json.loads(line), schema)

    def test_time_is_simulated_not_wall(self, registry):
        doc = otlp_metrics_dict(registry, time_s=2.5)
        metric = doc["resourceMetrics"][0]["scopeMetrics"][0]["metrics"][0]
        point = metric["sum"]["dataPoints"][0]
        assert point["timeUnixNano"] == str(int(2.5e9))

    def test_counter_is_monotonic_cumulative_sum(self, registry):
        doc = otlp_metrics_dict(registry)
        metric = doc["resourceMetrics"][0]["scopeMetrics"][0]["metrics"][0]
        assert metric["name"] == "flow.jobs"
        assert metric["sum"]["isMonotonic"] is True
        assert metric["sum"]["aggregationTemporality"] == 2

    def test_histogram_counts_are_uint64_strings(self, registry):
        doc = otlp_metrics_dict(registry)
        metrics = doc["resourceMetrics"][0]["scopeMetrics"][0]["metrics"]
        histogram = next(m for m in metrics if "histogram" in m)
        point = histogram["histogram"]["dataPoints"][0]
        assert point["count"] == "4"
        assert all(isinstance(c, str) for c in point["bucketCounts"])
        assert sum(int(c) for c in point["bucketCounts"]) == 4
        assert len(point["bucketCounts"]) == len(point["explicitBounds"]) + 1

    def test_custom_resource(self, registry):
        doc = otlp_metrics_dict(registry, resource={"service.name": "x", "env": "ci"})
        attrs = doc["resourceMetrics"][0]["resource"]["attributes"]
        assert [a["key"] for a in attrs] == ["env", "service.name"]

    def test_write_otlp_jsonl(self, registry, tmp_path, schema):
        path = tmp_path / "metrics.otlp.jsonl"
        write_otlp_jsonl(str(path), registry, time_s=1.0)
        lines = path.read_text().splitlines()
        assert lines == otlp_metrics_lines(registry, time_s=1.0)

    def test_schema_validator_catches_violations(self, schema):
        # The validator itself must not be a rubber stamp.
        assert _validate({}, schema, schema)  # missing resourceMetrics
        bad = otlp_metrics_dict(MetricsRegistry())
        bad["resourceMetrics"][0]["scopeMetrics"][0]["metrics"] = [
            {"name": "x", "description": "", "unit": ""}  # no data oneOf
        ]
        assert _validate(bad, schema, schema)


# ----------------------------------------------------------------------
# determinism across seeded runs
# ----------------------------------------------------------------------
class TestSeededDeterminism:
    def run_once(self, small_soc):
        registry = MetricsRegistry()
        api.deploy(
            small_soc,
            frames=2,
            instrumentation=Instrumentation(metrics=registry),
        )
        return registry

    def test_two_seeded_runs_export_identically(self, small_soc):
        first = self.run_once(small_soc)
        second = self.run_once(small_soc)
        assert prometheus_text(first) == prometheus_text(second)
        assert otlp_metrics_lines(first, time_s=1.0) == otlp_metrics_lines(
            second, time_s=1.0
        )
