"""Tests for request-attributed logging and the no-bare-print policy."""

import io
import logging
import os
import re
import subprocess
import sys
from pathlib import Path

import pytest

from repro.obs.context import TelemetryContext, activate
from repro.obs.logconfig import (
    LOG_FORMAT,
    NO_REQUEST,
    RequestIdFilter,
    configure_logging,
    get_logger,
    level_from_verbosity,
)

REPO_ROOT = Path(__file__).resolve().parents[2]


def make_record(message="hello"):
    return logging.LogRecord(
        name="repro.test",
        level=logging.INFO,
        pathname=__file__,
        lineno=1,
        msg=message,
        args=(),
        exc_info=None,
    )


@pytest.fixture
def clean_root():
    """Detach any handlers the suite left on the repro root."""
    root = logging.getLogger("repro")
    saved = list(root.handlers)
    for handler in saved:
        root.removeHandler(handler)
    yield root
    for handler in list(root.handlers):
        root.removeHandler(handler)
    for handler in saved:
        root.addHandler(handler)


class TestRequestIdFilter:
    def test_stamps_placeholder_without_context(self):
        record = make_record()
        assert RequestIdFilter().filter(record) is True
        assert record.request_id == NO_REQUEST

    def test_stamps_active_request(self):
        record = make_record()
        with activate(TelemetryContext(request_id="build-1")):
            RequestIdFilter().filter(record)
        assert record.request_id == "build-1"

    def test_existing_attribute_respected(self):
        record = make_record()
        record.request_id = "explicit"
        with activate(TelemetryContext(request_id="build-1")):
            RequestIdFilter().filter(record)
        assert record.request_id == "explicit"

    def test_format_renders_the_field(self):
        record = make_record("ready")
        RequestIdFilter().filter(record)
        line = logging.Formatter(LOG_FORMAT).format(record)
        assert line == "I repro.test [-]: ready"


class TestConfiguration:
    def test_get_logger_prefixes_into_the_tree(self):
        assert get_logger("flow").name == "repro.flow"
        assert get_logger("repro.flow").name == "repro.flow"
        assert get_logger("repro").name == "repro"

    def test_verbosity_mapping(self):
        assert level_from_verbosity(0) == "warning"
        assert level_from_verbosity(1) == "info"
        assert level_from_verbosity(5) == "debug"

    def test_bad_level_rejected(self, clean_root):
        with pytest.raises(ValueError):
            configure_logging("chatty")

    def test_idempotent_reconfiguration(self, clean_root):
        configure_logging("info", stream=io.StringIO())
        configure_logging("debug", stream=io.StringIO())
        handlers = [
            h
            for h in clean_root.handlers
            if getattr(h, "_repro_handler", False)
        ]
        assert len(handlers) == 1
        assert handlers[0].level == logging.DEBUG

    def test_log_lines_carry_the_request_id(self, clean_root):
        stream = io.StringIO()
        configure_logging("info", stream=stream, force=True)
        logger = get_logger("flow")
        with activate(TelemetryContext(request_id="deploy-0042")):
            logger.info("stage done")
        logger.info("outside")
        lines = stream.getvalue().splitlines()
        assert lines == [
            "I repro.flow [deploy-0042]: stage done",
            "I repro.flow [-]: outside",
        ]


class TestNoBarePrintPolicy:
    # Mirror of the CI lint gate: library modules must log or return
    # data; stdout belongs to the CLI and the report renderers only.
    EXEMPT = re.compile(r"src/repro/cli\.py|report\.py|pprint")

    def test_library_code_has_no_bare_prints(self):
        pattern = re.compile(r"(^|[^\w.])print\(")
        hits = []
        for path in (REPO_ROOT / "src").rglob("*.py"):
            rel = path.relative_to(REPO_ROOT).as_posix()
            if self.EXEMPT.search(rel):
                continue
            for number, line in enumerate(path.read_text().splitlines(), 1):
                if pattern.search(line):
                    hits.append(f"{rel}:{number}: {line.strip()}")
        assert not hits, "bare print() outside cli/report:\n" + "\n".join(hits)

    def test_exempt_files_exist(self):
        # The exemption list must not silently rot.
        assert (REPO_ROOT / "src" / "repro" / "cli.py").exists()
        assert list((REPO_ROOT / "src").rglob("report.py"))

    def test_ci_gate_matches_this_policy(self):
        workflow = (REPO_ROOT / ".github" / "workflows" / "ci.yml").read_text()
        assert "src/repro/cli.py" in workflow
        assert "report.py" in workflow
        assert "pprint" in workflow


def test_subprocess_smoke_keeps_stdlib_quiet():
    # Importing the package must not configure handlers as a side
    # effect — libraries stay silent until configure_logging runs.
    code = (
        "import logging, repro.api; "
        "root = logging.getLogger('repro'); "
        "print(len(root.handlers))"
    )
    env = dict(os.environ, PYTHONPATH="src")
    out = subprocess.run(
        [sys.executable, "-c", code],
        capture_output=True,
        text=True,
        check=True,
        cwd=str(REPO_ROOT),
        env=env,
    )
    assert out.stdout.strip() == "0"
