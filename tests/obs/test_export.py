"""Tests for the Chrome-trace / JSONL / metrics exporters."""

import json

import pytest

from repro.obs.export import (
    chrome_trace_dict,
    chrome_trace_json,
    format_metric_value,
    metrics_dict,
    metrics_lines,
    span_records,
    spans_jsonl,
    write_chrome_trace,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import Tracer


@pytest.fixture
def tracer():
    t = Tracer(time_unit="s")
    t.record("exec", 0.5, 1.5, category="kernel.exec", track="kernel/rt0", mode="fft")
    t.record("job", 0.0, 2.0, category="flow.job", track="flow/vivado00")
    return t


class TestChromeTrace:
    def test_document_shape(self, tracer):
        doc = chrome_trace_dict(tracer)
        assert isinstance(doc["traceEvents"], list)
        assert doc["metadata"]["time_unit"] == "s"
        phases = {e["ph"] for e in doc["traceEvents"]}
        assert phases == {"M", "X"}

    def test_complete_events_scaled_to_microseconds(self, tracer):
        events = [e for e in chrome_trace_dict(tracer)["traceEvents"] if e["ph"] == "X"]
        exec_event = next(e for e in events if e["name"] == "exec")
        assert exec_event["ts"] == pytest.approx(0.5e6)
        assert exec_event["dur"] == pytest.approx(1.0e6)
        assert exec_event["args"]["mode"] == "fft"

    def test_minute_unit_scaling(self):
        t = Tracer(time_unit="min")
        t.record("stage", 1.0, 2.0, track="flow/build")
        event = [e for e in chrome_trace_dict(t)["traceEvents"] if e["ph"] == "X"][0]
        assert event["ts"] == pytest.approx(60e6)

    def test_tracks_map_to_pid_tid(self, tracer):
        doc = chrome_trace_dict(tracer)
        names = {
            (e["args"]["name"])
            for e in doc["traceEvents"]
            if e["ph"] == "M" and e["name"] == "process_name"
        }
        assert names == {"kernel", "flow"}
        xs = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert len({(e["pid"], e["tid"]) for e in xs}) == 2

    def test_json_is_loadable(self, tracer):
        doc = json.loads(chrome_trace_json(tracer))
        assert len(doc["traceEvents"]) == 6  # 2 spans + 2 proc + 2 thread meta

    def test_write_trace_file(self, tracer, tmp_path):
        path = tmp_path / "trace.json"
        write_chrome_trace(str(path), tracer)
        doc = json.loads(path.read_text())
        assert any(e["ph"] == "X" for e in doc["traceEvents"])

    def test_open_spans_excluded(self):
        t = Tracer()
        t.begin("open", track="a/b")
        assert chrome_trace_dict(t)["traceEvents"] == []

    def test_non_json_attrs_coerced(self):
        class Odd:
            def __str__(self):
                return "odd!"

        t = Tracer()
        t.record("s", 0.0, 1.0, thing=Odd(), seq=(1, 2))
        event = [e for e in chrome_trace_dict(t)["traceEvents"] if e["ph"] == "X"][0]
        assert event["args"]["thing"] == "odd!"
        assert event["args"]["seq"] == [1, 2]
        json.dumps(event)  # round-trips


class TestJsonl:
    def test_one_line_per_span(self, tracer):
        lines = spans_jsonl(tracer).splitlines()
        assert len(lines) == 2
        rows = [json.loads(line) for line in lines]
        assert rows[0]["name"] == "exec"
        assert rows[0]["duration"] == pytest.approx(1.0)

    def test_records_carry_attrs(self, tracer):
        rows = span_records(tracer)
        assert rows[0]["attrs"] == {"mode": "fft"}


class TestMetricsExport:
    def test_dict_and_lines_agree(self):
        registry = MetricsRegistry()
        registry.counter("noc.flits").inc(12, plane=0)
        flat = metrics_dict(registry)
        assert flat == {"noc.flits{plane=0}": 12.0}
        assert metrics_lines(registry) == ["noc.flits{plane=0} 12"]

    def test_lines_are_repr_faithful(self):
        """The old %g formatting rounded to 6 significant digits, so
        distinct values could print identically; every line must now
        round-trip to the exact float."""
        registry = MetricsRegistry()
        value = 0.0022823076923076946
        registry.gauge("reconfig.duration_s").set(value)
        (line,) = metrics_lines(registry)
        name, rendered = line.rsplit(" ", 1)
        assert name == "reconfig.duration_s"
        assert float(rendered) == value

    def test_lines_are_name_ordered_and_deterministic(self):
        registry = MetricsRegistry()
        registry.counter("b").inc(2)
        registry.counter("a").inc(1)
        registry.gauge("c").set(3.5, tile="rt0")
        lines = metrics_lines(registry)
        assert lines == sorted(lines)
        assert lines == metrics_lines(registry)


class TestFormatMetricValue:
    def test_integral_floats_stay_short(self):
        assert format_metric_value(12.0) == "12"
        assert format_metric_value(-3.0) == "-3"
        assert format_metric_value(0.0) == "0"

    def test_non_integral_floats_are_repr(self):
        assert format_metric_value(0.1) == "0.1"
        value = 0.0022823076923076946
        assert format_metric_value(value) == repr(value)
        assert float(format_metric_value(value)) == value

    def test_huge_integral_floats_keep_repr(self):
        # Past 2**53 an int rendering would suggest false precision.
        assert format_metric_value(2.0**60) == repr(2.0**60)

    def test_non_finite(self):
        assert format_metric_value(float("inf")) == "inf"
        assert format_metric_value(float("nan")) == "nan"
