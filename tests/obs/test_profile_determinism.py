"""Profile determinism: same seed + same faults ⇒ identical trees.

The profiler's canonical view (paths, call counts, simulated seconds
— host clock and worker tags stripped) must be byte-identical across
repeat runs of a seeded workload, across fault-injected runs, and
across ``jobs=1`` vs ``jobs=4`` pooled batch sweeps. Wall-clock
fields are explicitly excluded: they are the one non-deterministic
axis.
"""

import contextlib

import pytest

from repro.core.designs import wami_parallelism_socs, wami_soc_y
from repro.core.platform import PrEspPlatform
from repro.errors import PrEspError
from repro.flow.batch import BatchBuilder, BuildRequest
from repro.flow.dpr_flow import DprFlow
from repro.obs.instrumentation import Instrumentation
from repro.obs.profiler import Profiler, canonical_tree, profile_document
from repro.runtime.faults import (
    RuntimeFaultKind,
    RuntimeFaultModel,
    RuntimeFaultOptions,
)
from repro.vivado.faults import CadFaultModel
from repro.vivado.runtime_model import JobKind


@pytest.fixture(scope="module")
def built_socy():
    platform = PrEspPlatform()
    config = wami_soc_y()
    return platform, config, platform.flow.build(config)


def deploy_canonical(built, runtime_options=None, frames=2):
    platform, config, flow_result = built
    profiler = Profiler()
    platform.deploy_wami(
        config,
        flow_result=flow_result,
        frames=frames,
        instrumentation=Instrumentation(profiler=profiler),
        runtime_options=runtime_options,
    )
    return canonical_tree(profile_document(profiler, "deploy"))


class TestDeployDeterminism:
    def test_healthy_deploys_produce_identical_trees(self, built_socy):
        assert deploy_canonical(built_socy) == deploy_canonical(built_socy)

    def test_seeded_fault_injected_deploys_produce_identical_trees(
        self, built_socy
    ):
        def options():
            return RuntimeFaultOptions(
                faults=RuntimeFaultModel(
                    seed=3,
                    rates={RuntimeFaultKind.BITSTREAM_CORRUPTION: 0.15},
                )
            )

        first = deploy_canonical(built_socy, runtime_options=options())
        second = deploy_canonical(built_socy, runtime_options=options())
        assert first == second
        # The faults actually fired: the recovery ladder is in the tree.
        paths = set()

        def collect(node, prefix):
            path = prefix + (node["name"],)
            paths.add(";".join(path))
            for child in node.get("children", ()):
                collect(child, path)

        collect(first, ())
        assert "root;runtime;recovery;retry" in paths

    def test_faulted_tree_differs_from_healthy(self, built_socy):
        healthy = deploy_canonical(built_socy)
        faulted = deploy_canonical(
            built_socy,
            runtime_options=RuntimeFaultOptions(
                faults=RuntimeFaultModel(
                    seed=3,
                    rates={RuntimeFaultKind.BITSTREAM_CORRUPTION: 0.15},
                )
            ),
        )
        assert healthy != faulted


class TestBuildDeterminism:
    def faulted_build_canonical(self):
        profiler = Profiler()
        flow = DprFlow(
            faults=CadFaultModel(seed=7, rates={JobKind.OOC_SYNTH: 0.2})
        )
        # A permanent failure (all retries burned) is itself fine —
        # the trees of two identical failing runs must still match.
        with contextlib.suppress(PrEspError):
            flow.build(wami_soc_y(), profiler=profiler)
        return canonical_tree(profile_document(profiler, "build"))

    def test_seeded_cad_fault_builds_produce_identical_trees(self):
        first = self.faulted_build_canonical()
        assert first == self.faulted_build_canonical()
        # The stochastic model at 20% actually burned attempts: the
        # faulted tree differs from a fault-free one, and the synthesis
        # stage carries more modelled seconds (retries are charged to
        # the job leaf they retried).
        profiler = Profiler()
        DprFlow().build(wami_soc_y(), profiler=profiler)
        fault_free = canonical_tree(profile_document(profiler, "build"))
        assert first != fault_free

        def stage_sim(tree, stage):
            build = tree["children"][0]
            return sum(
                c["sim_s"] + sum(g["sim_s"] for g in c.get("children", ()))
                for c in build["children"]
                if c["name"] == stage
            )

        assert stage_sim(first, "flow.synthesis") > stage_sim(
            fault_free, "flow.synthesis"
        )


class TestPoolDeterminism:
    def batch_canonical(self, jobs):
        profiler = Profiler()
        requests = [
            BuildRequest(config=config)
            for _, config in sorted(wami_parallelism_socs().items())
        ]
        outcomes = BatchBuilder(
            flow=DprFlow(), jobs=jobs, profiler=profiler
        ).build_many(requests)
        assert all(o.ok for o in outcomes)
        return canonical_tree(profile_document(profiler, "batch"))

    def test_jobs1_and_jobs4_produce_identical_canonical_trees(self):
        serial = self.batch_canonical(jobs=1)
        pooled = self.batch_canonical(jobs=4)
        assert serial == pooled
        # The tree is non-trivial: one grafted subtree per request.
        root_children = {c["name"] for c in serial["children"]}
        assert root_children == {"build_many"}
        labels = {c["name"] for c in serial["children"][0]["children"]}
        assert labels == {f"soc_{x}/auto" for x in "abcd"}
