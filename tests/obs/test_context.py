"""Tests for the request-scoped telemetry context."""

import pickle
import threading

import pytest

from repro.obs.context import (
    DEFAULT_TENANT,
    RequestIdFactory,
    TelemetryContext,
    activate,
    bind,
    current_context,
    current_request_id,
    unbind,
)


class TestTelemetryContext:
    def test_labels_carry_request_and_tenant(self):
        ctx = TelemetryContext(request_id="r-1", tenant="acme")
        assert ctx.labels() == {"request": "r-1", "tenant": "acme"}

    def test_default_tenant(self):
        assert TelemetryContext(request_id="r").tenant == DEFAULT_TENANT

    def test_child_joins_by_prefix(self):
        parent = TelemetryContext(request_id="batch-1", tenant="t")
        child = parent.child("item0")
        assert child.request_id == "batch-1/item0"
        assert child.tenant == "t"
        assert child.request_id.startswith(parent.request_id)

    def test_with_attrs_merges_without_mutating(self):
        ctx = TelemetryContext(request_id="r", attrs={"verb": "build"})
        extended = ctx.with_attrs(index=3)
        assert extended.attrs == {"verb": "build", "index": "3"}
        assert ctx.attrs == {"verb": "build"}

    def test_str_is_tenant_and_id(self):
        assert str(TelemetryContext(request_id="r-1", tenant="t")) == "t:r-1"

    def test_immutable(self):
        ctx = TelemetryContext(request_id="r")
        with pytest.raises(AttributeError):
            ctx.request_id = "other"

    def test_picklable_for_capsule_transport(self):
        ctx = TelemetryContext(request_id="r-1", tenant="t", attrs={"verb": "b"})
        assert pickle.loads(pickle.dumps(ctx)) == ctx


class TestRequestIdFactory:
    def test_same_seed_mints_identical_sequences(self):
        a = RequestIdFactory(seed=7)
        b = RequestIdFactory(seed=7)
        assert [a.mint("build").request_id for _ in range(3)] == [
            b.mint("build").request_id for _ in range(3)
        ]

    def test_different_seeds_mint_different_prefixes(self):
        a = RequestIdFactory(seed=1).mint()
        b = RequestIdFactory(seed=2).mint()
        assert a.request_id != b.request_id

    def test_tenant_changes_prefix_and_context(self):
        ctx = RequestIdFactory(seed=0, tenant="acme").mint("deploy")
        assert ctx.tenant == "acme"
        other = RequestIdFactory(seed=0, tenant="other").mint("deploy")
        assert ctx.request_id != other.request_id

    def test_verb_prefix_and_counter(self):
        factory = RequestIdFactory(seed=0)
        first = factory.mint("deploy")
        second = factory.mint("build")
        assert first.request_id.startswith("deploy-")
        assert first.request_id.endswith("-0001")
        assert second.request_id.startswith("build-")
        assert second.request_id.endswith("-0002")
        assert factory.minted == 2

    def test_verb_recorded_as_attr(self):
        assert RequestIdFactory().mint("compare").attrs["verb"] == "compare"

    def test_concurrent_minting_stays_unique(self):
        factory = RequestIdFactory(seed=0)
        minted = []
        lock = threading.Lock()

        def mint_some():
            local = [factory.mint("t") for _ in range(50)]
            with lock:
                minted.extend(local)

        threads = [threading.Thread(target=mint_some) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        ids = [c.request_id for c in minted]
        assert len(set(ids)) == 200
        assert factory.minted == 200


class TestPropagation:
    def test_no_context_by_default(self):
        assert current_context() is None
        assert current_request_id() is None

    def test_activate_and_restore(self):
        ctx = TelemetryContext(request_id="r-1")
        with activate(ctx) as active:
            assert active is ctx
            assert current_context() is ctx
            assert current_request_id() == "r-1"
        assert current_context() is None

    def test_activate_none_is_noop(self):
        with activate(None) as active:
            assert active is None
            assert current_context() is None

    def test_nested_activation_unwinds(self):
        outer = TelemetryContext(request_id="outer")
        inner = TelemetryContext(request_id="inner")
        with activate(outer):
            with activate(inner):
                assert current_request_id() == "inner"
            assert current_request_id() == "outer"

    def test_activate_restores_on_exception(self):
        with pytest.raises(RuntimeError):
            with activate(TelemetryContext(request_id="r")):
                raise RuntimeError("boom")
        assert current_context() is None

    def test_bind_unbind_pair(self):
        ctx = TelemetryContext(request_id="r-1")
        token = bind(ctx)
        assert current_context() is ctx
        unbind(token)
        assert current_context() is None

    def test_bind_none_returns_none_token(self):
        assert bind(None) is None
        unbind(None)  # no-op
        assert current_context() is None

    def test_threads_do_not_share_context(self):
        seen = {}

        def probe():
            seen["other"] = current_request_id()

        with activate(TelemetryContext(request_id="main-r")):
            thread = threading.Thread(target=probe)
            thread.start()
            thread.join()
            assert current_request_id() == "main-r"
        assert seen["other"] is None
