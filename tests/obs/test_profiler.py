"""Unit tests of the deterministic hierarchical profiler.

The load-bearing invariant: frames accumulate *self* host time, so the
self times of the whole tree sum exactly (not approximately) to the
root's inclusive time, and merging a worker subtree is plain addition.
Everything here runs against a fake host clock — no wall-clock flake.
"""

import pickle

import pytest

from repro.obs.profiler import (
    NULL_PROFILER,
    ProfileCapsule,
    Profiler,
    ProfilerError,
    canonical_tree,
    collapsed_stacks,
    find_profiles,
    load_profile,
    profile_document,
    profile_json,
    self_host_total,
    write_profile,
)


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


@pytest.fixture
def clock():
    return FakeClock()


@pytest.fixture
def profiler(clock):
    return Profiler(host_clock=clock)


def tree_of(profiler, experiment="t"):
    return profile_document(profiler, experiment)["tree"]


class TestFrames:
    def test_nested_frames_accumulate_self_time(self, profiler, clock):
        profiler.begin("outer")
        clock.advance(1.0)
        profiler.begin("inner")
        clock.advance(2.0)
        profiler.end()
        clock.advance(3.0)
        profiler.end()
        tree = tree_of(profiler)
        outer = tree["children"][0]
        inner = outer["children"][0]
        # outer ran 6s wall, 2s of which belong to inner.
        assert outer["self_host_s"] == pytest.approx(4.0)
        assert outer["host_s"] == pytest.approx(6.0)
        assert inner["self_host_s"] == pytest.approx(2.0)
        assert inner["host_s"] == pytest.approx(2.0)
        assert outer["calls"] == 1 and inner["calls"] == 1

    def test_self_times_sum_exactly_to_root_inclusive(self, profiler, clock):
        for _ in range(3):
            profiler.begin("a")
            clock.advance(0.1)
            with profiler.frame("b"):
                clock.advance(0.7)
                with profiler.frame("c"):
                    clock.advance(0.3)
            profiler.end()
        document = profile_document(profiler, "t")
        # Exact equality, not approx: self time is constructed by
        # subtraction of the very same floats.
        assert self_host_total(document) == document["total_host_s"]

    def test_repeat_calls_merge_into_one_path(self, profiler, clock):
        for _ in range(5):
            with profiler.frame("dispatch:Timeout"):
                clock.advance(0.2)
        tree = tree_of(profiler)
        assert len(tree["children"]) == 1
        node = tree["children"][0]
        assert node["calls"] == 5
        assert node["self_host_s"] == pytest.approx(1.0)

    def test_frame_context_manager_closes_on_exception(self, profiler, clock):
        with pytest.raises(ValueError):
            with profiler.frame("risky"):
                clock.advance(1.0)
                raise ValueError("boom")
        assert profiler.open_frames == 0
        assert tree_of(profiler)["children"][0]["calls"] == 1

    def test_current_path_tracks_open_frames(self, profiler):
        assert profiler.current_path() == ()
        profiler.begin("a")
        profiler.begin("b")
        assert profiler.current_path() == ("a", "b")
        assert profiler.open_frames == 2
        profiler.end()
        profiler.end()

    def test_unbalanced_end_raises(self, profiler):
        with pytest.raises(ProfilerError):
            profiler.end()

    def test_payload_refuses_open_frames(self, profiler):
        profiler.begin("open")
        with pytest.raises(ProfilerError):
            profiler.payload()
        profiler.end()
        assert profiler.payload()["name"] == "root"


class TestSimAttribution:
    def test_add_sim_charges_the_open_frame(self, profiler, clock):
        with profiler.frame("dispatch:Event"):
            clock.advance(0.001)
            profiler.add_sim(12.5)
            profiler.add_sim(0.5)
        node = tree_of(profiler)["children"][0]
        assert node["self_sim_s"] == pytest.approx(13.0)

    def test_negative_sim_raises(self, profiler):
        with pytest.raises(ProfilerError):
            profiler.add_sim(-1.0)
        with pytest.raises(ProfilerError):
            profiler.record_leaf("x", sim_s=-0.1)

    def test_record_leaf_anchors_under_current_frame(self, profiler, clock):
        with profiler.frame("flow.synthesis"):
            clock.advance(0.01)
            profiler.record_leaf("vivado.synth_rt1", sim_s=600.0)
        stage = tree_of(profiler)["children"][0]
        leaf = stage["children"][0]
        assert leaf["name"] == "vivado.synth_rt1"
        assert leaf["self_sim_s"] == pytest.approx(600.0)
        assert leaf["self_host_s"] == 0.0
        # The stage's inclusive sim time includes the leaf.
        assert stage["sim_s"] == pytest.approx(600.0)

    def test_record_leaf_root_anchor_escapes_the_stack(self, profiler, clock):
        with profiler.frame("dispatch:Event"):
            clock.advance(0.01)
            profiler.record_leaf(
                ("runtime", "retry"), sim_s=2.0, anchor="root"
            )
        tree = tree_of(profiler)
        names = {c["name"] for c in tree["children"]}
        assert names == {"dispatch:Event", "runtime"}
        runtime = next(c for c in tree["children"] if c["name"] == "runtime")
        assert runtime["children"][0]["name"] == "retry"
        assert runtime["children"][0]["self_sim_s"] == pytest.approx(2.0)

    def test_record_leaf_bad_anchor_raises(self, profiler):
        with pytest.raises(ProfilerError):
            profiler.record_leaf("x", anchor="parent")


class TestMerge:
    def worker_payload(self):
        clock = FakeClock()
        worker = Profiler(host_clock=clock)
        with worker.frame("flow.build"):
            clock.advance(2.0)
            worker.add_sim(120.0)
        return worker.payload()

    def test_merge_tree_grafts_under_path(self, profiler, clock):
        with profiler.frame("build_many"):
            clock.advance(0.5)
            profiler.merge_tree(
                self.worker_payload(), at=("soc_a/auto",), tag="ForkWorker-1"
            )
        tree = tree_of(profiler)
        many = tree["children"][0]
        graft = many["children"][0]
        assert graft["name"] == "soc_a/auto"
        assert graft["workers"] == ["ForkWorker-1"]
        assert graft["children"][0]["name"] == "flow.build"
        assert graft["children"][0]["self_host_s"] == pytest.approx(2.0)
        # Merged host time is inclusive in the parent but NOT double
        # counted as parent self time.
        assert many["self_host_s"] == pytest.approx(0.5)
        assert many["host_s"] == pytest.approx(2.5)

    def test_merge_is_additive_across_workers(self, profiler):
        profiler.merge_tree(self.worker_payload(), at=("req",), tag="w1")
        profiler.merge_tree(self.worker_payload(), at=("req",), tag="w2")
        graft = tree_of(profiler)["children"][0]
        assert sorted(graft["workers"]) == ["w1", "w2"]
        build = graft["children"][0]
        assert build["calls"] == 2
        assert build["self_sim_s"] == pytest.approx(240.0)

    def test_worker_tags_are_stripped_by_canonical_tree(self, profiler):
        profiler.merge_tree(self.worker_payload(), at=("req",), tag="w1")
        canonical = canonical_tree(profile_document(profiler, "t"))

        def assert_clean(node):
            assert set(node) <= {"name", "calls", "sim_s", "children"}
            for child in node.get("children", ()):
                assert_clean(child)

        assert_clean(canonical)

    def test_canonical_trees_ignore_host_speed(self):
        trees = []
        for speed in (1.0, 37.0):
            clock = FakeClock()
            profiler = Profiler(host_clock=clock)
            with profiler.frame("a"):
                clock.advance(speed)
                profiler.add_sim(5.0)
            trees.append(canonical_tree(profile_document(profiler, "t")))
        assert trees[0] == trees[1]


class TestCapsule:
    def test_disabled_capsule_activates_null(self):
        assert ProfileCapsule().activate() is NULL_PROFILER

    def test_enabled_capsule_activates_fresh_profiler(self):
        capsule = ProfileCapsule(path=("req",), profile=True)
        first = capsule.activate()
        second = capsule.activate()
        assert first.enabled and second.enabled
        assert first is not second

    def test_capsule_pickles(self):
        capsule = ProfileCapsule(path=("soc_a/auto",), profile=True, trace=True)
        clone = pickle.loads(pickle.dumps(capsule))
        assert clone == capsule
        assert clone.activate().enabled


class TestNullProfiler:
    def test_null_profiler_is_inert(self):
        NULL_PROFILER.begin("x")
        NULL_PROFILER.end()
        with NULL_PROFILER.frame("y"):
            NULL_PROFILER.add_sim(1.0)
        NULL_PROFILER.record_leaf("z", sim_s=1.0)
        NULL_PROFILER.merge_tree({"name": "root"})
        assert NULL_PROFILER.enabled is False
        assert NULL_PROFILER.open_frames == 0
        assert NULL_PROFILER.payload() == {}


class TestExports:
    def make_document(self):
        clock = FakeClock()
        profiler = Profiler(host_clock=clock)
        with profiler.frame("a"):
            clock.advance(0.5)
            profiler.add_sim(3.0)
            with profiler.frame("b"):
                clock.advance(0.25)
        with profiler.frame("zero"):
            pass  # no time at all: skipped by collapsed stacks
        return profile_document(profiler, "exp")

    def test_collapsed_stacks_microsecond_weights(self):
        lines = collapsed_stacks(self.make_document())
        assert lines == ["a 500000", "a;b 250000"]

    def test_collapsed_stacks_sim_and_calls_weights(self):
        document = self.make_document()
        assert collapsed_stacks(document, weight="sim") == ["a 3000000"]
        calls = collapsed_stacks(document, weight="calls")
        assert "zero 1" in calls
        with pytest.raises(ProfilerError):
            collapsed_stacks(document, weight="wall")

    def test_profile_json_is_deterministic(self):
        assert profile_json(self.make_document()) == profile_json(
            self.make_document()
        )

    def test_write_and_load_round_trip(self, tmp_path):
        document = self.make_document()
        json_path, collapsed_path = write_profile(tmp_path, "exp", document)
        assert json_path.name == "PROFILE_exp.json"
        assert collapsed_path.name == "exp.collapsed"
        assert load_profile(json_path) == document
        assert find_profiles(tmp_path) == {"exp": json_path}
        assert collapsed_path.read_text().splitlines() == collapsed_stacks(
            document
        )

    def test_load_profile_rejects_garbage(self, tmp_path):
        bad = tmp_path / "PROFILE_bad.json"
        bad.write_text("{not json")
        with pytest.raises(ProfilerError):
            load_profile(bad)

    def test_empty_profiler_documents_cleanly(self):
        document = profile_document(Profiler(), "empty")
        assert document["total_host_s"] == 0.0
        assert collapsed_stacks(document) == []
