"""Profile baseline seeding and hot-path share regression gating."""

import pytest

from repro.obs.profdiff import (
    DEFAULT_BAND,
    DEFAULT_HOTSPOT_THRESHOLD,
    ProfDiffError,
    ProfileBaseline,
    baseline_from_profile,
    compare_profile,
    compare_profile_directories,
    find_profile_baselines,
    load_profile_baseline,
    self_time_shares,
    write_profile_baseline,
)
from repro.obs.profiler import Profiler, profile_document, write_profile


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


def make_profile(experiment="exp", weights=None):
    """A document whose self-time shares are exactly ``weights``."""
    weights = weights if weights is not None else {"a": 0.6, "a;b": 0.3, "c": 0.1}
    clock = FakeClock()
    profiler = Profiler(host_clock=clock)
    for path, weight in weights.items():
        names = path.split(";")
        for name in names:
            profiler.begin(name)
        clock.advance(weight)
        for _ in names:
            profiler.end()
    return profile_document(profiler, experiment)


class TestShares:
    def test_shares_match_constructed_weights(self):
        shares = self_time_shares(make_profile())
        assert shares["a"] == pytest.approx(0.6)
        assert shares["a;b"] == pytest.approx(0.3)
        assert shares["c"] == pytest.approx(0.1)
        assert sum(shares.values()) == pytest.approx(1.0)

    def test_empty_profile_has_no_shares(self):
        assert self_time_shares(profile_document(Profiler(), "e")) == {}

    def test_treeless_document_raises(self):
        with pytest.raises(ProfDiffError):
            self_time_shares({"experiment": "e"})


class TestBaselines:
    def test_seeding_filters_below_min_share(self):
        baseline = baseline_from_profile(make_profile(), min_share=0.2)
        assert set(baseline.paths) == {"a", "a;b"}
        assert baseline.band == DEFAULT_BAND
        assert baseline.hotspot_threshold == DEFAULT_HOTSPOT_THRESHOLD

    def test_round_trip(self, tmp_path):
        baseline = baseline_from_profile(
            make_profile(), band=0.05, hotspot_threshold=0.2
        )
        path = write_profile_baseline(tmp_path, baseline)
        assert path.name == "exp.json"
        loaded = load_profile_baseline(path)
        assert loaded.experiment == "exp"
        assert loaded.band == 0.05
        assert loaded.hotspot_threshold == 0.2
        assert loaded.paths.keys() == baseline.paths.keys()
        assert find_profile_baselines(tmp_path) == {"exp": path}

    def test_validation(self, tmp_path):
        with pytest.raises(ProfDiffError):
            ProfileBaseline(experiment="e", paths={}, band=-0.1)
        with pytest.raises(ProfDiffError):
            ProfileBaseline(experiment="e", paths={}, hotspot_threshold=0.0)
        bad = tmp_path / "bad.json"
        bad.write_text("[]")
        with pytest.raises(ProfDiffError):
            load_profile_baseline(bad)


class TestCompare:
    def baseline(self, **kwargs):
        return baseline_from_profile(make_profile(), **kwargs)

    def test_identical_profile_is_in_band(self):
        result = compare_profile(make_profile(), self.baseline())
        assert result.ok
        assert result.failures == []
        assert "ok" in result.summary_lines()[0]

    def test_drift_beyond_band_is_a_regression(self):
        shifted = make_profile(weights={"a": 0.3, "a;b": 0.6, "c": 0.1})
        result = compare_profile(shifted, self.baseline(band=0.1))
        statuses = {d.path: d.status for d in result.deltas}
        assert statuses["a"] == "regression"
        assert statuses["a;b"] == "regression"
        assert statuses["c"] == "ok"
        assert not result.ok
        assert result.deltas[0].delta == pytest.approx(-0.3)

    def test_vanished_path_is_a_regression(self):
        shrunk = make_profile(weights={"a": 0.9, "c": 0.1})
        result = compare_profile(shrunk, self.baseline(band=0.1))
        vanished = next(d for d in result.deltas if d.path == "a;b")
        assert vanished.status == "regression"
        assert vanished.current == 0.0

    def test_new_hotspot_fails(self):
        grown = make_profile(
            weights={"a": 0.5, "a;b": 0.25, "c": 0.05, "noc.transfer": 0.2}
        )
        result = compare_profile(grown, self.baseline(band=0.2))
        hotspot = next(d for d in result.deltas if d.status == "new-hotspot")
        assert hotspot.path == "noc.transfer"
        assert hotspot.baseline is None and hotspot.delta is None
        assert "NEW-HOTSPOT" in "\n".join(result.summary_lines())

    def test_small_unbaselined_paths_are_ignored(self):
        grown = make_profile(
            weights={"a": 0.58, "a;b": 0.3, "c": 0.07, "tail": 0.05}
        )
        assert compare_profile(grown, self.baseline()).ok

    def test_experiment_mismatch_raises(self):
        with pytest.raises(ProfDiffError):
            compare_profile(make_profile(experiment="other"), self.baseline())


class TestDirectories:
    def test_missing_profile_fails(self, tmp_path):
        results = tmp_path / "results"
        baselines = tmp_path / "baselines"
        write_profile_baseline(baselines, baseline_from_profile(make_profile()))
        outcomes = compare_profile_directories(results, baselines)
        assert len(outcomes) == 1
        assert outcomes[0].missing_profile and not outcomes[0].ok
        assert "MISSING" in outcomes[0].summary_lines()[0]

    def test_produced_profiles_are_judged(self, tmp_path):
        results = tmp_path / "results"
        baselines = tmp_path / "baselines"
        write_profile_baseline(baselines, baseline_from_profile(make_profile()))
        write_profile(results, "exp", make_profile())
        outcomes = compare_profile_directories(results, baselines)
        assert [o.ok for o in outcomes] == [True]

    def test_unbaselined_profiles_are_not_judged(self, tmp_path):
        results = tmp_path / "results"
        write_profile(results, "exp", make_profile())
        assert compare_profile_directories(results, tmp_path / "none") == []
