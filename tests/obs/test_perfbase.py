"""Perf baselines: summaries, baselines, and the regression comparator."""

import pytest

from repro.obs.perfbase import (
    Baseline,
    BaselineEntry,
    BenchSummary,
    PerfBaseError,
    baseline_from_summary,
    compare,
    compare_directories,
    find_baselines,
    find_summaries,
    load_baseline,
    load_summary,
    write_baseline,
    write_summary,
)


class TestSummaryIO:
    def test_round_trip(self, tmp_path):
        path = write_summary(
            tmp_path, "demo", {"total_min": 120.5, "frames": 4},
            meta={"wall_s": 1.5},
        )
        assert path.name == "BENCH_demo.json"
        loaded = load_summary(path)
        assert loaded.experiment == "demo"
        assert loaded.metrics == {"total_min": 120.5, "frames": 4.0}
        assert loaded.meta == {"wall_s": 1.5}

    def test_write_is_deterministic(self, tmp_path):
        a = write_summary(tmp_path / "a", "demo", {"b": 2.0, "a": 1.0})
        b = write_summary(tmp_path / "b", "demo", {"a": 1.0, "b": 2.0})
        assert a.read_text() == b.read_text()

    def test_find_summaries(self, tmp_path):
        write_summary(tmp_path, "one", {"m": 1.0})
        write_summary(tmp_path, "two", {"m": 2.0})
        (tmp_path / "notes.txt").write_text("ignored")
        assert sorted(find_summaries(tmp_path)) == ["one", "two"]
        assert find_summaries(tmp_path / "missing") == {}

    def test_unreadable_summary_raises(self, tmp_path):
        bad = tmp_path / "BENCH_x.json"
        bad.write_text("{not json")
        with pytest.raises(PerfBaseError):
            load_summary(bad)


class TestBaselineIO:
    def test_round_trip(self, tmp_path):
        baseline = Baseline(
            experiment="demo",
            entries={
                "total_min": BaselineEntry(100.0, tolerance=0.1, direction="higher"),
            },
        )
        path = write_baseline(tmp_path, baseline)
        loaded = load_baseline(path)
        assert loaded.entries["total_min"] == BaselineEntry(100.0, 0.1, "higher")

    def test_entry_validation(self):
        with pytest.raises(PerfBaseError):
            BaselineEntry(1.0, tolerance=-0.1)
        with pytest.raises(PerfBaseError):
            BaselineEntry(1.0, direction="sideways")

    def test_baseline_from_summary(self):
        summary = BenchSummary("demo", {"a": 1.0, "b": 2.0})
        baseline = baseline_from_summary(summary, tolerance=0.02)
        assert baseline.experiment == "demo"
        assert baseline.entries["a"].tolerance == 0.02
        assert baseline.entries["b"].value == 2.0

    def test_find_baselines(self, tmp_path):
        write_baseline(tmp_path, Baseline("x", {"m": BaselineEntry(1.0)}))
        assert list(find_baselines(tmp_path)) == ["x"]


class TestCompare:
    def baseline(self, **entries):
        return Baseline("demo", entries)

    def test_in_band_is_ok(self):
        result = compare(
            BenchSummary("demo", {"m": 103.0}),
            self.baseline(m=BaselineEntry(100.0, tolerance=0.05)),
        )
        assert result.ok
        assert result.deltas[0].status == "ok"
        assert result.deltas[0].rel_delta == pytest.approx(0.03)

    def test_twenty_percent_slowdown_is_detected(self):
        """The acceptance-criteria case: an injected >=20% slowdown on a
        time-like metric must fail against a default-tolerance baseline."""
        result = compare(
            BenchSummary("demo", {"total_min": 120.0}),
            self.baseline(
                total_min=BaselineEntry(100.0, tolerance=0.05, direction="higher")
            ),
        )
        assert not result.ok
        (delta,) = result.regressions
        assert delta.status == "regression"
        assert delta.rel_delta == pytest.approx(0.20)

    def test_direction_higher_ignores_improvement(self):
        result = compare(
            BenchSummary("demo", {"m": 50.0}),
            self.baseline(m=BaselineEntry(100.0, tolerance=0.05, direction="higher")),
        )
        assert result.ok  # got faster: not a regression for time-like

    def test_direction_lower_ignores_increase(self):
        result = compare(
            BenchSummary("demo", {"m": 150.0}),
            self.baseline(m=BaselineEntry(100.0, tolerance=0.05, direction="lower")),
        )
        assert result.ok  # throughput went up

    def test_direction_both_flags_either_way(self):
        base = self.baseline(m=BaselineEntry(100.0, tolerance=0.05))
        assert not compare(BenchSummary("demo", {"m": 50.0}), base).ok
        assert not compare(BenchSummary("demo", {"m": 150.0}), base).ok

    def test_exact_tolerance_boundary_passes(self):
        result = compare(
            BenchSummary("demo", {"m": 105.0}),
            self.baseline(m=BaselineEntry(100.0, tolerance=0.05)),
        )
        assert result.ok

    def test_zero_baseline(self):
        base = self.baseline(m=BaselineEntry(0.0, tolerance=0.05))
        assert compare(BenchSummary("demo", {"m": 0.0}), base).ok
        bad = compare(BenchSummary("demo", {"m": 1.0}), base)
        assert not bad.ok
        assert bad.deltas[0].rel_delta == float("inf")

    def test_missing_metric_fails(self):
        result = compare(
            BenchSummary("demo", {}),
            self.baseline(m=BaselineEntry(100.0)),
        )
        assert not result.ok
        assert result.deltas[0].status == "missing"

    def test_extra_summary_metrics_ignored(self):
        result = compare(
            BenchSummary("demo", {"m": 100.0, "new_metric": 7.0}),
            self.baseline(m=BaselineEntry(100.0)),
        )
        assert result.ok
        assert len(result.deltas) == 1

    def test_experiment_mismatch_raises(self):
        with pytest.raises(PerfBaseError):
            compare(BenchSummary("a", {}), Baseline("b", {}))

    def test_summary_lines_mark_regressions(self):
        result = compare(
            BenchSummary("demo", {"m": 130.0}),
            self.baseline(m=BaselineEntry(100.0, tolerance=0.05)),
        )
        text = "\n".join(result.summary_lines())
        assert "REGRESSION" in text
        assert "+30.0%" in text


class TestCompareDirectories:
    def test_full_flow(self, tmp_path):
        results = tmp_path / "results"
        baselines = tmp_path / "baselines"
        write_summary(results, "good", {"m": 100.0})
        write_summary(results, "slow", {"m": 130.0})
        for experiment in ("good", "slow"):
            write_baseline(
                baselines,
                Baseline(experiment, {"m": BaselineEntry(100.0, tolerance=0.05)}),
            )
        outcomes = {r.experiment: r for r in compare_directories(results, baselines)}
        assert outcomes["good"].ok
        assert not outcomes["slow"].ok

    def test_baseline_without_summary_fails(self, tmp_path):
        baselines = tmp_path / "baselines"
        write_baseline(baselines, Baseline("gone", {"m": BaselineEntry(1.0)}))
        (result,) = compare_directories(tmp_path / "results", baselines)
        assert result.missing_summary
        assert not result.ok
        assert "MISSING" in result.summary_lines()[0]

    def test_summary_without_baseline_not_judged(self, tmp_path):
        results = tmp_path / "results"
        write_summary(results, "new", {"m": 1.0})
        assert compare_directories(results, tmp_path / "baselines") == []
