"""HealthMonitor: sliding windows, watchdog rules, verdicts."""

import pytest

from repro.obs import events as ev
from repro.obs.events import EventBus
from repro.obs.health import (
    HealthError,
    HealthMonitor,
    Verdict,
    WindowStats,
)


def make_monitor(**kwargs):
    bus = EventBus()
    return bus, HealthMonitor(bus, **kwargs)


def complete_reconfig(bus, tile, start, duration):
    bus.emit(ev.RECONFIG_STARTED, time=start, source=tile)
    bus.emit(
        ev.RECONFIG_COMPLETED,
        time=start + duration,
        source=tile,
        duration_s=duration,
    )


class TestValidation:
    def test_window_must_be_positive(self):
        with pytest.raises(HealthError):
            HealthMonitor(EventBus(), window_s=0.0)

    def test_deadline_must_be_positive(self):
        with pytest.raises(HealthError):
            HealthMonitor(EventBus(), reconfig_deadline_s=-1.0)

    def test_failure_thresholds_ordered(self):
        with pytest.raises(HealthError):
            HealthMonitor(
                EventBus(), failure_rate_degraded=0.6, failure_rate_critical=0.5
            )

    def test_queue_threshold_positive(self):
        with pytest.raises(HealthError):
            HealthMonitor(EventBus(), queue_depth_degraded=0)


class TestZeroSampleWindows:
    def test_empty_run_is_ok(self):
        _bus, monitor = make_monitor()
        report = monitor.report()
        assert report.verdict is Verdict.OK
        assert report.ok
        assert report.reconfig_s is None
        assert report.lock_wait_s is None
        assert report.failure_rate == 0.0
        assert report.findings == []

    def test_window_stats_none_for_no_samples(self):
        assert WindowStats.from_samples([]) is None

    def test_all_samples_aged_out_is_ok(self):
        """A quiet tail after early activity must not divide by zero or
        report a stale failure rate."""
        bus, monitor = make_monitor(window_s=10.0)
        bus.emit(ev.RECONFIG_STARTED, time=0.0, source="rt0")
        bus.emit(ev.RECONFIG_FAILED, time=1.0, source="rt0", abandoned=True)
        report = monitor.report(now=100.0)
        assert report.verdict is Verdict.OK
        assert report.failure_rate == 0.0
        assert report.reconfig_s is None


class TestStuckReconfiguration:
    def test_overrun_is_critical(self):
        bus, monitor = make_monitor(reconfig_deadline_s=1.0)
        bus.emit(ev.RECONFIG_STARTED, time=0.0, source="rt0", mode="fft")
        report = monitor.report(now=1.5)
        assert report.verdict is Verdict.CRITICAL
        assert report.findings[0].rule == "stuck-reconfiguration"
        assert report.active_reconfigs == {"rt0": 1.5}

    def test_exact_deadline_is_still_ok(self):
        """Strict > semantics: an age of exactly the deadline has not
        overrun it."""
        bus, monitor = make_monitor(reconfig_deadline_s=1.0)
        bus.emit(ev.RECONFIG_STARTED, time=0.0, source="rt0")
        report = monitor.report(now=1.0)
        assert report.verdict is Verdict.OK
        assert report.active_reconfigs == {"rt0": 1.0}

    def test_completion_clears_the_watchdog(self):
        bus, monitor = make_monitor(reconfig_deadline_s=1.0)
        complete_reconfig(bus, "rt0", start=0.0, duration=0.01)
        report = monitor.report(now=50.0)
        assert report.verdict is Verdict.OK
        assert report.active_reconfigs == {}

    def test_abandoned_failure_clears_but_retryable_does_not(self):
        bus, monitor = make_monitor(reconfig_deadline_s=1.0,
                                    failure_rate_degraded=1.0,
                                    failure_rate_critical=1.0)
        bus.emit(ev.RECONFIG_STARTED, time=0.0, source="rt0")
        bus.emit(ev.RECONFIG_FAILED, time=0.1, source="rt0", abandoned=False)
        assert "rt0" in monitor.report(now=0.2).active_reconfigs
        bus.emit(ev.RECONFIG_FAILED, time=0.3, source="rt0", abandoned=True)
        assert monitor.report(now=0.4).active_reconfigs == {}

    def test_report_defaults_to_last_event_time(self):
        bus, monitor = make_monitor(reconfig_deadline_s=1.0)
        bus.emit(ev.RECONFIG_STARTED, time=0.0, source="rt0")
        bus.emit(ev.RECONFIG_COMPLETED, time=5.0, source="rt1", duration_s=0.1)
        report = monitor.report()
        assert report.now == 5.0
        assert report.verdict is Verdict.CRITICAL  # rt0 stuck for 5s


class TestFailureRate:
    def test_degraded_threshold(self):
        bus, monitor = make_monitor(
            failure_rate_degraded=0.25, failure_rate_critical=0.75
        )
        for i in range(3):
            complete_reconfig(bus, "rt0", start=float(i), duration=0.01)
        bus.emit(ev.RECONFIG_FAILED, time=4.0, source="rt0", abandoned=True)
        report = monitor.report(now=5.0)
        assert report.verdict is Verdict.DEGRADED
        assert report.failure_rate == 0.25
        assert report.findings[0].rule == "failure-rate"

    def test_critical_threshold(self):
        bus, monitor = make_monitor(
            failure_rate_degraded=0.25, failure_rate_critical=0.75
        )
        complete_reconfig(bus, "rt0", start=0.0, duration=0.01)
        for i in range(3):
            bus.emit(
                ev.RECONFIG_FAILED, time=1.0 + i, source="rt0", abandoned=True
            )
        report = monitor.report(now=5.0)
        assert report.verdict is Verdict.CRITICAL
        assert report.failures == 3
        assert report.completions == 1

    def test_below_threshold_is_ok(self):
        bus, monitor = make_monitor(failure_rate_degraded=0.5)
        complete_reconfig(bus, "rt0", start=0.0, duration=0.01)
        complete_reconfig(bus, "rt0", start=1.0, duration=0.01)
        bus.emit(ev.RECONFIG_FAILED, time=2.0, source="rt0", abandoned=True)
        assert monitor.report(now=3.0).verdict is Verdict.OK


class TestQueueDepth:
    def test_depth_at_threshold_degrades(self):
        bus, monitor = make_monitor(queue_depth_degraded=2)
        bus.emit(ev.LOCK_REQUESTED, time=0.0, source="rt0")
        bus.emit(ev.LOCK_REQUESTED, time=0.1, source="rt0")
        report = monitor.report(now=0.2)
        assert report.verdict is Verdict.DEGRADED
        assert report.findings[0].rule == "queue-depth"
        assert report.queue_depth["rt0"] == 2

    def test_acquire_drains_the_queue(self):
        bus, monitor = make_monitor(queue_depth_degraded=2)
        bus.emit(ev.LOCK_REQUESTED, time=0.0, source="rt0")
        bus.emit(ev.LOCK_REQUESTED, time=0.1, source="rt0")
        bus.emit(ev.LOCK_ACQUIRED, time=0.2, source="rt0", wait_s=0.2)
        assert monitor.report(now=0.3).verdict is Verdict.OK

    def test_wait_samples_feed_the_window(self):
        bus, monitor = make_monitor()
        bus.emit(ev.LOCK_REQUESTED, time=0.0, source="rt0")
        bus.emit(ev.LOCK_ACQUIRED, time=0.5, source="rt0", wait_s=0.5)
        report = monitor.report(now=1.0)
        assert report.lock_wait_s.count == 1
        assert report.lock_wait_s.mean == 0.5


class TestWindowStats:
    def test_quantiles_bounded_by_observed_extremes(self):
        stats = WindowStats.from_samples([0.001, 0.002, 0.003, 0.1])
        assert stats.count == 4
        assert stats.minimum == 0.001
        assert stats.maximum == 0.1
        assert stats.minimum <= stats.p50 <= stats.p95 <= stats.p99 <= stats.maximum

    def test_single_sample(self):
        stats = WindowStats.from_samples([0.25])
        assert stats.p50 == pytest.approx(0.25)
        assert stats.p99 == pytest.approx(0.25)


class TestCadFlowSurfacing:
    def test_retries_and_failures_are_counted(self):
        bus, monitor = make_monitor()
        bus.emit(
            ev.CAD_JOB_RETRIED, time=30.0, source="synthesis",
            job="synth_rt0", attempt=2, backoff_minutes=2.0,
        )
        bus.emit(
            ev.CAD_JOB_RETRIED, time=60.0, source="synthesis",
            job="synth_rt0", attempt=3, backoff_minutes=4.0,
        )
        bus.emit(
            ev.CAD_JOB_FAILED, time=90.0, source="synthesis",
            job="synth_rt0", attempts=3, minutes_burned=96.0,
        )
        report = monitor.report(now=1.0)
        assert report.cad_retries == 2
        assert report.cad_failed_jobs == ["synthesis/synth_rt0"]
        # counters alone do not change the verdict
        assert report.verdict is Verdict.OK

    def test_flow_degraded_fires_a_finding(self):
        bus, monitor = make_monitor()
        bus.emit(
            ev.FLOW_DEGRADED, time=240.0, source="flow",
            soc="soc_2", rps=["rt_sort"],
        )
        report = monitor.report(now=1.0)
        assert report.verdict is Verdict.DEGRADED
        assert report.dark_tiles == ["rt_sort"]
        assert report.findings[0].rule == "flow-degraded"
        assert "rt_sort" in report.findings[0].message

    def test_cad_clock_does_not_advance_runtime_windows(self):
        """CAD events carry modelled minutes; they must not push the
        window clock past the runtime's seconds."""
        bus, monitor = make_monitor()
        complete_reconfig(bus, "rt0", start=0.0, duration=0.01)
        bus.emit(
            ev.CAD_JOB_RETRIED, time=500.0, source="synthesis",
            job="synth_rt0", attempt=2, backoff_minutes=2.0,
        )
        report = monitor.report()
        assert report.now == 0.01
        assert report.reconfig_s.count == 1

    def test_cad_counters_render_in_summary_and_json(self):
        bus, monitor = make_monitor()
        bus.emit(
            ev.CAD_JOB_RETRIED, time=30.0, source="synthesis",
            job="synth_rt0", attempt=2, backoff_minutes=2.0,
        )
        bus.emit(
            ev.FLOW_DEGRADED, time=240.0, source="flow",
            soc="soc_2", rps=["rt0", "rt1"],
        )
        report = monitor.report(now=1.0)
        text = "\n".join(report.summary_lines())
        assert "cad flow" in text
        assert "dark tiles rt0, rt1" in text
        payload = report.to_dict()
        assert payload["cad"] == {
            "retries": 1,
            "failed_jobs": [],
            "dark_tiles": ["rt0", "rt1"],
        }


class TestReportRendering:
    def test_summary_lines_and_to_dict(self):
        bus, monitor = make_monitor(reconfig_deadline_s=1.0)
        complete_reconfig(bus, "rt0", start=0.0, duration=0.01)
        bus.emit(ev.RECONFIG_STARTED, time=1.0, source="rt1")
        report = monitor.report(now=5.0)
        text = "\n".join(report.summary_lines())
        assert "CRITICAL" in text
        assert "stuck-reconfiguration" in text
        assert "rt1" in text
        payload = report.to_dict()
        assert payload["verdict"] == "critical"
        assert payload["reconfig_s"]["count"] == 1
        assert payload["active_reconfigs"] == {"rt1": 4.0}

    def test_verdict_exit_codes(self):
        assert Verdict.OK.exit_code == 0
        assert Verdict.DEGRADED.exit_code == 1
        assert Verdict.CRITICAL.exit_code == 2
