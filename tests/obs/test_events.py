"""EventBus: delivery, filtering, and the bounded ring buffer."""

import pytest

from repro.obs import events as ev
from repro.obs.events import NULL_EVENTS, Event, EventBus, EventBusError


class TestEmit:
    def test_emit_returns_the_event(self):
        bus = EventBus()
        event = bus.emit(ev.RECONFIG_STARTED, time=1.5, source="rt0", mode="fft")
        assert event.kind == ev.RECONFIG_STARTED
        assert event.time == 1.5
        assert event.source == "rt0"
        assert event.attrs == {"mode": "fft"}

    def test_seq_is_monotonic(self):
        bus = EventBus()
        seqs = [bus.emit("k", time=0.0).seq for _ in range(5)]
        assert seqs == [0, 1, 2, 3, 4]

    def test_time_falls_back_to_injected_clock(self):
        ticks = iter([3.0, 7.0])
        bus = EventBus(clock=lambda: next(ticks))
        assert bus.emit("k").time == 3.0
        assert bus.emit("k").time == 7.0

    def test_explicit_time_wins_over_clock(self):
        bus = EventBus(clock=lambda: 99.0)
        assert bus.emit("k", time=1.0).time == 1.0

    def test_use_clock_rebinds(self):
        bus = EventBus()
        bus.use_clock(lambda: 42.0)
        assert bus.emit("k").time == 42.0

    def test_str_rendering(self):
        event = Event(seq=0, kind="reconfig.started", time=0.25, source="rt1",
                      attrs={"mode": "fft", "b": 1})
        assert str(event) == "[0.250000] reconfig.started rt1 b=1 mode=fft"


class TestSubscribers:
    def test_subscriber_sees_all_events(self):
        bus = EventBus()
        seen = []
        bus.subscribe(seen.append)
        bus.emit("a", time=0.0)
        bus.emit("b", time=1.0)
        assert [e.kind for e in seen] == ["a", "b"]

    def test_kind_filter(self):
        bus = EventBus()
        seen = []
        bus.subscribe(seen.append, kinds=[ev.RECONFIG_FAILED])
        bus.emit(ev.RECONFIG_STARTED, time=0.0)
        bus.emit(ev.RECONFIG_FAILED, time=1.0)
        assert [e.kind for e in seen] == [ev.RECONFIG_FAILED]

    def test_unsubscribe_stops_delivery(self):
        bus = EventBus()
        seen = []
        subscriber = bus.subscribe(seen.append)
        bus.unsubscribe(subscriber)
        bus.emit("a", time=0.0)
        assert seen == []

    def test_unsubscribe_unknown_raises(self):
        bus = EventBus()
        with pytest.raises(EventBusError):
            bus.unsubscribe(lambda e: None)

    def test_delivery_survives_ring_overflow(self):
        """The ring bounds storage, not delivery: subscribers see every
        event even after the buffer wraps."""
        bus = EventBus(capacity=2)
        seen = []
        bus.subscribe(seen.append)
        for i in range(10):
            bus.emit("k", time=float(i))
        assert len(seen) == 10
        assert len(bus) == 2


class TestRingBuffer:
    def test_capacity_must_be_positive(self):
        with pytest.raises(EventBusError):
            EventBus(capacity=0)

    def test_drop_oldest_keeps_newest(self):
        bus = EventBus(capacity=3)
        for i in range(7):
            bus.emit("k", time=float(i))
        assert [e.time for e in bus.events()] == [4.0, 5.0, 6.0]

    def test_dropped_counter(self):
        bus = EventBus(capacity=3)
        for i in range(7):
            bus.emit("k", time=float(i))
        assert bus.dropped == 4
        assert bus.emitted == 7

    def test_seq_gaps_survive_drops(self):
        """Sequence numbers are bus-global, so the oldest retained
        event reveals how much history was lost."""
        bus = EventBus(capacity=2)
        for i in range(5):
            bus.emit("k", time=float(i))
        assert [e.seq for e in bus.events()] == [3, 4]

    def test_events_filters_by_kind(self):
        bus = EventBus()
        bus.emit("a", time=0.0)
        bus.emit("b", time=1.0)
        bus.emit("a", time=2.0)
        assert [e.time for e in bus.events("a")] == [0.0, 2.0]

    def test_last(self):
        bus = EventBus()
        for i in range(5):
            bus.emit("k", time=float(i))
        assert [e.time for e in bus.last(2)] == [3.0, 4.0]
        assert bus.last(0) == []
        assert len(bus.last(100)) == 5

    def test_clear_keeps_counters_and_subscribers(self):
        bus = EventBus(capacity=2)
        seen = []
        bus.subscribe(seen.append)
        for i in range(3):
            bus.emit("k", time=float(i))
        bus.clear()
        assert len(bus) == 0
        assert bus.dropped == 1
        bus.emit("k", time=9.0)
        assert len(seen) == 4


class TestNullBus:
    def test_null_bus_is_inert(self):
        NULL_EVENTS.use_clock(lambda: 1.0)
        assert NULL_EVENTS.emit("k", time=0.0, source="x", a=1) is None
        assert NULL_EVENTS.events() == []
        assert NULL_EVENTS.last() == []
        assert len(NULL_EVENTS) == 0
        assert not NULL_EVENTS.enabled
        assert EventBus().enabled

    def test_null_bus_subscribe_noop(self):
        cb = lambda e: None  # noqa: E731
        assert NULL_EVENTS.subscribe(cb) is cb
        NULL_EVENTS.unsubscribe(cb)  # never raises
