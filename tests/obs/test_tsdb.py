"""Tests for the bounded telemetry time-series store."""

import pytest

from repro.obs.events import EventBus
from repro.obs.metrics import MetricsRegistry
from repro.obs.tsdb import Sample, TelemetryStore, TelemetryStoreError


@pytest.fixture
def store():
    return TelemetryStore()


class TestRecording:
    def test_record_dict_and_registry(self, store):
        registry = MetricsRegistry()
        registry.counter("c").inc(3)
        store.record(registry)
        store.record({"c": 4.0})
        assert len(store) == 2
        assert store.latest().get("c") == 4.0

    def test_fallback_clock_counts_samples(self, store):
        first = store.record({})
        second = store.record({})
        assert (first.time, second.time) == (0.0, 1.0)

    def test_injected_clock(self):
        times = iter([1.5, 2.5])
        store = TelemetryStore(clock=lambda: next(times))
        assert store.record({}).time == 1.5
        assert store.record({}).time == 2.5

    def test_use_clock_rebinds(self, store):
        store.use_clock(lambda: 9.0)
        assert store.record({}).time == 9.0

    def test_explicit_time_wins(self, store):
        assert store.record({}, time=7.25).time == 7.25

    def test_time_regression_rejected(self, store):
        store.record({}, time=5.0)
        with pytest.raises(TelemetryStoreError):
            store.record({}, time=4.0)

    def test_equal_time_allowed(self, store):
        store.record({}, time=5.0)
        assert store.record({}, time=5.0).time == 5.0

    def test_unsnapshotable_source_rejected(self, store):
        with pytest.raises(TelemetryStoreError):
            store.record(object())

    def test_ring_capacity_drop_oldest(self):
        store = TelemetryStore(capacity=3)
        for i in range(5):
            store.record({"v": float(i)})
        samples = store.samples()
        assert [s.get("v") for s in samples] == [2.0, 3.0, 4.0]
        assert store.dropped == 2
        assert store.recorded == 5

    def test_series_capacity_is_independent(self):
        store = TelemetryStore(capacity=2, series_capacity=4)
        for i in range(6):
            store.record({"v": float(i)})
        # Ring holds 2, the per-series history holds 4.
        assert len(store) == 2
        assert [v for _, v in store.series("v")] == [2.0, 3.0, 4.0, 5.0]

    def test_bad_capacities_rejected(self):
        with pytest.raises(TelemetryStoreError):
            TelemetryStore(capacity=0)
        with pytest.raises(TelemetryStoreError):
            TelemetryStore(series_capacity=0)


class TestQueries:
    def fill(self, store):
        for t, v in [(0.0, 1.0), (1.0, 3.0), (2.0, 6.0), (3.0, 10.0)]:
            store.record({"flow.jobs": v, "runtime.gauge": v / 2}, time=t)

    def test_latest_none_when_empty(self, store):
        assert store.latest() is None
        assert store.samples() == []

    def test_samples_window(self, store):
        self.fill(store)
        recent = store.samples(window_s=1.0)
        assert [s.time for s in recent] == [2.0, 3.0]

    def test_negative_window_rejected(self, store):
        self.fill(store)
        with pytest.raises(TelemetryStoreError):
            store.samples(window_s=-1.0)

    def test_window_bounds(self, store):
        self.fill(store)
        assert [s.time for s in store.window(1.0, 2.0)] == [1.0, 2.0]
        with pytest.raises(TelemetryStoreError):
            store.window(2.0, 1.0)

    def test_keys_sorted_and_filtered(self, store):
        self.fill(store)
        assert store.keys() == ["flow.jobs", "runtime.gauge"]
        assert store.keys("flow.*") == ["flow.jobs"]

    def test_series_points(self, store):
        self.fill(store)
        assert store.series("flow.jobs") == [
            (0.0, 1.0),
            (1.0, 3.0),
            (2.0, 6.0),
            (3.0, 10.0),
        ]
        assert store.series("missing") == []

    def test_delta_and_rate(self, store):
        self.fill(store)
        assert store.delta("flow.jobs") == 9.0
        assert store.rate("flow.jobs") == 3.0
        assert store.delta("flow.jobs", window_s=1.0) == 4.0

    def test_delta_degenerate(self, store):
        store.record({"v": 1.0})
        assert store.delta("v") == 0.0
        assert store.rate("v") == 0.0

    def test_aggregate_sum_max_and_missing(self, store):
        store.record({"c{a=1}": 2.0, "c{a=2}": 5.0, "other": 1.0})
        assert store.aggregate("c{*") == 7.0
        assert store.aggregate("c{*", how="max") == 5.0
        assert store.aggregate("nope*") is None
        with pytest.raises(TelemetryStoreError):
            store.aggregate("c{*", how="median")

    def test_aggregate_empty_store(self, store):
        assert store.aggregate("*") is None

    def test_to_dict(self, store):
        self.fill(store)
        doc = store.to_dict()
        assert doc["recorded"] == 4
        assert doc["buffered"] == 4
        assert doc["series"] == 2
        assert doc["span"] == [0.0, 3.0]


class TestAttach:
    def test_samples_ride_event_times(self):
        bus = EventBus()
        registry = MetricsRegistry()
        counter = registry.counter("ticks")
        store = TelemetryStore()
        store.attach(bus, registry)
        for t in (0.5, 1.5, 2.5):
            counter.inc()
            bus.emit("tick", time=t)
        assert [s.time for s in store.samples()] == [0.5, 1.5, 2.5]
        assert store.latest().get("ticks") == 3.0

    def test_interval_throttles(self):
        bus = EventBus()
        store = TelemetryStore()
        store.attach(bus, MetricsRegistry(), interval=1.0)
        for t in (0.0, 0.5, 1.0, 1.2, 2.0):
            bus.emit("tick", time=t)
        assert [s.time for s in store.samples()] == [0.0, 1.0, 2.0]

    def test_backwards_event_times_skipped(self):
        # Flow events (CAD minutes) may precede runtime events (DES
        # seconds) on a shared bus; the sampler never steps backwards.
        bus = EventBus()
        store = TelemetryStore()
        store.attach(bus, MetricsRegistry())
        bus.emit("flow", time=100.0)
        bus.emit("runtime", time=0.5)
        bus.emit("runtime", time=200.0)
        assert [s.time for s in store.samples()] == [100.0, 200.0]

    def test_unsubscribe_stops_sampling(self):
        bus = EventBus()
        store = TelemetryStore()
        sampler = store.attach(bus, MetricsRegistry())
        bus.emit("tick", time=1.0)
        bus.unsubscribe(sampler)
        bus.emit("tick", time=2.0)
        assert len(store) == 1

    def test_negative_interval_rejected(self):
        with pytest.raises(TelemetryStoreError):
            TelemetryStore().attach(EventBus(), MetricsRegistry(), interval=-1.0)


class TestSample:
    def test_get_with_default(self):
        sample = Sample(time=1.0, values={"a": 2.0})
        assert sample.get("a") == 2.0
        assert sample.get("b") == 0.0
        assert sample.get("b", default=-1.0) == -1.0
