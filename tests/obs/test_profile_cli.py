"""CLI: ``repro profile <workload>`` and ``repro profile-diff``.

The acceptance path of the profiling layer end to end: the smoke
workload produces a reconciled profile with the DES dispatch loop
among the hot paths, baselines seed and gate, and an injected
synthetic hotspot (a sleep in the NoC transfer model) trips the gate
with a nonzero exit.
"""

import json
import time

import pytest

from repro.cli import main
from repro.runtime.prc import PrcDevice
from repro.obs.profiler import load_profile, self_host_total
from repro.obs.profdiff import self_time_shares


def run_profile(tmp_path, capsys, extra=()):
    code = main(["profile", "fig4_smoke", "--out", str(tmp_path), *extra])
    out = capsys.readouterr().out
    return code, out


class TestProfileCommand:
    def test_smoke_workload_writes_reconciled_profile(self, tmp_path, capsys):
        code, out = run_profile(tmp_path, capsys)
        assert code == 0
        json_path = tmp_path / "PROFILE_fig4_smoke.json"
        collapsed = tmp_path / "fig4_smoke.collapsed"
        assert json_path.is_file() and collapsed.is_file()
        document = load_profile(json_path)
        assert document["experiment"] == "fig4_smoke"
        total = document["total_host_s"]
        assert total > 0
        # Acceptance: self times within 1% of the root inclusive time
        # (by construction they are exactly equal).
        assert abs(self_host_total(document) - total) / total < 0.01
        assert "reconciliation" in out
        # Collapsed lines cover the same tree.
        lines = collapsed.read_text().splitlines()
        assert lines and all(" " in line for line in lines)

    def test_des_dispatch_is_among_the_hot_paths(self, tmp_path, capsys):
        code, _ = run_profile(tmp_path, capsys)
        assert code == 0
        document = load_profile(tmp_path / "PROFILE_fig4_smoke.json")
        shares = self_time_shares(document)
        top = [
            path
            for path, _ in sorted(shares.items(), key=lambda kv: -kv[1])[:10]
        ]
        assert any("dispatch:" in path for path in top)

    def test_json_flag_prints_the_document(self, tmp_path, capsys):
        code, out = run_profile(tmp_path, capsys, extra=["--json"])
        assert code == 0
        document = json.loads(out)
        assert document["experiment"] == "fig4_smoke"
        assert document["tree"]["name"] == "root"

    def test_unknown_target_fails_with_guidance(self, tmp_path, capsys):
        code = main(["profile", "nonesuch"])
        assert code == 1
        err = capsys.readouterr().err
        assert "fig4_smoke" in err and "fig4_wami_runtime" in err

    def test_legacy_stage_target_still_works(self, capsys):
        assert main(["profile", "debayer"]) == 0
        assert "ms/frame" in capsys.readouterr().out

    def test_build_profile_flag_writes_a_profile(self, tmp_path, capsys):
        out = tmp_path / "build.json"
        assert main(["build", "soc_y", "--profile", str(out)]) == 0
        document = load_profile(out)
        assert document["experiment"] == "build_soc_y"
        assert out.with_suffix(".collapsed").is_file()
        assert "profile written" in capsys.readouterr().out

    def test_trace_plus_profile_embeds_the_document(self, tmp_path, capsys):
        trace = tmp_path / "trace.json"
        profile = tmp_path / "profile.json"
        assert (
            main(
                [
                    "deploy",
                    "soc_y",
                    "--frames",
                    "1",
                    "--trace",
                    str(trace),
                    "--profile",
                    str(profile),
                ]
            )
            == 0
        )
        embedded = json.loads(trace.read_text())["metadata"]["profile"]
        assert embedded == load_profile(profile)


class TestProfileDiffCommand:
    @pytest.fixture
    def seeded(self, tmp_path, capsys):
        results = tmp_path / "results"
        baselines = tmp_path / "baselines"
        assert main(["profile", "fig4_smoke", "--out", str(results)]) == 0
        assert (
            main(
                [
                    "profile-diff",
                    "--update",
                    "--results-dir",
                    str(results),
                    "--baselines-dir",
                    str(baselines),
                ]
            )
            == 0
        )
        capsys.readouterr()
        return results, baselines

    def diff(self, results, baselines):
        return main(
            [
                "profile-diff",
                "--results-dir",
                str(results),
                "--baselines-dir",
                str(baselines),
            ]
        )

    def test_update_seeds_a_baseline(self, seeded):
        _, baselines = seeded
        payload = json.loads((baselines / "fig4_smoke.json").read_text())
        assert payload["experiment"] == "fig4_smoke"
        assert payload["paths"]

    def test_fresh_profile_is_in_band(self, seeded, capsys):
        results, baselines = seeded
        assert self.diff(results, baselines) == 0
        assert "1/1 profiles in band" in capsys.readouterr().out

    def test_missing_profile_fails(self, seeded, tmp_path, capsys):
        _, baselines = seeded
        assert self.diff(tmp_path / "empty", baselines) == 1
        assert "MISSING" in capsys.readouterr().out

    def test_no_baselines_fails_with_guidance(self, tmp_path, capsys):
        assert (
            main(
                [
                    "profile-diff",
                    "--results-dir",
                    str(tmp_path),
                    "--baselines-dir",
                    str(tmp_path / "none"),
                ]
            )
            == 1
        )
        assert "--update" in capsys.readouterr().err

    def test_injected_noc_hotspot_trips_the_gate(
        self, seeded, capsys, monkeypatch
    ):
        results, baselines = seeded
        # Synthetic hotspot: every NoC transfer-window evaluation burns
        # host time inside the profiled ``noc.transfer`` frame, shifting
        # self-time shares toward the NoC paths. Patched below the
        # per-size transfer cache so every reconfiguration pays it.
        original = PrcDevice._transfer_seconds

        def slow(self, size_bytes, split=False):
            time.sleep(0.003)
            return original(self, size_bytes, split=split)

        monkeypatch.setattr(PrcDevice, "_transfer_seconds", slow)
        assert main(["profile", "fig4_smoke", "--out", str(results)]) == 0
        capsys.readouterr()
        assert self.diff(results, baselines) == 1
        out = capsys.readouterr().out
        assert "FAILED" in out
        assert "hot-path failure" in out
