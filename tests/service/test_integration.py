"""End-to-end service tests: scale, isolation, parity, crash recovery.

The kill-and-restart test drives the real ``python -m repro serve``
daemon as a subprocess, SIGKILLs it, restarts it on the same state
directory and asserts the recovered job's result is byte-identical to
an uninterrupted control run — the service's central crash-safety
claim.
"""

import gc
import json
import os
import re
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.service.client import ServiceClient, ServiceError
from repro.service.daemon import BuildService, ServiceConfig
from repro.service.jobs import JobSpec
from repro.service.queue import TenantQuota
from repro.service.supervisor import Supervisor

REPO_ROOT = Path(__file__).resolve().parents[2]

CONFIGS = ["soc_1", "soc_2", "soc_3", "soc_4"]


def wait_all(client, job_ids, timeout=240.0):
    deadline = time.monotonic() + timeout
    records = {}
    for job_id in job_ids:
        remaining = max(1.0, deadline - time.monotonic())
        records[job_id] = client.wait(job_id, timeout=remaining)
    return records


class TestScale:
    def test_hundred_jobs_two_tenants_one_pool(self, tmp_path):
        config = ServiceConfig(
            state_dir=tmp_path / "state", port=0, workers=4, jobs=2
        )
        with BuildService(config) as service:
            client = ServiceClient(port=service.port)
            job_ids = []
            for index in range(100):
                record = client.submit(
                    CONFIGS[index % len(CONFIGS)],
                    tenant=("acme", "birch")[index % 2],
                    priority=index % 3,
                )
                job_ids.append(record["job_id"])
            assert len(set(job_ids)) == 100

            records = wait_all(client, job_ids)
            assert all(r["state"] == "succeeded" for r in records.values())
            # One warm pool, one cache: aside from the distinct configs
            # (and workers racing on a cold key, which at worst build a
            # duplicate each), everything is served from the cache.
            cached = sum(1 for r in records.values() if r["cached"])
            assert cached >= 100 - len(CONFIGS) * config.workers

            listing = client.jobs()
            assert listing["queue"]["admitted"] == 100
            assert listing["queue"]["rejected"] == 0
            by_tenant = {
                tenant: len(client.jobs(tenant=tenant)["jobs"])
                for tenant in ("acme", "birch")
            }
            assert by_tenant == {"acme": 50, "birch": 50}
            assert "service_jobs_total" in client.metrics()


class TestIsolation:
    def test_over_quota_tenant_is_rejected_never_queued(self, tmp_path):
        config = ServiceConfig(
            state_dir=tmp_path / "state",
            port=0,
            workers=2,
            jobs=1,
            quotas={"capped": TenantQuota(max_queued=0)},
        )
        with BuildService(config) as service:
            client = ServiceClient(port=service.port)
            for _ in range(3):
                with pytest.raises(ServiceError) as exc:
                    client.submit("soc_2", tenant="capped")
                assert exc.value.status == 429
                assert exc.value.reason == "tenant_queued"
            assert client.jobs(tenant="capped")["jobs"] == []
            # The other tenant is untouched by the noisy neighbour.
            record = client.submit("soc_2", tenant="polite")
            assert client.wait(record["job_id"])["state"] == "succeeded"
            snapshot = client.jobs()["queue"]
            assert snapshot["rejected"] == 3
            assert snapshot["admitted"] == 1


class TestParity:
    def test_serial_and_pooled_daemons_agree(self, tmp_path):
        results = {}
        for jobs in (1, 4):
            sup = Supervisor(
                state_dir=tmp_path / f"state{jobs}", workers=2, jobs=jobs
            )
            try:
                sup.start()
                records = [
                    sup.submit(JobSpec(config=name)) for name in CONFIGS
                ]
                deadline = time.monotonic() + 240
                for record in records:
                    while not record.state.terminal:
                        assert time.monotonic() < deadline
                        time.sleep(0.01)
                assert all(r.result is not None for r in records)
                results[jobs] = {
                    r.spec.config: json.dumps(r.result, sort_keys=True)
                    for r in records
                }
            finally:
                sup.stop()
        assert results[1] == results[4]


@pytest.mark.perf
class TestWarmCache:
    def test_warm_hit_is_ten_times_faster_than_cold(self, tmp_path):
        config = ServiceConfig(
            state_dir=tmp_path / "state", port=0, workers=1, jobs=1
        )
        with BuildService(config) as service:
            client = ServiceClient(port=service.port)
            # soc_1 is the largest characterization SoC — the slowest
            # cold build, so the cache-hit ratio has headroom. GC is
            # quiesced (process-global, so it covers the in-process
            # daemon's worker thread too): a gen-2 pass late in a full
            # suite run can land inside the ~2 ms warm window.
            gc.collect()
            gc.disable()
            try:
                cold = client.wait(client.submit("soc_1")["job_id"])
                warm = client.wait(client.submit("soc_1")["job_id"])
            finally:
                gc.enable()
        assert cold["cached"] is False
        assert warm["cached"] is True
        assert warm["result"] == cold["result"]
        assert cold["elapsed_s"] >= 10 * warm["elapsed_s"]


def start_daemon(state_dir, *extra_args):
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    env["PYTHONPATH"] = src + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve",
            "--state-dir", str(state_dir),
            "--port", "0", "--workers", "1", "--jobs", "1",
            *extra_args,
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        cwd=REPO_ROOT,
        env=env,
    )
    banner = []
    while True:
        line = proc.stdout.readline()
        if not line:
            raise AssertionError(
                "daemon died before listening:\n" + "".join(banner)
            )
        banner.append(line)
        match = re.search(r"service listening on http://[^:]+:(\d+)", line)
        if match:
            return proc, int(match.group(1))


class TestKillRestart:
    def test_sigkill_restart_resumes_byte_identically(self, tmp_path):
        state = tmp_path / "state"
        first, port = start_daemon(state)
        try:
            client = ServiceClient(port=port, timeout=10)
            submitted = client.submit("soc_4", tenant="acme")
            job_id = submitted["job_id"]
            # Let the job reach the worker, then kill without warning.
            deadline = time.monotonic() + 60
            while time.monotonic() < deadline:
                state_now = client.status(job_id)["state"]
                if state_now in ("running", "succeeded"):
                    break
                time.sleep(0.005)
            first.send_signal(signal.SIGKILL)
            first.wait(timeout=30)
        finally:
            if first.poll() is None:
                first.kill()
                first.wait(timeout=30)

        second, port = start_daemon(state)
        try:
            client = ServiceClient(port=port, timeout=10)
            record = client.wait(job_id, timeout=120)
            assert record["state"] == "succeeded"
            result = client.result(job_id)
            # The daemon drained its recovery backlog: healthz is 200.
            health = client.healthz()
            assert health["exit_code"] < 2
        finally:
            second.kill()
            second.wait(timeout=30)

        # Control: the same job on a fresh daemon, never interrupted.
        control_sup = Supervisor(
            state_dir=tmp_path / "control", workers=1, jobs=1
        )
        try:
            control_sup.start()
            control = control_sup.submit(JobSpec(config="soc_4", tenant="acme"))
            deadline = time.monotonic() + 120
            while not control.state.terminal:
                assert time.monotonic() < deadline
                time.sleep(0.01)
        finally:
            control_sup.stop()
        assert json.dumps(result["result"], sort_keys=True) == json.dumps(
            control.result, sort_keys=True
        )


class TestSigtermDrain:
    def test_sigterm_drains_within_deadline_and_resumes(self, tmp_path):
        state = tmp_path / "state"
        # Wedge the first attempt so the job is provably in flight and
        # cannot finish inside the drain window: the drain MUST hand it
        # back to the queue rather than wait it out.
        first, port = start_daemon(
            state,
            "--drain-timeout", "1.0",
            "--inject-service-fault", "slow",
        )
        try:
            client = ServiceClient(port=port, timeout=10)
            submitted = client.submit("soc_4", tenant="acme")
            job_id = submitted["job_id"]
            deadline = time.monotonic() + 60
            while time.monotonic() < deadline:
                if client.status(job_id)["state"] == "running":
                    break
                time.sleep(0.005)
            else:
                raise AssertionError("job never reached a worker")

            asked = time.monotonic()
            first.send_signal(signal.SIGTERM)
            # Graceful exit, bounded by the drain deadline (plus the
            # accept-loop tick and interpreter teardown slack).
            assert first.wait(timeout=30) == 0
            assert time.monotonic() - asked < 15.0
        finally:
            if first.poll() is None:
                first.kill()
                first.wait(timeout=30)

        # The drained job was requeued with its checkpoint, not lost
        # and not burned: a healthy restart resumes and finishes it.
        second, port = start_daemon(state)
        try:
            client = ServiceClient(port=port, timeout=10)
            record = client.wait(job_id, timeout=120)
            assert record["state"] == "succeeded"
            assert record["requeues"] >= 1
            result = client.result(job_id)
            assert client.healthz()["exit_code"] < 2
        finally:
            second.send_signal(signal.SIGTERM)
            try:
                second.wait(timeout=30)
            except subprocess.TimeoutExpired:
                second.kill()
                second.wait(timeout=30)

        control_sup = Supervisor(
            state_dir=tmp_path / "control", workers=1, jobs=1
        )
        try:
            control_sup.start()
            control = control_sup.submit(JobSpec(config="soc_4", tenant="acme"))
            deadline = time.monotonic() + 120
            while not control.state.terminal:
                assert time.monotonic() < deadline
                time.sleep(0.01)
        finally:
            control_sup.stop()
        assert json.dumps(result["result"], sort_keys=True) == json.dumps(
            control.result, sort_keys=True
        )
