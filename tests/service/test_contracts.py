"""Every CLI ``--json`` payload round-trips its committed contract.

One test per verb: run the real ``main()``, parse stdout, check the
envelope, validate against ``tests/service/data/cli_*.schema.json``.
A shape change that would break a ``repro ... --json | jq`` consumer
fails here, not in a user's pipeline.
"""

import json

import pytest

from repro.cli import main, parse_quotas
from repro.errors import PrEspError
from repro.service.queue import TenantQuota
from repro.service.schema import check_envelope

from tests.service.contracts import assert_valid, contract, job_contract


def run_json(capsys, argv, expect_code=0):
    assert main(argv) == expect_code
    return json.loads(capsys.readouterr().out)


class TestCliPayloads:
    def test_build(self, capsys):
        document = run_json(capsys, ["build", "soc_2", "--json"])
        check_envelope(document, kind="build")
        assert_valid(document, contract("cli_build"), "build --json")
        assert document["soc"] == "soc_2"

    def test_sweep(self, capsys):
        document = run_json(
            capsys, ["sweep", "soc_2", "soc_3", "--strategies", "auto", "--json"]
        )
        check_envelope(document, kind="sweep")
        assert_valid(document, contract("cli_sweep"), "sweep --json")
        assert len(document["outcomes"]) == 2
        assert all(row["ok"] for row in document["outcomes"])

    def test_deploy(self, capsys):
        document = run_json(capsys, ["deploy", "soc_z", "--frames", "1", "--json"])
        check_envelope(document, kind="deploy")
        assert_valid(document, contract("cli_deploy"), "deploy --json")

    def test_monitor(self, capsys):
        document = run_json(
            capsys, ["monitor", "soc_z", "--frames", "1", "--json"]
        )
        check_envelope(document, kind="monitor")
        assert_valid(document, contract("cli_monitor"), "monitor --json")

    def test_dashboard(self, capsys):
        document = run_json(
            capsys, ["dashboard", "soc_z", "--frames", "1", "--json"]
        )
        check_envelope(document, kind="dashboard")
        assert_valid(document, contract("cli_dashboard"), "dashboard --json")

    def test_bench_diff(self, tmp_path, capsys):
        from repro.obs.perfbase import write_summary

        results = tmp_path / "results"
        baselines = tmp_path / "baselines"
        write_summary(results, "demo", {"total_min": 100.0})
        args = [
            "bench-diff",
            "--results-dir", str(results),
            "--baselines-dir", str(baselines),
        ]
        assert main(args + ["--update"]) == 0
        capsys.readouterr()
        document = run_json(capsys, args + ["--json"])
        check_envelope(document, kind="bench_diff")
        assert_valid(document, contract("cli_bench_diff"), "bench-diff --json")
        assert document["ok"] is True

    def test_bench_diff_regression_payload(self, tmp_path, capsys):
        from repro.obs.perfbase import write_summary

        results = tmp_path / "results"
        baselines = tmp_path / "baselines"
        write_summary(results, "demo", {"total_min": 100.0})
        args = [
            "bench-diff",
            "--results-dir", str(results),
            "--baselines-dir", str(baselines),
        ]
        assert main(args + ["--update"]) == 0
        capsys.readouterr()
        write_summary(results, "demo", {"total_min": 125.0})
        document = run_json(capsys, args + ["--json"], expect_code=1)
        assert_valid(document, contract("cli_bench_diff"), "bench-diff --json")
        assert document["ok"] is False
        statuses = [
            delta["status"]
            for experiment in document["experiments"]
            for delta in experiment["deltas"]
        ]
        assert "regression" in statuses


class TestJobsCliPayloads:
    """``repro jobs ... --json`` prints the API envelope verbatim."""

    def test_submit_and_status(self, idle_server, capsys):
        port = str(idle_server.server_address[1])
        document = run_json(
            capsys,
            ["jobs", "--port", port, "--json", "submit", "soc_2",
             "--tenant", "acme", "--priority", "2"],
        )
        check_envelope(document, kind="job")
        assert_valid(document, job_contract(), "jobs submit --json")
        status = run_json(
            capsys,
            ["jobs", "--port", port, "--json", "status", document["job_id"]],
        )
        assert_valid(status, job_contract(), "jobs status --json")

    def test_list(self, idle_server, capsys):
        port = str(idle_server.server_address[1])
        run_json(capsys, ["jobs", "--port", port, "--json", "submit", "soc_2"])
        document = run_json(capsys, ["jobs", "--port", port, "--json", "list"])
        check_envelope(document, kind="jobs")
        for record in document["jobs"]:
            assert_valid(record, contract("record"), "listed record")
        assert_valid(document["queue"], contract("queue"), "queue snapshot")

    def test_cancel_then_result(self, idle_server, capsys):
        port = str(idle_server.server_address[1])
        submitted = run_json(
            capsys, ["jobs", "--port", port, "--json", "submit", "soc_2"]
        )
        cancelled = run_json(
            capsys,
            ["jobs", "--port", port, "--json", "cancel", submitted["job_id"]],
        )
        assert cancelled["state"] == "cancelled"
        # result exits 1 for anything but success, with a valid payload.
        document = run_json(
            capsys,
            ["jobs", "--port", port, "--json", "result", submitted["job_id"],
             "--no-wait"],
            expect_code=1,
        )
        check_envelope(document, kind="result")
        assert_valid(document, contract("result"), "jobs result --json")

    def test_unreachable_daemon_is_a_cli_error(self, capsys):
        assert main(["jobs", "--port", "1", "--timeout", "0.5", "list"]) == 1
        assert "cannot reach" in capsys.readouterr().err


class TestServeCli:
    def test_parse_quotas(self):
        quotas = parse_quotas(["acme=4:8", "birch=2", "cedar=:6"])
        assert quotas["acme"] == TenantQuota(max_queued=4, max_active=8)
        assert quotas["birch"] == TenantQuota(max_queued=2, max_active=None)
        assert quotas["cedar"] == TenantQuota(max_queued=None, max_active=6)

    @pytest.mark.parametrize("spec", ["acme", "=4", "acme=a", "acme=1:2:3"])
    def test_parse_quotas_rejects_bad_specs(self, spec):
        with pytest.raises(PrEspError, match="quota"):
            parse_quotas([spec])
