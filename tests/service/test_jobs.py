"""The job model: specs, records, the ID minter and the durable store."""

import json

import pytest

from repro.service.jobs import (
    JobError,
    JobIdMinter,
    JobRecord,
    JobSpec,
    JobState,
    JobStore,
)

from tests.service.contracts import assert_valid, contract


def record(job_id="job-00000000-0001", **kwargs) -> JobRecord:
    return JobRecord(job_id=job_id, spec=JobSpec(config="soc_2"), **kwargs)


class TestJobSpec:
    def test_defaults(self):
        spec = JobSpec(config="soc_2")
        assert spec.kind == "build"
        assert spec.tenant == "default"
        assert spec.frames == 1

    def test_rejects_unknown_kind(self):
        with pytest.raises(JobError, match="unknown job kind"):
            JobSpec(config="soc_2", kind="destroy")

    def test_rejects_empty_config_and_tenant(self):
        with pytest.raises(JobError, match="config"):
            JobSpec(config="")
        with pytest.raises(JobError, match="tenant"):
            JobSpec(config="soc_2", tenant="")

    def test_rejects_nonpositive_frames(self):
        with pytest.raises(JobError, match="frames"):
            JobSpec(config="soc_2", frames=0)

    def test_round_trip(self):
        spec = JobSpec(
            config="soc_z", kind="deploy", tenant="acme", priority=3, frames=5
        )
        assert JobSpec.from_dict(spec.to_dict()) == spec

    def test_malformed_dict(self):
        with pytest.raises(JobError, match="malformed job spec"):
            JobSpec.from_dict({"tenant": "acme"})


class TestJobRecord:
    def test_legal_lifecycle(self):
        job = record()
        job.transition(JobState.RUNNING)
        job.transition(JobState.SUCCEEDED)
        assert job.state.terminal

    def test_running_may_requeue(self):
        job = record()
        job.transition(JobState.RUNNING)
        job.transition(JobState.QUEUED)
        assert job.state is JobState.QUEUED

    def test_illegal_transition(self):
        job = record()
        with pytest.raises(JobError, match="illegal transition"):
            job.transition(JobState.SUCCEEDED)

    def test_terminal_states_are_final(self):
        job = record()
        job.transition(JobState.CANCELLED)
        with pytest.raises(JobError, match="illegal transition"):
            job.transition(JobState.RUNNING)

    def test_to_dict_matches_committed_contract(self):
        assert_valid(record().to_dict(), contract("record"), "job record")

    def test_to_dict_omits_null_outcomes(self):
        payload = record().to_dict()
        assert "result" not in payload
        assert "error" not in payload

    def test_round_trip(self):
        job = record(attempts=2, cached=True, resumed_stages=("parse",))
        job.transition(JobState.RUNNING)
        job.result = {"soc": "soc_2"}
        job.transition(JobState.SUCCEEDED)
        clone = JobRecord.from_dict(json.loads(json.dumps(job.to_dict())))
        assert clone == job

    def test_context_carries_tenant_and_kind(self):
        context = record().context()
        assert context.request_id == "job-00000000-0001"
        assert context.tenant == "default"
        assert context.attrs["job_kind"] == "build"


class TestJobIdMinter:
    def test_deterministic_per_tenant(self):
        a, b = JobIdMinter(seed=7), JobIdMinter(seed=7)
        assert a.mint("acme") == b.mint("acme")
        assert a.mint("acme") == b.mint("acme")

    def test_tenants_get_disjoint_sequences(self):
        minter = JobIdMinter()
        assert minter.mint("acme") != minter.mint("birch")

    def test_ids_match_the_store_file_shape(self):
        job_id = JobIdMinter().mint("acme")
        assert job_id.startswith("job-")
        from repro.service.jobs import _JOB_FILE

        assert _JOB_FILE.match(f"{job_id}.json")

    def test_advance_past_skips_used_sequences(self):
        fresh, used = JobIdMinter(seed=3), JobIdMinter(seed=3)
        seen = [used.mint("acme") for _ in range(3)]
        fresh.advance_past(
            [JobRecord(job_id=seen[-1], spec=JobSpec(config="soc_2", tenant="acme"))]
        )
        assert fresh.mint("acme") not in seen


class TestJobStore:
    def test_save_then_load(self, tmp_path):
        store = JobStore(tmp_path)
        job = record()
        store.save(job)
        assert store.load(job.job_id) == job

    def test_load_missing_returns_none(self, tmp_path):
        assert JobStore(tmp_path).load("job-00000000-0009") is None

    def test_no_tmp_litter(self, tmp_path):
        store = JobStore(tmp_path)
        store.save(record())
        assert list(tmp_path.glob("*.tmp")) == []

    def test_load_all_in_admission_order(self, tmp_path):
        store = JobStore(tmp_path)
        for seq, job_id in ((2, "job-00000000-0003"), (0, "job-00000000-0001")):
            store.save(record(job_id=job_id, submit_seq=seq))
        loaded = store.load_all()
        assert [job.submit_seq for job in loaded] == [0, 2]

    def test_load_all_skips_corrupt_and_foreign_files(self, tmp_path):
        store = JobStore(tmp_path)
        store.save(record())
        (tmp_path / "job-00000000-0002.json").write_text("{not json")
        (tmp_path / "notes.json").write_text("{}")
        loaded = store.load_all()
        assert [job.job_id for job in loaded] == ["job-00000000-0001"]
