"""The admission circuit breaker's three-state machine, on a fake clock."""

import pytest

from repro.errors import PrEspError
from repro.service.breaker import BreakerPolicy, BreakerState, CircuitBreaker


class FakeClock:
    def __init__(self):
        self.now = 100.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


def make(clock, **policy):
    policy.setdefault("window", 8)
    policy.setdefault("min_samples", 4)
    policy.setdefault("threshold", 0.5)
    policy.setdefault("cooldown_s", 10.0)
    return CircuitBreaker(policy=BreakerPolicy(**policy), clock=clock)


def storm(breaker, failures):
    for _ in range(failures):
        breaker.record(False)


class TestPolicy:
    def test_defaults_are_valid(self):
        policy = BreakerPolicy()
        assert policy.window == 20
        assert policy.min_samples == 5
        assert policy.threshold == 0.5
        assert policy.probes == 1

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"window": 0},
            {"min_samples": 0},
            {"window": 4, "min_samples": 5},
            {"threshold": 0.0},
            {"threshold": 1.5},
            {"cooldown_s": -1.0},
            {"probes": 0},
        ],
    )
    def test_rejects_bad_values(self, kwargs):
        with pytest.raises(PrEspError):
            BreakerPolicy(**kwargs)


class TestStateMachine:
    def test_closed_admits_and_tracks_outcomes(self):
        breaker = make(FakeClock())
        assert breaker.state is BreakerState.CLOSED
        assert breaker.allow() is True
        breaker.record(True)
        breaker.record(False)
        snapshot = breaker.snapshot()
        assert snapshot["state"] == "closed"
        assert snapshot["failure_rate"] == 0.5
        assert snapshot["window"] == 2

    def test_min_samples_gate_blocks_early_trip(self):
        breaker = make(FakeClock(), min_samples=4)
        storm(breaker, 3)  # 100% failure but below min_samples
        assert breaker.state is BreakerState.CLOSED
        breaker.record(False)  # fourth sample crosses the gate
        assert breaker.state is BreakerState.OPEN
        assert breaker.opened_total == 1

    def test_open_sheds_until_cooldown(self):
        clock = FakeClock()
        breaker = make(clock, cooldown_s=10.0)
        storm(breaker, 4)
        assert breaker.allow() is False
        clock.advance(9.9)
        assert breaker.allow() is False
        clock.advance(0.2)  # past cooldown: half-open, one probe
        assert breaker.allow() is True
        assert breaker.state is BreakerState.HALF_OPEN

    def test_half_open_caps_probes(self):
        clock = FakeClock()
        breaker = make(clock, probes=2)
        storm(breaker, 4)
        clock.advance(11.0)
        assert breaker.allow() is True
        assert breaker.allow() is True
        assert breaker.allow() is False  # both probe slots out

    def test_probe_success_closes_and_clears_window(self):
        clock = FakeClock()
        breaker = make(clock)
        storm(breaker, 4)
        clock.advance(11.0)
        assert breaker.allow() is True
        breaker.record(True)
        assert breaker.state is BreakerState.CLOSED
        # The poisoned window was cleared: one new failure is judged
        # against a fresh history, not the pre-trip storm.
        breaker.record(False)
        assert breaker.state is BreakerState.CLOSED
        assert breaker.snapshot()["window"] == 1

    def test_all_probes_must_succeed(self):
        clock = FakeClock()
        breaker = make(clock, probes=2)
        storm(breaker, 4)
        clock.advance(11.0)
        assert breaker.allow() and breaker.allow()
        breaker.record(True)
        assert breaker.state is BreakerState.HALF_OPEN  # one of two back
        breaker.record(True)
        assert breaker.state is BreakerState.CLOSED

    def test_probe_failure_reopens_and_restarts_cooldown(self):
        clock = FakeClock()
        breaker = make(clock, cooldown_s=10.0)
        storm(breaker, 4)
        clock.advance(11.0)
        assert breaker.allow() is True
        breaker.record(False)
        assert breaker.state is BreakerState.OPEN
        assert breaker.opened_total == 2
        assert breaker.allow() is False  # cooldown restarted at re-open
        clock.advance(11.0)
        assert breaker.allow() is True

    def test_release_probe_frees_a_wedged_slot(self):
        clock = FakeClock()
        breaker = make(clock, probes=1)
        storm(breaker, 4)
        clock.advance(11.0)
        assert breaker.allow() is True  # probe issued...
        assert breaker.allow() is False
        breaker.release_probe()  # ...but the job died before running
        assert breaker.allow() is True  # slot is usable again
        breaker.record(True)
        assert breaker.state is BreakerState.CLOSED

    def test_release_probe_is_a_noop_when_closed(self):
        breaker = make(FakeClock())
        breaker.release_probe()
        assert breaker.state is BreakerState.CLOSED
        assert breaker.allow() is True

    def test_trip_forces_open(self):
        breaker = make(FakeClock())
        breaker.trip("operator")
        assert breaker.state is BreakerState.OPEN
        assert breaker.allow() is False
        breaker.trip("again")  # idempotent while already open
        assert breaker.opened_total == 1

    def test_straggler_outcome_while_open_is_ignored(self):
        clock = FakeClock()
        breaker = make(clock)
        storm(breaker, 4)
        breaker.record(True)  # finished after the trip
        assert breaker.state is BreakerState.OPEN
        assert breaker.allow() is False

    def test_window_slides(self):
        breaker = make(FakeClock(), window=4, min_samples=4, threshold=0.75)
        storm(breaker, 2)
        for _ in range(4):
            breaker.record(True)
        # The two failures slid out of the window: rate is 0.
        assert breaker.snapshot()["failure_rate"] == 0.0
        assert breaker.state is BreakerState.CLOSED

    def test_open_reason_reported_to_callback(self):
        reasons = []
        breaker = CircuitBreaker(
            policy=BreakerPolicy(window=8, min_samples=4, threshold=0.5),
            clock=FakeClock(),
            on_open=reasons.append,
        )
        storm(breaker, 4)
        assert len(reasons) == 1
        assert "failure rate" in reasons[0]

    def test_close_callback_fires_on_probe_success(self):
        clock = FakeClock()
        closes = []
        breaker = CircuitBreaker(
            policy=BreakerPolicy(
                window=8, min_samples=4, threshold=0.5, cooldown_s=10.0
            ),
            clock=clock,
            on_close=lambda: closes.append(True),
        )
        storm(breaker, 4)
        clock.advance(11.0)
        assert breaker.allow() is True
        breaker.record(True)
        assert closes == [True]
