"""The envelope and the dependency-free schema validator."""

import pytest

from repro.service.schema import (
    SCHEMA_VERSION,
    SUBMIT_REQUEST_SCHEMA,
    SchemaError,
    check_envelope,
    ensure_valid,
    envelope,
    validate,
)

from tests.service.contracts import contract


class TestEnvelope:
    def test_wraps_payload_with_version_and_kind(self):
        document = envelope("job", {"job_id": "job-0-1"})
        assert document == {
            "schema_version": SCHEMA_VERSION,
            "kind": "job",
            "job_id": "job-0-1",
        }

    def test_extra_kwargs_merge(self):
        document = envelope("health", {"status": "ok"}, queue={"queued": 0})
        assert document["queue"] == {"queued": 0}

    def test_payload_may_not_shadow_envelope_keys(self):
        with pytest.raises(SchemaError, match="schema_version"):
            envelope("job", {"schema_version": 2})
        with pytest.raises(SchemaError, match="kind"):
            envelope("job", {"kind": "other"})

    def test_check_envelope_roundtrip(self):
        document = envelope("job", {"x": 1})
        assert check_envelope(document, kind="job") is document

    def test_check_envelope_rejects_non_objects(self):
        with pytest.raises(SchemaError, match="JSON object"):
            check_envelope([1, 2])

    def test_check_envelope_rejects_version_mismatch(self):
        with pytest.raises(SchemaError, match="schema_version"):
            check_envelope({"schema_version": 999, "kind": "job"})

    def test_check_envelope_rejects_missing_kind(self):
        with pytest.raises(SchemaError, match="kind"):
            check_envelope({"schema_version": SCHEMA_VERSION})

    def test_check_envelope_rejects_wrong_kind(self):
        with pytest.raises(SchemaError, match="expected a 'job'"):
            check_envelope(envelope("error", {}), kind="job")


class TestValidator:
    def test_type_checks(self):
        assert validate("x", {"type": "string"}) == []
        assert validate(1, {"type": "string"})
        assert validate(1.5, {"type": "number"}) == []
        assert validate(1, {"type": "number"}) == []

    def test_bool_is_not_a_number(self):
        assert validate(True, {"type": "integer"})
        assert validate(True, {"type": "number"})
        assert validate(True, {"type": "boolean"}) == []

    def test_type_lists(self):
        schema = {"type": ["string", "null"]}
        assert validate(None, schema) == []
        assert validate("x", schema) == []
        assert validate(2, schema)

    def test_required_and_additional_properties(self):
        schema = {
            "type": "object",
            "required": ["a"],
            "additionalProperties": False,
            "properties": {"a": {"type": "integer"}},
        }
        assert validate({"a": 1}, schema) == []
        assert any("missing required" in e for e in validate({}, schema))
        assert any("unexpected" in e for e in validate({"a": 1, "b": 2}, schema))

    def test_items_enum_const_minimum(self):
        schema = {
            "type": "array",
            "items": {"type": "integer", "minimum": 1},
        }
        assert validate([1, 2], schema) == []
        assert any("minimum" in e for e in validate([0], schema))
        assert validate("no", {"enum": ["a", "b"]})
        assert validate("a", {"enum": ["a", "b"]}) == []
        assert validate(2, {"const": 1})

    def test_any_of(self):
        schema = {"anyOf": [{"type": "string"}, {"type": "null"}]}
        assert validate(None, schema) == []
        assert any("anyOf" in e for e in validate(3, schema))

    def test_local_ref(self):
        schema = {
            "$defs": {"id": {"type": "string"}},
            "type": "object",
            "properties": {"job": {"$ref": "#/$defs/id"}},
        }
        assert validate({"job": "x"}, schema) == []
        assert validate({"job": 3}, schema)

    def test_unresolvable_ref_is_an_error(self):
        with pytest.raises(SchemaError, match="unresolvable"):
            validate(1, {"$ref": "#/$defs/missing"})

    def test_unknown_type_is_an_error(self):
        with pytest.raises(SchemaError, match="unknown type"):
            validate(1, {"type": "quaternion"})

    def test_ensure_valid_raises_with_all_violations(self):
        schema = {
            "type": "object",
            "required": ["a", "b"],
            "properties": {},
        }
        with pytest.raises(SchemaError, match="'a'.*'b'"):
            ensure_valid({}, schema)


class TestSubmitContract:
    """The live submit schema and the committed copy stay in lockstep."""

    def test_committed_contract_matches_live_schema(self):
        assert contract("submit_request") == SUBMIT_REQUEST_SCHEMA

    def test_good_submit_body_passes(self):
        body = envelope("submit", {"config": "soc_2", "tenant": "acme"})
        assert validate(body, SUBMIT_REQUEST_SCHEMA) == []

    def test_unknown_field_fails(self):
        body = envelope("submit", {"config": "soc_2", "surprise": 1})
        assert validate(body, SUBMIT_REQUEST_SCHEMA)

    def test_bad_job_kind_fails(self):
        body = envelope("submit", {"config": "soc_2", "job_kind": "destroy"})
        assert validate(body, SUBMIT_REQUEST_SCHEMA)
