"""Admission control and priority scheduling of the job queue."""

import threading

import pytest

from repro.service.jobs import JobRecord, JobSpec
from repro.service.queue import AdmissionError, JobQueue, TenantQuota

from tests.service.contracts import assert_valid, contract


def job(seq, tenant="default", priority=0):
    return JobRecord(
        job_id=f"job-00000000-{seq + 1:04d}",
        spec=JobSpec(config="soc_2", tenant=tenant, priority=priority),
        submit_seq=seq,
    )


class TestAdmission:
    def test_capacity_must_be_positive(self):
        # A bad capacity is an operator configuration error, not an
        # admission decision: plain ValueError, no 429 reason token.
        with pytest.raises(ValueError):
            JobQueue(capacity=0)
        with pytest.raises(ValueError):
            JobQueue(capacity=-3)

    def test_queue_full(self):
        queue = JobQueue(capacity=1)
        queue.submit(job(0))
        with pytest.raises(AdmissionError) as exc:
            queue.submit(job(1))
        assert exc.value.reason == "queue_full"
        assert queue.depth() == 1

    def test_tenant_queued_quota(self):
        queue = JobQueue(quotas={"acme": TenantQuota(max_queued=1)})
        queue.submit(job(0, tenant="acme"))
        with pytest.raises(AdmissionError) as exc:
            queue.submit(job(1, tenant="acme"))
        assert exc.value.reason == "tenant_queued"
        # Other tenants are unaffected.
        queue.submit(job(2, tenant="birch"))

    def test_tenant_active_quota_counts_running(self):
        queue = JobQueue(quotas={"acme": TenantQuota(max_active=1)})
        queue.submit(job(0, tenant="acme"))
        assert queue.pop(timeout=0) is not None  # now running, not queued
        with pytest.raises(AdmissionError) as exc:
            queue.submit(job(1, tenant="acme"))
        assert exc.value.reason == "tenant_active"
        queue.mark_done("acme")
        queue.submit(job(1, tenant="acme"))

    def test_rejected_job_is_never_queued(self):
        queue = JobQueue(quotas={"acme": TenantQuota(max_queued=0)})
        with pytest.raises(AdmissionError):
            queue.submit(job(0, tenant="acme"))
        assert queue.depth() == 0
        assert queue.pop(timeout=0) is None

    def test_closed_queue_rejects(self):
        queue = JobQueue()
        queue.close()
        with pytest.raises(AdmissionError) as exc:
            queue.submit(job(0))
        assert exc.value.reason == "closed"

    def test_admission_counters(self):
        queue = JobQueue(capacity=1)
        queue.submit(job(0))
        with pytest.raises(AdmissionError):
            queue.submit(job(1))
        assert queue.admitted == 1
        assert queue.rejected == 1


class TestScheduling:
    def test_priority_order_then_fifo(self):
        queue = JobQueue()
        queue.submit(job(0, priority=0))
        queue.submit(job(1, priority=5))
        queue.submit(job(2, priority=5))
        queue.submit(job(3, priority=1))
        popped = [queue.pop(timeout=0) for _ in range(4)]
        # Highest priority first; FIFO (submit_seq) inside a class.
        assert popped == [
            "job-00000000-0002",
            "job-00000000-0003",
            "job-00000000-0004",
            "job-00000000-0001",
        ]

    def test_pop_timeout_returns_none(self):
        assert JobQueue().pop(timeout=0.01) is None

    def test_pop_after_close_drains_then_none(self):
        queue = JobQueue()
        queue.submit(job(0))
        queue.close()
        assert queue.pop(timeout=0) == "job-00000000-0001"
        assert queue.pop(timeout=0) is None

    def test_cancel_tombstones_queued_job(self):
        queue = JobQueue()
        first, second = job(0), job(1)
        queue.submit(first)
        queue.submit(second)
        assert queue.cancel(first) is True
        assert queue.depth() == 1
        assert queue.pop(timeout=0) == second.job_id
        assert queue.pop(timeout=0) is None

    def test_cancel_unknown_job_is_false(self):
        assert JobQueue().cancel(job(0)) is False

    def test_cancel_frees_tenant_quota(self):
        queue = JobQueue(quotas={"acme": TenantQuota(max_queued=1)})
        first = job(0, tenant="acme")
        queue.submit(first)
        queue.cancel(first)
        queue.submit(job(1, tenant="acme"))  # slot was released

    def test_cancel_vs_pop_race_is_exactly_once(self):
        # Workers pop while a client cancels the same jobs: every job
        # must go to exactly one side — popped once, or cancelled with
        # cancel() returning True — and the accounting must balance.
        jobs = [job(n) for n in range(200)]
        queue = JobQueue()
        for record in jobs:
            queue.submit(record)

        popped, cancelled, closed = [], [], threading.Event()

        def popper(sink):
            while True:
                job_id = queue.pop(timeout=0.02)
                if job_id is None:
                    if closed.is_set():
                        return
                    continue
                sink.append(job_id)
                queue.mark_done("default")

        def canceller():
            for record in jobs[::2]:
                if queue.cancel(record):
                    cancelled.append(record.job_id)

        sinks = [[], []]
        threads = [
            threading.Thread(target=popper, args=(sinks[0],)),
            threading.Thread(target=popper, args=(sinks[1],)),
            threading.Thread(target=canceller),
        ]
        for thread in threads:
            thread.start()
        threads[2].join()  # all cancels decided
        # Let the poppers drain the remainder, then release them.
        deadline_depth = queue.depth()
        while deadline_depth:
            deadline_depth = queue.depth()
        queue.close()
        closed.set()
        for thread in threads[:2]:
            thread.join()
        popped = sinks[0] + sinks[1]

        assert set(popped).isdisjoint(cancelled)
        assert len(popped) == len(set(popped))  # nothing popped twice
        assert sorted(popped + cancelled) == sorted(r.job_id for r in jobs)
        assert queue.depth() == 0
        assert queue.snapshot()["tenants"] == {}


class TestSnapshot:
    def test_matches_committed_contract(self):
        queue = JobQueue(capacity=8)
        queue.submit(job(0, tenant="acme"))
        queue.submit(job(1, tenant="birch"))
        assert queue.pop(timeout=0) is not None
        snapshot = queue.snapshot()
        assert_valid(snapshot, contract("queue"), "queue snapshot")
        assert snapshot["queued"] == 1
        assert snapshot["capacity"] == 8
        tenants = snapshot["tenants"]
        assert tenants["acme"] == {"queued": 0, "running": 1}
        assert tenants["birch"] == {"queued": 1, "running": 0}
