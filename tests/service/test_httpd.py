"""The HTTP/JSON API, raw on the wire.

Every response body is validated against the committed contracts under
``tests/service/data/`` — the wire format is the product here, so the
tests read raw ``urllib`` responses rather than going through the
client. The supervisor under the ``idle_server`` fixture has no worker
threads, so queued jobs stay queued and admission behaviour is
deterministic.
"""

import json
import urllib.error
import urllib.request

from repro.service.httpd import MAX_BODY_BYTES
from repro.service.schema import envelope

from tests.service.contracts import assert_valid, contract, job_contract


def call(server, method, path, body=None):
    """(status, parsed JSON document) for one request."""
    url = f"http://127.0.0.1:{server.server_address[1]}{path}"
    data = json.dumps(body).encode() if isinstance(body, dict) else body
    request = urllib.request.Request(
        url,
        data=data,
        method=method,
        headers={"Content-Type": "application/json"} if data else {},
    )
    try:
        with urllib.request.urlopen(request, timeout=10) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


def submit_body(config="soc_2", **extra):
    return envelope("submit", {"config": config, **extra})


class TestSubmit:
    def test_accepted_job_is_202_and_valid(self, idle_server):
        status, document = call(
            idle_server, "POST", "/v1/jobs", submit_body(tenant="acme", priority=3)
        )
        assert status == 202
        assert_valid(document, job_contract(), "submit response")
        assert document["state"] == "queued"
        assert document["spec"]["tenant"] == "acme"
        assert document["spec"]["priority"] == 3

    def test_missing_body_is_400(self, idle_server):
        status, document = call(idle_server, "POST", "/v1/jobs")
        assert status == 400
        assert_valid(document, contract("error"), "error body")
        assert document["error"]["reason"] == "bad_request"

    def test_invalid_json_is_400(self, idle_server):
        status, document = call(idle_server, "POST", "/v1/jobs", b"{nope")
        assert status == 400
        assert document["error"]["reason"] == "bad_request"

    def test_schema_violation_is_400(self, idle_server):
        status, document = call(
            idle_server, "POST", "/v1/jobs", submit_body(surprise=True)
        )
        assert status == 400
        assert_valid(document, contract("error"), "error body")
        assert document["error"]["reason"] == "schema_violation"
        assert "surprise" in document["error"]["message"]

    def test_wrong_envelope_version_is_schema_violation(self, idle_server):
        body = submit_body()
        body["schema_version"] = 99
        status, document = call(idle_server, "POST", "/v1/jobs", body)
        assert status == 400
        assert document["error"]["reason"] == "schema_violation"

    def test_unknown_design_is_400(self, idle_server):
        status, document = call(
            idle_server, "POST", "/v1/jobs", submit_body(config="soc_999")
        )
        assert status == 400
        assert document["error"]["reason"] == "bad_request"
        # The bad job never entered the system.
        _, listing = call(idle_server, "GET", "/v1/jobs")
        assert listing["jobs"] == []

    def test_oversized_body_is_413(self, idle_server):
        blob = json.dumps(
            submit_body(tenant="x" * (MAX_BODY_BYTES + 1))
        ).encode()
        status, document = call(idle_server, "POST", "/v1/jobs", blob)
        assert status == 413
        assert document["error"]["reason"] == "too_large"

    def test_over_quota_is_429_and_never_queued(self, idle_server):
        # The fixture caps tenant "capped" at 2 queued/active jobs.
        for _ in range(2):
            status, _ = call(
                idle_server, "POST", "/v1/jobs", submit_body(tenant="capped")
            )
            assert status == 202
        status, document = call(
            idle_server, "POST", "/v1/jobs", submit_body(tenant="capped")
        )
        assert status == 429
        assert_valid(document, contract("error"), "429 body")
        assert document["error"]["reason"] in ("tenant_queued", "tenant_active")
        _, listing = call(idle_server, "GET", "/v1/jobs?tenant=capped")
        assert len(listing["jobs"]) == 2
        assert listing["queue"]["rejected"] == 1


class TestReads:
    def test_status_roundtrip(self, idle_server):
        _, accepted = call(idle_server, "POST", "/v1/jobs", submit_body())
        status, document = call(
            idle_server, "GET", f"/v1/jobs/{accepted['job_id']}"
        )
        assert status == 200
        assert_valid(document, job_contract(), "status response")

    def test_unknown_job_is_404(self, idle_server):
        status, document = call(idle_server, "GET", "/v1/jobs/job-00000000-0099")
        assert status == 404
        assert document["error"]["reason"] == "not_found"

    def test_unknown_route_is_404(self, idle_server):
        status, _ = call(idle_server, "GET", "/v2/jobs")
        assert status == 404
        status, _ = call(idle_server, "POST", "/v1/nothing", submit_body())
        assert status == 404

    def test_list_filters_and_validates(self, idle_server):
        call(idle_server, "POST", "/v1/jobs", submit_body(tenant="acme"))
        call(idle_server, "POST", "/v1/jobs", submit_body(tenant="birch"))
        status, document = call(idle_server, "GET", "/v1/jobs?tenant=acme")
        assert status == 200
        assert len(document["jobs"]) == 1
        for record in document["jobs"]:
            assert_valid(record, contract("record"), "listed record")
        assert_valid(document["queue"], contract("queue"), "queue snapshot")

    def test_list_rejects_unknown_state(self, idle_server):
        status, document = call(idle_server, "GET", "/v1/jobs?state=exploded")
        assert status == 400
        assert document["error"]["reason"] == "bad_request"

    def test_result_before_terminal_is_409(self, idle_server):
        _, accepted = call(idle_server, "POST", "/v1/jobs", submit_body())
        status, document = call(
            idle_server, "GET", f"/v1/jobs/{accepted['job_id']}/result"
        )
        assert status == 409
        assert document["error"]["reason"] == "not_ready"

    def test_artifacts_of_queued_job_are_empty(self, idle_server):
        _, accepted = call(idle_server, "POST", "/v1/jobs", submit_body())
        status, document = call(
            idle_server, "GET", f"/v1/jobs/{accepted['job_id']}/artifacts"
        )
        assert status == 200
        assert_valid(document, contract("artifacts"), "artifacts response")
        assert document["files"] == []
        assert document["checkpoint_stages"] == []


class TestCancel:
    def test_cancel_queued_job(self, idle_server):
        _, accepted = call(idle_server, "POST", "/v1/jobs", submit_body())
        status, document = call(
            idle_server, "POST", f"/v1/jobs/{accepted['job_id']}/cancel"
        )
        assert status == 200
        assert_valid(document, job_contract(), "cancel response")
        assert document["state"] == "cancelled"
        # Cancelled jobs answer /result with their terminal state.
        status, result = call(
            idle_server, "GET", f"/v1/jobs/{accepted['job_id']}/result"
        )
        assert status == 200
        assert_valid(result, contract("result"), "result response")
        assert result["state"] == "cancelled"
        assert result["result"] is None

    def test_cancel_is_idempotent(self, idle_server):
        _, accepted = call(idle_server, "POST", "/v1/jobs", submit_body())
        call(idle_server, "POST", f"/v1/jobs/{accepted['job_id']}/cancel")
        status, document = call(
            idle_server, "POST", f"/v1/jobs/{accepted['job_id']}/cancel"
        )
        assert status == 200
        assert document["state"] == "cancelled"

    def test_cancel_unknown_job_is_404(self, idle_server):
        status, _ = call(
            idle_server, "POST", "/v1/jobs/job-00000000-0099/cancel"
        )
        assert status == 404


class TestHealthAndMetrics:
    def test_healthz_ok(self, idle_server):
        status, document = call(idle_server, "GET", "/healthz")
        assert status == 200
        assert_valid(document, contract("health"), "health body")
        assert document["status"] == "ok"
        assert document["exit_code"] == 0

    def test_healthz_503_carries_full_body(self, idle_server):
        supervisor = idle_server.supervisor
        with supervisor._recovering_lock:
            supervisor._recovering.add("job-00000000-0001")
        try:
            status, document = call(idle_server, "GET", "/healthz")
        finally:
            supervisor._finish_recovery("job-00000000-0001")
        assert status == 503
        assert_valid(document, contract("health"), "503 health body")
        assert document["status"] == "recovering"
        assert document["recovering"] == 1

    def test_metrics_exposition(self, idle_server):
        call(idle_server, "POST", "/v1/jobs", submit_body())
        url = f"http://127.0.0.1:{idle_server.server_address[1]}/metrics"
        with urllib.request.urlopen(url, timeout=10) as response:
            assert "text/plain" in response.headers["Content-Type"]
            page = response.read().decode()
        assert "service_submits_total" in page
        assert "service_queue_depth" in page
