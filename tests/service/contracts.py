"""Loading and composing the committed wire contracts.

The shape of every service response and CLI ``--json`` payload is
pinned by the ``*.schema.json`` files next to this module. Tests load
them through :func:`contract` and assert instances with
:func:`assert_valid`, so a payload change that breaks a consumer fails
here before it ships.

The validator only supports local ``$ref``, so the ``job``-kind
envelope (record + envelope keys) is composed programmatically from
``record.schema.json`` instead of being duplicated in a second file.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict

from repro.service.schema import SCHEMA_VERSION, validate

DATA_DIR = Path(__file__).parent / "data"


def contract(name: str) -> Dict:
    """One committed ``tests/service/data/<name>.schema.json``."""
    return json.loads((DATA_DIR / f"{name}.schema.json").read_text())


def envelope_contract(kind: str, payload_schema: Dict) -> Dict:
    """A bare payload contract wrapped in the versioned envelope."""
    return {
        "type": "object",
        "required": ["schema_version", "kind"] + list(payload_schema["required"]),
        "additionalProperties": payload_schema.get("additionalProperties", True),
        "properties": {
            "schema_version": {"const": SCHEMA_VERSION},
            "kind": {"const": kind},
            **payload_schema["properties"],
        },
    }


def job_contract() -> Dict:
    """The ``job``-kind envelope (a JobRecord inside the envelope)."""
    return envelope_contract("job", contract("record"))


def assert_valid(instance: object, schema: Dict, label: str = "payload") -> None:
    errors = validate(instance, schema)
    assert not errors, f"invalid {label}: " + "; ".join(errors)
