"""The service-tier fault model and the fault-aware job store."""

import json

import pytest

from repro.errors import PrEspError
from repro.service.faults import (
    NO_SERVICE_FAULTS,
    ServiceFaultKind,
    ServiceFaultModel,
)
from repro.service.jobs import JobIdMinter, JobRecord, JobSpec, JobStore


def record(seq=0, job_id=None, tenant="acme"):
    return JobRecord(
        job_id=job_id or f"job-00000000-{seq + 1:04d}",
        spec=JobSpec(config="soc_2", tenant=tenant),
        submit_seq=seq,
    )


class TestModel:
    def test_same_seed_same_draws_any_order(self):
        a = ServiceFaultModel(
            seed=7, rates={ServiceFaultKind.WORKER_CRASH: 0.3}
        )
        b = ServiceFaultModel(
            seed=7, rates={ServiceFaultKind.WORKER_CRASH: 0.3}
        )
        keys = [(f"job-00000000-{n:04d}", attempt)
                for n in range(1, 20) for attempt in (1, 2)]
        forward = {k: a.execution_fault(*k) for k in keys}
        backward = {k: b.execution_fault(*k) for k in reversed(keys)}
        assert forward == backward
        assert any(v is not None for v in forward.values())

    def test_different_seeds_differ(self):
        keys = [(f"job-00000000-{n:04d}", 1) for n in range(1, 200)]
        timelines = []
        for seed in (0, 1):
            model = ServiceFaultModel(
                seed=seed, rates={ServiceFaultKind.WORKER_CRASH: 0.3}
            )
            timelines.append([model.execution_fault(*k) for k in keys])
        assert timelines[0] != timelines[1]

    def test_stacked_execution_rates_at_most_one_fires(self):
        model = ServiceFaultModel(
            seed=3,
            rates={
                ServiceFaultKind.WORKER_CRASH: 0.45,
                ServiceFaultKind.SLOW_WORKER: 0.45,
            },
        )
        draws = [
            model.execution_fault(f"job-00000000-{n:04d}", 1)
            for n in range(1, 400)
        ]
        fired = [d for d in draws if d is not None]
        assert set(fired) == {
            ServiceFaultKind.WORKER_CRASH,
            ServiceFaultKind.SLOW_WORKER,
        }
        # ~90% of draws fire; both kinds occur, none twice per draw.
        assert 0.8 < len(fired) / len(draws) < 1.0

    def test_stacked_rates_must_sum_below_one(self):
        with pytest.raises(PrEspError, match="sum"):
            ServiceFaultModel(
                rates={
                    ServiceFaultKind.STORE_IO: 0.6,
                    ServiceFaultKind.TORN_WRITE: 0.5,
                }
            )

    def test_rate_bounds_and_kind_validation(self):
        with pytest.raises(PrEspError):
            ServiceFaultModel(rates={ServiceFaultKind.STORE_IO: 1.0})
        with pytest.raises(PrEspError):
            ServiceFaultModel(rates={"crash": 0.5})
        with pytest.raises(PrEspError):
            ServiceFaultModel(hang_s=0)

    def test_injection_consumed_in_order(self):
        model = ServiceFaultModel(seed=0)
        model.inject(ServiceFaultKind.WORKER_CRASH, count=2)
        assert model.injected_count(ServiceFaultKind.WORKER_CRASH) == 2
        first = model.execution_fault("job-00000000-0001", 1)
        second = model.execution_fault("job-00000000-0001", 2)
        third = model.execution_fault("job-00000000-0001", 3)
        assert first is ServiceFaultKind.WORKER_CRASH
        assert second is ServiceFaultKind.WORKER_CRASH
        assert third is None
        assert model.fired["crash"] == 2

    def test_store_and_execution_injections_are_disjoint(self):
        model = ServiceFaultModel(seed=0)
        model.inject(ServiceFaultKind.STORE_IO)
        assert model.execution_fault("job-00000000-0001", 1) is None
        assert model.store_fault("job-00000000-0001") is ServiceFaultKind.STORE_IO
        assert model.store_fault("job-00000000-0001") is None

    def test_backoff_is_seeded_exponential_capped(self):
        model = ServiceFaultModel(seed=9)
        twin = ServiceFaultModel(seed=9)
        b1 = model.backoff_s("job-00000000-0001", 1, 0.1, 10.0)
        b2 = model.backoff_s("job-00000000-0001", 2, 0.1, 10.0)
        assert 0.1 <= b1 < 0.1 * 1.25
        assert 0.2 <= b2 < 0.2 * 1.25
        assert model.backoff_s("job-00000000-0001", 9, 0.1, 0.5) < 0.5 * 1.25
        assert twin.backoff_s("job-00000000-0001", 1, 0.1, 10.0) == b1

    def test_fingerprint_round_trips_as_json(self):
        model = ServiceFaultModel(
            seed=4, rates={ServiceFaultKind.TORN_WRITE: 0.1}
        )
        model.inject(ServiceFaultKind.WORKER_CRASH, count=3)
        fingerprint = json.loads(json.dumps(model.fingerprint()))
        assert fingerprint["seed"] == 4
        assert fingerprint["rates"] == {"torn": 0.1}
        assert fingerprint["injected"] == {"crash": 3}

    def test_shared_disabled_model_refuses_injection(self):
        assert NO_SERVICE_FAULTS.enabled is False
        with pytest.raises(PrEspError, match="NO_SERVICE_FAULTS"):
            NO_SERVICE_FAULTS.inject(ServiceFaultKind.WORKER_CRASH)


class TestFaultAwareStore:
    def test_io_fault_raises_and_retry_succeeds(self, tmp_path):
        model = ServiceFaultModel(seed=0)
        model.inject(ServiceFaultKind.STORE_IO)
        store = JobStore(tmp_path / "jobs", faults=model)
        job = record()
        with pytest.raises(OSError, match="injected IO error"):
            store.save(job)
        assert store.save_retrying(job) is True
        assert store.load(job.job_id).job_id == job.job_id

    def test_save_retrying_rides_through_injected_faults(self, tmp_path):
        model = ServiceFaultModel(seed=0)
        model.inject(ServiceFaultKind.STORE_IO, count=2)
        store = JobStore(tmp_path / "jobs", faults=model)
        job = record()
        assert store.save_retrying(job, attempts=4, backoff_s=0.001) is True

    def test_save_retrying_gives_up_quietly(self, tmp_path):
        model = ServiceFaultModel(seed=0)
        model.inject(ServiceFaultKind.STORE_IO, count=10)
        store = JobStore(tmp_path / "jobs", faults=model)
        job = record()
        assert store.save_retrying(job, attempts=3, backoff_s=0.001) is False
        assert store.load(job.job_id) is None

    def test_torn_write_never_corrupts_published_record(self, tmp_path):
        model = ServiceFaultModel(seed=0)
        store = JobStore(tmp_path / "jobs", faults=model)
        job = record()
        store.save(job)  # healthy first write publishes the record
        model.inject(ServiceFaultKind.TORN_WRITE)
        job.attempts = 5
        with pytest.raises(OSError, match="torn write"):
            store.save(job)
        # The published file still parses — the torn artifact is only
        # ever a *.tmp the rename never promoted.
        survivor = store.load(job.job_id)
        assert survivor is not None
        assert survivor.attempts == 0
        torn = list((tmp_path / "jobs").glob(".*.tmp"))
        assert torn, "torn write should leave the truncated tmp behind"
        assert store.save_retrying(job) is True
        assert store.load(job.job_id).attempts == 5

    def test_load_all_skips_torn_tmp_files(self, tmp_path):
        model = ServiceFaultModel(seed=0)
        store = JobStore(tmp_path / "jobs", faults=model)
        store.save(record(0))
        model.inject(ServiceFaultKind.TORN_WRITE)
        with pytest.raises(OSError):
            store.save(record(1))
        assert [r.job_id for r in store.load_all()] == ["job-00000000-0001"]


class TestStoreResilience:
    """Satellite: load_all shrugging off corrupt and foreign files."""

    def test_load_all_skips_corrupt_and_foreign_files(self, tmp_path):
        directory = tmp_path / "jobs"
        store = JobStore(directory)
        good = record(0)
        store.save(good)
        # Truncated JSON under a legitimate job-record name.
        (directory / "job-00000000-0002.json").write_text('{"job_id": "job-')
        # Valid JSON that is not a job record.
        (directory / "job-00000000-0003.json").write_text('{"hello": 1}')
        # Foreign files that merely live in the directory.
        (directory / "notes.json").write_text("{}")
        (directory / "README.txt").write_text("not json at all")
        loaded = store.load_all()
        assert [r.job_id for r in loaded] == [good.job_id]

    def test_load_returns_none_for_missing_or_corrupt(self, tmp_path):
        store = JobStore(tmp_path / "jobs")
        assert store.load("job-00000000-0001") is None
        store.directory.mkdir(parents=True)
        (store.directory / "job-00000000-0001.json").write_text("{broken")
        assert store.load("job-00000000-0001") is None


class TestMinterAdvance:
    """Satellite: advance_past fast-forwards per-tenant counters."""

    def test_advance_past_skips_used_sequences(self):
        first = JobIdMinter(seed=3)
        used = [
            record(seq=n, job_id=first.mint("acme"), tenant="acme")
            for n in range(4)
        ]
        rebooted = JobIdMinter(seed=3)
        rebooted.advance_past(used)
        fresh = rebooted.mint("acme")
        assert fresh not in {r.job_id for r in used}
        # Continuity: the next ID is exactly what the first minter
        # would have minted next (same seed, same tenant).
        assert fresh == first.mint("acme")

    def test_advance_past_is_per_tenant(self):
        minter = JobIdMinter(seed=0)
        acme = [record(seq=0, job_id=minter.mint("acme"), tenant="acme")]
        rebooted = JobIdMinter(seed=0)
        rebooted.advance_past(acme)
        # Another tenant's counter is untouched: its first ID matches a
        # fresh minter's first ID.
        assert rebooted.mint("birch") == JobIdMinter(seed=0).mint("birch")

    def test_advance_past_ignores_malformed_ids(self):
        minter = JobIdMinter(seed=0)
        odd = record(job_id="job-00000000-0001")
        odd = JobRecord(
            job_id="job-weird", spec=JobSpec(config="soc_2"), submit_seq=0
        )
        minter.advance_past([odd])  # must not raise
        assert minter.mint("default")
