"""The supervisor: execution, scheduling, recovery and health."""

import json
import time

import pytest

from repro.errors import PrEspError
from repro.obs.health import Verdict
from repro.service.jobs import JobRecord, JobSpec, JobState, JobStore
from repro.service.supervisor import (
    JOB_FINISHED,
    JOB_REQUEUED,
    JOB_SUBMITTED,
    Supervisor,
)


def wait_terminal(supervisor, records, timeout=60.0):
    """Block until every record is terminal (records mutate in place)."""
    deadline = time.monotonic() + timeout
    for record in records:
        while not record.state.terminal:
            assert time.monotonic() < deadline, (
                f"job {record.job_id} stuck in {record.state.value}"
            )
            time.sleep(0.01)
    return records


@pytest.fixture
def supervisor(tmp_path):
    sup = Supervisor(state_dir=tmp_path / "state", workers=2, jobs=1)
    yield sup
    sup.stop()


class TestExecution:
    def test_build_job_succeeds(self, supervisor):
        supervisor.start()
        record = supervisor.submit(JobSpec(config="soc_2", tenant="acme"))
        wait_terminal(supervisor, [record])
        assert record.state is JobState.SUCCEEDED
        assert record.error is None
        assert record.attempts == 1
        assert record.result["soc"] == "soc_2"
        # The terminal record reaches disk (write-through lags the
        # in-memory flip by one save call; a crash in that window
        # merely requeues the idempotent job).
        deadline = time.monotonic() + 10
        while True:
            saved = supervisor.store.load(record.job_id)
            if saved.state.terminal:
                break
            assert time.monotonic() < deadline
            time.sleep(0.01)
        assert saved.state is JobState.SUCCEEDED
        assert saved.result == record.result

    def test_second_submit_is_a_cache_hit(self, supervisor):
        supervisor.start()
        cold = supervisor.submit(JobSpec(config="soc_2"))
        wait_terminal(supervisor, [cold])
        warm = supervisor.submit(JobSpec(config="soc_2"))
        wait_terminal(supervisor, [warm])
        assert cold.cached is False
        assert warm.cached is True
        assert warm.result == cold.result

    def test_deploy_job_succeeds(self, supervisor):
        supervisor.start()
        record = supervisor.submit(
            JobSpec(config="soc_z", kind="deploy", frames=2)
        )
        wait_terminal(supervisor, [record])
        assert record.state is JobState.SUCCEEDED
        assert record.result["soc"] == "soc_z"

    def test_unknown_config_rejected_at_submit(self, supervisor):
        with pytest.raises(PrEspError, match="neither a known design"):
            supervisor.submit(JobSpec(config="soc_999"))
        assert supervisor.jobs() == []

    def test_build_writes_checkpoints(self, supervisor):
        supervisor.start()
        record = supervisor.submit(JobSpec(config="soc_2"))
        wait_terminal(supervisor, [record])
        manifest = supervisor.checkpoint_dir(record.job_id) / "manifest.json"
        assert manifest.is_file()
        stages = [
            entry["stage"]
            for entry in json.loads(manifest.read_text())["stages"]
        ]
        assert "synthesis" in stages
        assert "bitstreams" in stages

    def test_lifecycle_events_on_the_bus(self, supervisor):
        supervisor.start()
        record = supervisor.submit(JobSpec(config="soc_2"))
        wait_terminal(supervisor, [record])
        kinds = [event.kind for event in supervisor.events.last(1000)]
        assert JOB_SUBMITTED in kinds
        assert JOB_FINISHED in kinds


class TestScheduling:
    def test_preloaded_queue_runs_in_priority_order(self, tmp_path):
        sup = Supervisor(state_dir=tmp_path / "state", workers=1, jobs=1)
        try:
            specs = [
                JobSpec(config="soc_2", priority=0),
                JobSpec(config="soc_2", priority=2),
                JobSpec(config="soc_2", priority=1),
                JobSpec(config="soc_2", priority=2),
            ]
            records = [sup.submit(spec) for spec in specs]
            sup.start()  # single worker drains the pre-loaded queue
            wait_terminal(sup, records)
            assert all(r.state is JobState.SUCCEEDED for r in records)
            assert all(r.attempts == 1 for r in records)
            by_start = sorted(records, key=lambda r: r.start_seq)
            # Priority first, FIFO within a class.
            assert [records.index(r) for r in by_start] == [1, 3, 2, 0]
        finally:
            sup.stop()

    def test_preload_survives_start_without_duplication(self, tmp_path):
        # start() recovers persisted records; ones submitted in-process
        # before start() are already queued and must not requeue.
        sup = Supervisor(state_dir=tmp_path / "state", workers=1, jobs=1)
        try:
            record = sup.submit(JobSpec(config="soc_2"))
            sup.start()
            wait_terminal(sup, [record])
            assert record.attempts == 1
            assert sup.recovering() == 0
        finally:
            sup.stop()


class TestCancel:
    def test_cancel_queued_job(self, tmp_path):
        sup = Supervisor(state_dir=tmp_path / "state", workers=1, jobs=1)
        try:
            record = sup.submit(JobSpec(config="soc_2"))  # workers not started
            cancelled = sup.cancel(record.job_id)
            assert cancelled.state is JobState.CANCELLED
            assert cancelled.cancel_requested is True
            assert sup.store.load(record.job_id).state is JobState.CANCELLED
            # Idempotent: a second cancel returns the terminal record.
            assert sup.cancel(record.job_id).state is JobState.CANCELLED
        finally:
            sup.stop()

    def test_cancel_unknown_job(self, supervisor):
        assert supervisor.cancel("job-00000000-0042") is None

    def test_cancel_terminal_job_is_a_noop(self, supervisor):
        supervisor.start()
        record = supervisor.submit(JobSpec(config="soc_2"))
        wait_terminal(supervisor, [record])
        again = supervisor.cancel(record.job_id)
        assert again.state is JobState.SUCCEEDED


class TestRecovery:
    def test_requeues_running_job_and_reports_recovering(self, tmp_path):
        state = tmp_path / "state"
        # A previous daemon died mid-job: its record is still RUNNING.
        interrupted = JobRecord(
            job_id="job-00000000-0001",
            spec=JobSpec(config="soc_2", tenant="acme"),
            state=JobState.RUNNING,
            submit_seq=0,
            start_seq=0,
            attempts=1,
        )
        JobStore(state / "jobs").save(interrupted)

        sup = Supervisor(state_dir=state, workers=1, jobs=1)
        try:
            sup.start()
            record = sup.get("job-00000000-0001")
            assert record is not None
            kinds = [event.kind for event in sup.events.last(1000)]
            assert JOB_REQUEUED in kinds
            wait_terminal(sup, [record])
            assert record.state is JobState.SUCCEEDED
            assert record.attempts == 2  # the rerun counted
            # The recovering verdict clears once the backlog drains
            # (the worker releases the slot just after the terminal
            # state lands, so poll briefly).
            deadline = time.monotonic() + 10
            while sup.recovering() and time.monotonic() < deadline:
                time.sleep(0.01)
            status, verdict = sup.health_verdict()
            assert status == "ok"
            assert verdict is Verdict.OK
        finally:
            sup.stop()

        # The replayed result is byte-identical to an uninterrupted run.
        control_sup = Supervisor(state_dir=tmp_path / "control", workers=1, jobs=1)
        try:
            control_sup.start()
            control = control_sup.submit(JobSpec(config="soc_2", tenant="acme"))
            wait_terminal(control_sup, [control])
        finally:
            control_sup.stop()
        assert json.dumps(record.result, sort_keys=True) == json.dumps(
            control.result, sort_keys=True
        )

    def test_cancel_requested_job_is_cancelled_on_recovery(self, tmp_path):
        state = tmp_path / "state"
        JobStore(state / "jobs").save(
            JobRecord(
                job_id="job-00000000-0001",
                spec=JobSpec(config="soc_2"),
                state=JobState.QUEUED,
                cancel_requested=True,
            )
        )
        sup = Supervisor(state_dir=state, workers=1, jobs=1)
        try:
            sup.start()
            assert sup.get("job-00000000-0001").state is JobState.CANCELLED
            assert sup.recovering() == 0
        finally:
            sup.stop()

    def test_restart_never_remints_used_ids(self, tmp_path):
        state = tmp_path / "state"
        first = Supervisor(state_dir=state, workers=1, jobs=1, seed=5)
        try:
            first.start()
            records = [
                first.submit(JobSpec(config="soc_2", tenant="acme"))
                for _ in range(3)
            ]
            wait_terminal(first, records)
        finally:
            first.stop()
        second = Supervisor(state_dir=state, workers=1, jobs=1, seed=5)
        try:
            second.start()
            fresh = second.submit(JobSpec(config="soc_2", tenant="acme"))
            assert fresh.job_id not in {r.job_id for r in records}
        finally:
            second.stop()


class TestHealth:
    def test_verdict_flips_with_recovery_backlog(self, tmp_path):
        sup = Supervisor(state_dir=tmp_path / "state", workers=1, jobs=1)
        try:
            status, verdict = sup.health_verdict()
            assert verdict is Verdict.OK
            with sup._recovering_lock:
                sup._recovering.add("job-00000000-0001")
            status, verdict = sup.health_verdict()
            assert status == "recovering"
            assert verdict is Verdict.CRITICAL
            sup._finish_recovery("job-00000000-0001")
            assert sup.health_verdict()[1] is Verdict.OK
        finally:
            sup.stop()
