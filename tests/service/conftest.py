"""Fixtures for the service daemon tests.

``idle_server`` runs the HTTP layer over a supervisor whose workers
are *not* started — submitted jobs stay queued, which makes admission,
cancellation and 409/429 behaviour deterministic. ``service`` is the
full daemon (workers running) on an ephemeral port.
"""

from __future__ import annotations

import threading

import pytest

from repro.service.client import ServiceClient
from repro.service.daemon import BuildService, ServiceConfig
from repro.service.httpd import ServiceHTTPServer
from repro.service.queue import TenantQuota
from repro.service.supervisor import Supervisor


@pytest.fixture
def state_dir(tmp_path):
    return tmp_path / "state"


@pytest.fixture
def idle_server(state_dir):
    """HTTP server over an idle supervisor (no workers draining)."""
    supervisor = Supervisor(
        state_dir=state_dir,
        workers=1,
        jobs=1,
        quotas={"capped": TenantQuota(max_queued=2, max_active=2)},
    )
    server = ServiceHTTPServer(("127.0.0.1", 0), supervisor)
    acceptor = threading.Thread(target=server.serve_forever, daemon=True)
    acceptor.start()
    yield server
    server.shutdown()
    server.server_close()
    acceptor.join(timeout=10)
    supervisor.stop()


@pytest.fixture
def idle_client(idle_server):
    return ServiceClient(port=idle_server.server_address[1])


@pytest.fixture
def service(state_dir):
    """A running daemon: 2 worker threads, in-thread builds (jobs=1)."""
    config = ServiceConfig(state_dir=state_dir, port=0, workers=2, jobs=1)
    with BuildService(config) as running:
        yield running


@pytest.fixture
def client(service):
    return ServiceClient(port=service.port)
