"""Seeded chaos scenarios: the self-healing ladder, in process.

Every scenario drives a real :class:`Supervisor` (real workers, real
builds, real persistence) with a seeded
:class:`~repro.service.faults.ServiceFaultModel` — injected worker
crashes, wedged workers and store faults — and asserts the resilience
invariants: bounded attempts end in the dead letter, recovery never
revives poison, the admission breaker opens under a failure storm and
re-closes after its probe, a drain hands running work back to the
queue, and the whole fault timeline is a pure function of the seed.
"""

import json
import time

import pytest

from repro.service.breaker import BreakerPolicy, BreakerState
from repro.service.faults import ServiceFaultKind, ServiceFaultModel
from repro.service.jobs import JobError, JobRecord, JobSpec, JobState, JobStore
from repro.service.queue import AdmissionError
from repro.service.supervisor import Supervisor

from tests.service.contracts import assert_valid, contract


def wait_terminal(supervisor, records, timeout=60.0):
    deadline = time.monotonic() + timeout
    for record in records:
        while not record.state.terminal:
            if time.monotonic() > deadline:
                raise AssertionError(
                    f"{record.job_id} stuck in {record.state.value}"
                )
            time.sleep(0.005)


def wait_until(predicate, timeout=30.0, message="condition"):
    deadline = time.monotonic() + timeout
    while not predicate():
        if time.monotonic() > deadline:
            raise AssertionError(f"timed out waiting for {message}")
        time.sleep(0.005)


def make_supervisor(state_dir, faults=None, **kwargs):
    kwargs.setdefault("workers", 1)
    kwargs.setdefault("jobs", 1)
    kwargs.setdefault("requeue_backoff_s", 0.005)
    kwargs.setdefault("requeue_backoff_cap_s", 0.05)
    if faults is not None:
        kwargs["faults"] = faults
    return Supervisor(state_dir=state_dir, **kwargs)


class TestDeadLetter:
    def test_crashes_exhaust_attempts_then_dead_letter(self, tmp_path):
        faults = ServiceFaultModel(seed=0)
        faults.inject(ServiceFaultKind.WORKER_CRASH, count=3)
        supervisor = make_supervisor(
            tmp_path / "state", faults, default_max_attempts=3
        )
        try:
            record = supervisor.submit(JobSpec(config="soc_2"))
            supervisor.start()
            wait_terminal(supervisor, [record])
            assert record.state is JobState.DEAD
            assert record.attempts == 3
            assert record.requeues == 2  # attempts 1 and 2 were requeued
            assert record.error["kind"] == "DeadLetter"
            assert faults.fired["crash"] == 3
            assert supervisor.jobs(state=JobState.DEAD) == [record]
            assert_valid(record.to_dict(), contract("record"), "dead record")
        finally:
            supervisor.stop(timeout=5.0)

        # The dead letter is durable and recovery refuses to touch it:
        # a restarted daemon must not cycle poison back into the queue.
        revived = make_supervisor(tmp_path / "state")
        try:
            revived.start()
            after = revived.get(record.job_id)
            assert after.state is JobState.DEAD
            assert revived.recovering() == 0
            assert revived.queue.depth() == 0

            # The operator's requeue revives it exactly once...
            fresh = revived.requeue(record.job_id)
            assert fresh.state is JobState.QUEUED
            assert fresh.attempts == 0
            assert fresh.error is None
            # ...and a second revive of the no-longer-dead job conflicts.
            with pytest.raises(JobError, match="only dead jobs"):
                revived.requeue(record.job_id)
            wait_terminal(revived, [fresh])
            assert fresh.state is JobState.SUCCEEDED
        finally:
            revived.stop(timeout=5.0)

    def test_requeue_unknown_job_is_none(self, tmp_path):
        supervisor = make_supervisor(tmp_path / "state")
        try:
            assert supervisor.requeue("job-00000000-9999") is None
        finally:
            supervisor.stop(timeout=5.0)

    def test_recovery_dead_letters_poison_running_record(self, tmp_path):
        # A previous daemon died while running this job for the third
        # time; its whole budget is burned, so recovery dead-letters it
        # rather than requeueing it into a fourth crash loop.
        state_dir = tmp_path / "state"
        poison = JobRecord(
            job_id="job-00000000-0001",
            spec=JobSpec(config="soc_2"),
            state=JobState.RUNNING,
            submit_seq=0,
            start_seq=0,
            attempts=3,
        )
        JobStore(state_dir / "jobs").save(poison)
        supervisor = make_supervisor(state_dir, default_max_attempts=3)
        try:
            supervisor.start()
            record = supervisor.get(poison.job_id)
            assert record.state is JobState.DEAD
            assert record.error["kind"] == "DeadLetter"
            assert supervisor.recovering() == 0
            assert supervisor.queue.depth() == 0
            # Durably dead, not just in memory.
            on_disk = JobStore(state_dir / "jobs").load(poison.job_id)
            assert on_disk.state is JobState.DEAD
        finally:
            supervisor.stop(timeout=5.0)


class TestWatchdog:
    def test_deadline_abandons_wedged_worker_then_resumes(self, tmp_path):
        faults = ServiceFaultModel(seed=0)
        faults.inject(ServiceFaultKind.SLOW_WORKER)  # wedge attempt 1
        supervisor = make_supervisor(tmp_path / "state", faults)
        try:
            record = supervisor.submit(
                JobSpec(config="soc_2", deadline_s=0.2)
            )
            supervisor.start()
            wait_terminal(supervisor, [record])
            assert record.state is JobState.SUCCEEDED
            assert record.timeouts == 1
            assert record.requeues == 1
            assert record.attempts == 2
        finally:
            supervisor.stop(timeout=5.0)

    def test_tenant_then_default_deadline_fallback(self, tmp_path):
        supervisor = make_supervisor(
            tmp_path / "state",
            default_deadline_s=7.0,
            tenant_deadlines={"acme": 3.0},
        )
        try:
            assert supervisor.deadline_for(JobSpec(config="soc_2")) == 7.0
            assert (
                supervisor.deadline_for(JobSpec(config="soc_2", tenant="acme"))
                == 3.0
            )
            assert (
                supervisor.deadline_for(
                    JobSpec(config="soc_2", tenant="acme", deadline_s=1.0)
                )
                == 1.0
            )
        finally:
            supervisor.stop(timeout=5.0)

    def test_deadline_exhaustion_dead_letters(self, tmp_path):
        faults = ServiceFaultModel(seed=0)
        faults.inject(ServiceFaultKind.SLOW_WORKER, count=2)
        supervisor = make_supervisor(tmp_path / "state", faults)
        try:
            record = supervisor.submit(
                JobSpec(config="soc_2", deadline_s=0.1, max_attempts=2)
            )
            supervisor.start()
            wait_terminal(supervisor, [record])
            assert record.state is JobState.DEAD
            assert record.timeouts == 2
        finally:
            supervisor.stop(timeout=5.0)


class TestBreaker:
    def test_failure_storm_opens_then_probe_recloses(self, tmp_path):
        faults = ServiceFaultModel(seed=0)
        faults.inject(ServiceFaultKind.WORKER_CRASH, count=2)
        supervisor = make_supervisor(
            tmp_path / "state",
            faults,
            breaker_policy=BreakerPolicy(
                window=4, min_samples=2, threshold=0.5, cooldown_s=1.0
            ),
        )
        try:
            # Two one-shot jobs, both eaten by injected crashes: two
            # dead letters, 100% failure over min_samples — trip.
            doomed = [
                supervisor.submit(JobSpec(config="soc_1", max_attempts=1)),
                supervisor.submit(JobSpec(config="soc_2", max_attempts=1)),
            ]
            supervisor.start()
            wait_terminal(supervisor, doomed)
            assert [r.state for r in doomed] == [JobState.DEAD] * 2
            wait_until(
                lambda: supervisor.breaker.state is BreakerState.OPEN,
                timeout=5.0,
                message="breaker to open",
            )

            # While open, submits are shed at the door with the typed
            # reason and never reach the table or the queue.
            before = len(supervisor.jobs())
            with pytest.raises(AdmissionError) as shed:
                supervisor.submit(JobSpec(config="soc_2"))
            assert shed.value.reason == "breaker_open"
            assert len(supervisor.jobs()) == before
            assert supervisor.queue.depth() == 0
            # The open breaker is a critical health finding (503).
            report = supervisor.health.report()
            assert report.breaker_open is True
            assert report.verdict.value == "critical"

            # After the cooldown one probe is admitted; its success
            # re-closes the breaker and admission recovers.
            time.sleep(1.1)
            probe = supervisor.submit(JobSpec(config="soc_2"))
            wait_terminal(supervisor, [probe])
            assert probe.state is JobState.SUCCEEDED
            wait_until(
                lambda: supervisor.breaker.state is BreakerState.CLOSED,
                timeout=5.0,
                message="breaker to close",
            )
            follow_up = supervisor.submit(JobSpec(config="soc_1"))
            wait_terminal(supervisor, [follow_up])
            assert follow_up.state is JobState.SUCCEEDED
            report = supervisor.health.report()
            assert report.breaker_open is False
            assert report.breaker_opens == 1
            # The two dead letters keep health degraded — visible, but
            # not a 503 — until an operator deals with them.
            assert report.verdict.value == "degraded"
            assert sorted(report.dead_jobs) == sorted(
                r.job_id for r in doomed
            )
        finally:
            supervisor.stop(timeout=5.0)


class TestDrain:
    def test_drain_requeues_in_flight_job_and_restart_resumes(self, tmp_path):
        faults = ServiceFaultModel(seed=0)
        faults.inject(ServiceFaultKind.SLOW_WORKER)  # wedge the attempt
        spec = JobSpec(config="soc_2")
        first = make_supervisor(tmp_path / "state", faults)
        record = first.submit(spec)
        first.start()
        wait_until(
            lambda: record.state is JobState.RUNNING,
            message="job to start running",
        )
        # Drain with a deadline the wedged worker cannot meet: the
        # running job must be flipped back to QUEUED, checkpoint
        # intact, and persisted for the next daemon.
        survivors = first.stop(timeout=0.3, drain=True)
        assert survivors == 1
        assert record.state is JobState.QUEUED
        assert record.requeues == 1
        on_disk = JobStore(tmp_path / "state" / "jobs").load(record.job_id)
        assert on_disk.state is JobState.QUEUED

        second = make_supervisor(tmp_path / "state")
        try:
            second.start()
            resumed = second.get(record.job_id)
            wait_terminal(second, [resumed])
            assert resumed.state is JobState.SUCCEEDED
            wait_until(
                lambda: second.recovering() == 0,
                message="recovery backlog to drain",
            )
            assert second.health_verdict()[0] != "recovering"
        finally:
            second.stop(timeout=5.0)

        # Byte-identity: the drained-and-resumed result equals an
        # uninterrupted control run of the same spec and seed.
        control = make_supervisor(tmp_path / "control")
        try:
            control_record = control.submit(spec)
            control.start()
            wait_terminal(control, [control_record])
            assert control_record.state is JobState.SUCCEEDED
        finally:
            control.stop(timeout=5.0)
        assert json.dumps(resumed.result, sort_keys=True) == json.dumps(
            control_record.result, sort_keys=True
        )

    def test_drain_leaves_queued_jobs_for_next_start(self, tmp_path):
        # More jobs than the single worker can start: the queued
        # remainder must survive the drain untouched.
        supervisor = make_supervisor(tmp_path / "state")
        specs = [JobSpec(config="soc_1"), JobSpec(config="soc_2")]
        records = [supervisor.submit(spec) for spec in specs]
        supervisor.stop(timeout=1.0, drain=True)  # never started workers
        store = JobStore(tmp_path / "state" / "jobs")
        for record in records:
            assert store.load(record.job_id).state is JobState.QUEUED

        second = make_supervisor(tmp_path / "state")
        try:
            second.start()
            resumed = [second.get(r.job_id) for r in records]
            wait_terminal(second, resumed)
            assert all(r.state is JobState.SUCCEEDED for r in resumed)
        finally:
            second.stop(timeout=5.0)


class TestSeededDeterminism:
    SPECS = [
        ("soc_1", "acme"),
        ("soc_2", "acme"),
        ("soc_1", "birch"),
        ("soc_2", "birch"),
        ("soc_2", "acme"),
    ]

    @staticmethod
    def _stable(record):
        payload = record.to_dict()
        # Wall-clock and worker-interleaving artifacts are explicitly
        # outside the determinism contract; everything else must be a
        # pure function of the seed.
        payload.pop("elapsed_s", None)
        payload.pop("start_seq", None)
        return payload

    def _run_once(self, state_dir):
        faults = ServiceFaultModel(
            seed=11, rates={ServiceFaultKind.WORKER_CRASH: 0.35}
        )
        supervisor = make_supervisor(
            state_dir, faults, default_max_attempts=2
        )
        try:
            records = [
                supervisor.submit(JobSpec(config=config, tenant=tenant))
                for config, tenant in self.SPECS
            ]
            supervisor.start()
            wait_terminal(supervisor, records)
            table = [self._stable(record) for record in records]
            return json.dumps(table, sort_keys=True), dict(faults.fired)
        finally:
            supervisor.stop(timeout=5.0)

    def test_same_seed_same_fault_timeline_and_job_table(self, tmp_path):
        first_table, first_fired = self._run_once(tmp_path / "one")
        second_table, second_fired = self._run_once(tmp_path / "two")
        assert first_table == second_table
        assert first_fired == second_fired
        # The scenario is only meaningful if the storm actually fired.
        assert first_fired.get("crash", 0) >= 1
