"""The stdlib service client and the ``repro.api`` service verbs."""

import pytest

from repro import api
from repro.service.client import ServiceClient, ServiceError, ServiceUnavailable


class TestErrors:
    def test_unreachable_daemon(self):
        client = ServiceClient(port=1, timeout=0.5)
        with pytest.raises(ServiceUnavailable, match="cannot reach"):
            client.healthz()

    def test_http_error_carries_status_and_reason(self, idle_client):
        with pytest.raises(ServiceError) as exc:
            idle_client.status("job-00000000-0099")
        assert exc.value.status == 404
        assert exc.value.reason == "not_found"

    def test_quota_rejection_is_a_429(self, idle_client):
        for _ in range(2):
            idle_client.submit("soc_2", tenant="capped")
        with pytest.raises(ServiceError) as exc:
            idle_client.submit("soc_2", tenant="capped")
        assert exc.value.status == 429
        assert exc.value.reason in ("tenant_queued", "tenant_active")

    def test_result_before_terminal_is_409(self, idle_client):
        record = idle_client.submit("soc_2")
        with pytest.raises(ServiceError) as exc:
            idle_client.result(record["job_id"])
        assert exc.value.status == 409
        assert exc.value.reason == "not_ready"

    def test_wait_times_out_on_stuck_job(self, idle_client):
        record = idle_client.submit("soc_2")  # no workers: stays queued
        with pytest.raises(ServiceUnavailable, match="still 'queued'"):
            idle_client.wait(record["job_id"], timeout=0.2)


class TestVerbs:
    def test_submit_status_cancel(self, idle_client):
        record = idle_client.submit("soc_2", tenant="acme", priority=2)
        assert record["state"] == "queued"
        assert idle_client.status(record["job_id"])["job_id"] == record["job_id"]
        cancelled = idle_client.cancel(record["job_id"])
        assert cancelled["state"] == "cancelled"

    def test_jobs_listing_filters(self, idle_client):
        idle_client.submit("soc_2", tenant="acme")
        idle_client.submit("soc_2", tenant="birch")
        acme = idle_client.jobs(tenant="acme")
        assert [r["spec"]["tenant"] for r in acme["jobs"]] == ["acme"]
        queued = idle_client.jobs(state="queued")
        assert len(queued["jobs"]) == 2

    def test_healthz_decodes_503_bodies(self, idle_server, idle_client):
        supervisor = idle_server.supervisor
        with supervisor._recovering_lock:
            supervisor._recovering.add("job-00000000-0001")
        try:
            health = idle_client.healthz()
        finally:
            supervisor._finish_recovery("job-00000000-0001")
        assert health["status"] == "recovering"
        assert health["exit_code"] == 2

    def test_metrics_page(self, idle_client):
        idle_client.submit("soc_2")
        assert "service_submits_total" in idle_client.metrics()


class TestEndToEnd:
    """Against a live daemon (workers running)."""

    def test_submit_wait_result_artifacts(self, client):
        record = client.submit("soc_2", tenant="acme")
        done = client.wait(record["job_id"], timeout=60)
        assert done["state"] == "succeeded"
        result = client.result(record["job_id"])
        assert result["result"]["soc"] == "soc_2"
        artifacts = client.artifacts(record["job_id"])
        assert artifacts["checkpoint_stages"]
        assert any(f["name"] == "manifest.json" for f in artifacts["files"])


class TestApiFacade:
    """The ``repro.api`` service verbs ride the same client."""

    def test_submit_status_fetch(self, service):
        record = api.submit("soc_2", tenant="acme", port=service.port)
        assert record["job_id"].startswith("job-")
        result = api.fetch(record["job_id"], port=service.port, timeout=60)
        assert result["state"] == "succeeded"
        assert api.status(record["job_id"], port=service.port)["state"] == (
            "succeeded"
        )

    def test_cancel_verb(self, idle_server):
        port = idle_server.server_address[1]
        record = api.submit("soc_2", port=port)
        assert api.cancel(record["job_id"], port=port)["state"] == "cancelled"

    def test_fetch_without_wait_raises_when_not_ready(self, idle_server):
        port = idle_server.server_address[1]
        record = api.submit("soc_2", port=port)
        with pytest.raises(ServiceError):
            api.fetch(record["job_id"], wait=False, port=port)
