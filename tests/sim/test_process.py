"""Tests for generator-based processes."""

import pytest

from repro.errors import SimulationError
from repro.sim.kernel import Simulator


class TestBasics:
    def test_process_runs_and_returns(self, sim):
        def body():
            yield sim.timeout(2.0)
            return "done"

        proc = sim.process(body())
        sim.run()
        assert proc.processed
        assert proc.value == "done"
        assert sim.now == 2.0

    def test_yield_receives_event_value(self, sim):
        def body():
            got = yield sim.timeout(1.0, value=42)
            return got

        proc = sim.process(body())
        sim.run()
        assert proc.value == 42

    def test_non_generator_rejected(self, sim):
        def not_a_generator():
            return 5

        with pytest.raises(SimulationError):
            sim.process(not_a_generator())

    def test_is_alive_flag(self, sim):
        def body():
            yield sim.timeout(1.0)

        proc = sim.process(body())
        assert proc.is_alive
        sim.run()
        assert not proc.is_alive

    def test_yielding_non_event_fails_process(self, sim):
        def body():
            yield 42

        proc = sim.process(body())
        sim.run()
        assert isinstance(proc.exception, SimulationError)

    def test_yielding_foreign_event_fails_process(self, sim):
        other = Simulator()

        def body():
            yield other.timeout(1.0)

        proc = sim.process(body())
        sim.run()
        assert isinstance(proc.exception, SimulationError)


class TestFailurePropagation:
    def test_exception_in_body_fails_process(self, sim):
        def body():
            yield sim.timeout(1.0)
            raise ValueError("inner")

        proc = sim.process(body())
        sim.run()
        assert isinstance(proc.exception, ValueError)

    def test_failed_event_is_thrown_into_generator(self, sim):
        caught = []

        def body():
            bad = sim.event()
            bad.fail(RuntimeError("injected"))
            try:
                yield bad
            except RuntimeError as exc:
                caught.append(str(exc))
            return "recovered"

        proc = sim.process(body())
        sim.run()
        assert caught == ["injected"]
        assert proc.value == "recovered"

    def test_uncaught_event_failure_fails_process(self, sim):
        def body():
            bad = sim.event()
            bad.fail(RuntimeError("injected"))
            yield bad

        proc = sim.process(body())
        sim.run()
        assert isinstance(proc.exception, RuntimeError)


class TestComposition:
    def test_process_waits_on_process(self, sim):
        def worker():
            yield sim.timeout(3.0)
            return "result"

        def boss():
            value = yield sim.process(worker())
            return f"got {value}"

        proc = sim.process(boss())
        sim.run()
        assert proc.value == "got result"
        assert sim.now == 3.0

    def test_parallel_processes_interleave(self, sim):
        trace = []

        def worker(name, delay):
            yield sim.timeout(delay)
            trace.append((name, sim.now))

        sim.process(worker("a", 2.0))
        sim.process(worker("b", 1.0))
        sim.run()
        assert trace == [("b", 1.0), ("a", 2.0)]

    def test_barrier_over_processes(self, sim):
        def worker(delay):
            yield sim.timeout(delay)
            return delay

        barrier = sim.all_of([sim.process(worker(d)) for d in (2.0, 1.0)])
        sim.run()
        assert barrier.value == [2.0, 1.0]

    def test_yield_from_subroutine(self, sim):
        def subroutine():
            yield sim.timeout(1.0)
            return 10

        def body():
            first = yield from subroutine()
            second = yield from subroutine()
            return first + second

        proc = sim.process(body())
        sim.run()
        assert proc.value == 20
        assert sim.now == 2.0
