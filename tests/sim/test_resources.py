"""Tests for locks and stores."""

import pytest

from repro.errors import SimulationError
from repro.sim.resources import Lock, Store


class TestLock:
    def test_uncontended_acquire_is_immediate(self, sim):
        lock = Lock(sim)
        event = lock.acquire()
        sim.run()
        assert event.processed
        assert lock.locked

    def test_release_unheld_raises(self, sim):
        with pytest.raises(SimulationError):
            Lock(sim).release()

    def test_fifo_ordering(self, sim):
        lock = Lock(sim)
        order = []

        def worker(name, hold):
            yield lock.acquire()
            order.append(f"{name}+")
            yield sim.timeout(hold)
            order.append(f"{name}-")
            lock.release()

        sim.process(worker("a", 2.0))
        sim.process(worker("b", 1.0))
        sim.process(worker("c", 1.0))
        sim.run()
        assert order == ["a+", "a-", "b+", "b-", "c+", "c-"]

    def test_queue_length(self, sim):
        lock = Lock(sim)
        lock.acquire()
        lock.acquire()
        lock.acquire()
        assert lock.queue_length == 2

    def test_mutual_exclusion_invariant(self, sim):
        lock = Lock(sim)
        inside = [0]
        max_inside = [0]

        def worker():
            yield lock.acquire()
            inside[0] += 1
            max_inside[0] = max(max_inside[0], inside[0])
            yield sim.timeout(1.0)
            inside[0] -= 1
            lock.release()

        for _ in range(5):
            sim.process(worker())
        sim.run()
        assert max_inside[0] == 1


class TestStore:
    def test_put_then_get(self, sim):
        store = Store(sim)
        store.put("x")
        got = store.get()
        sim.run()
        assert got.value == "x"
        assert len(store) == 0

    def test_get_blocks_until_put(self, sim):
        store = Store(sim)
        results = []

        def consumer():
            item = yield store.get()
            results.append((item, sim.now))

        def producer():
            yield sim.timeout(3.0)
            yield store.put("late")

        sim.process(consumer())
        sim.process(producer())
        sim.run()
        assert results == [("late", 3.0)]

    def test_fifo_order(self, sim):
        store = Store(sim)
        for i in range(3):
            store.put(i)
        got = [store.get() for _ in range(3)]
        sim.run()
        assert [g.value for g in got] == [0, 1, 2]

    def test_capacity_blocks_put(self, sim):
        store = Store(sim, capacity=1)
        timeline = []

        def producer():
            yield store.put("a")
            timeline.append(("a", sim.now))
            yield store.put("b")
            timeline.append(("b", sim.now))

        def consumer():
            yield sim.timeout(5.0)
            yield store.get()

        sim.process(producer())
        sim.process(consumer())
        sim.run()
        assert timeline == [("a", 0.0), ("b", 5.0)]

    def test_zero_capacity_rejected(self, sim):
        with pytest.raises(SimulationError):
            Store(sim, capacity=0)

    def test_items_snapshot(self, sim):
        store = Store(sim)
        store.put(1)
        store.put(2)
        assert store.items == (1, 2)

    def test_producer_consumer_conservation(self, sim):
        """Everything produced is consumed exactly once."""
        store = Store(sim, capacity=2)
        produced = list(range(20))
        consumed = []

        def producer():
            for item in produced:
                yield store.put(item)
                yield sim.timeout(0.1)

        def consumer():
            for _ in produced:
                item = yield store.get()
                consumed.append(item)
                yield sim.timeout(0.25)

        sim.process(producer())
        sim.process(consumer())
        sim.run()
        assert consumed == produced
