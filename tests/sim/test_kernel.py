"""Tests for the discrete-event kernel."""

import pytest

from repro.errors import SimulationError


class TestEvents:
    def test_event_starts_pending(self, sim):
        event = sim.event()
        assert not event.triggered and not event.processed

    def test_succeed_carries_value(self, sim):
        event = sim.event()
        event.succeed("payload")
        sim.run()
        assert event.processed
        assert event.value == "payload"
        assert event.ok

    def test_fail_carries_exception(self, sim):
        event = sim.event()
        event.fail(ValueError("boom"))
        sim.run()
        assert isinstance(event.exception, ValueError)
        assert not event.ok

    def test_double_trigger_rejected(self, sim):
        event = sim.event()
        event.succeed()
        with pytest.raises(SimulationError):
            event.succeed()

    def test_fail_requires_exception_instance(self, sim):
        with pytest.raises(TypeError):
            sim.event().fail("not an exception")

    def test_callbacks_run_on_processing(self, sim):
        event = sim.event()
        seen = []
        event.add_callback(lambda e: seen.append(e.value))
        event.succeed(7)
        sim.run()
        assert seen == [7]

    def test_late_callback_still_runs(self, sim):
        event = sim.event()
        event.succeed(1)
        sim.run()
        seen = []
        event.add_callback(lambda e: seen.append(e.value))
        sim.run()
        assert seen == [1]


class TestTimeouts:
    def test_timeout_advances_clock(self, sim):
        sim.timeout(5.0)
        assert sim.run() == 5.0

    def test_negative_delay_rejected(self, sim):
        with pytest.raises(SimulationError):
            sim.timeout(-1.0)

    def test_timeouts_fire_in_order(self, sim):
        order = []
        sim.timeout(3.0).add_callback(lambda e: order.append(3))
        sim.timeout(1.0).add_callback(lambda e: order.append(1))
        sim.timeout(2.0).add_callback(lambda e: order.append(2))
        sim.run()
        assert order == [1, 2, 3]

    def test_equal_times_fifo(self, sim):
        order = []
        for tag in "abc":
            sim.timeout(1.0).add_callback(lambda e, t=tag: order.append(t))
        sim.run()
        assert order == ["a", "b", "c"]

    def test_run_until_stops_clock(self, sim):
        sim.timeout(10.0)
        assert sim.run(until=4.0) == 4.0
        assert sim.pending_events == 1

    def test_run_until_past_is_rejected(self, sim):
        sim.timeout(1.0)
        sim.run()
        with pytest.raises(SimulationError):
            sim.run(until=0.5)

    def test_step_without_events_raises(self, sim):
        with pytest.raises(SimulationError):
            sim.step()


class TestCancellation:
    def test_cancelled_timeout_does_not_advance_clock(self, sim):
        fired = []
        sim.timeout(1.0).add_callback(lambda e: fired.append(1))
        lost = sim.timeout(10.0)
        lost.add_callback(lambda e: fired.append(10))
        lost.cancel()
        assert sim.run() == 1.0
        assert fired == [1]
        assert sim.pending_events == 0

    def test_cancel_after_processing_is_a_noop(self, sim):
        done = sim.timeout(1.0)
        sim.run()
        done.cancel()
        assert done.processed and not done.cancelled

    def test_cancelled_loser_of_a_race_stays_silent(self, sim):
        winner = sim.timeout(1.0)
        loser = sim.timeout(50.0)
        race = sim.any_of([winner, loser])
        sim.run(until=2.0)
        assert race.ok
        loser.cancel()
        assert sim.run() == 2.0  # nothing left to drain

    def test_run_until_ignores_cancelled_head(self, sim):
        sim.timeout(1.0).cancel()
        sim.timeout(5.0)
        assert sim.run(until=3.0) == 3.0
        assert sim.pending_events == 1


class TestCombinators:
    def test_all_of_collects_values(self, sim):
        events = [sim.timeout(i, value=i) for i in (3.0, 1.0, 2.0)]
        barrier = sim.all_of(events)
        sim.run()
        assert barrier.processed
        assert barrier.value == [3.0, 1.0, 2.0]
        assert sim.now == 3.0

    def test_all_of_empty_fires_immediately(self, sim):
        barrier = sim.all_of([])
        sim.run()
        assert barrier.processed and barrier.value == []

    def test_all_of_propagates_failure(self, sim):
        good = sim.timeout(1.0)
        bad = sim.event()
        bad.fail(RuntimeError("nope"))
        barrier = sim.all_of([good, bad])
        sim.run()
        assert isinstance(barrier.exception, RuntimeError)

    def test_any_of_fires_on_first(self, sim):
        slow = sim.timeout(10.0, value="slow")
        fast = sim.timeout(1.0, value="fast")
        first = sim.any_of([slow, fast])
        sim.run()
        assert first.value == "fast"

    def test_any_of_empty_rejected(self, sim):
        with pytest.raises(SimulationError):
            sim.any_of([])
