"""Unit and property tests for the resource algebra."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import ResourceError
from repro.fabric.resources import ResourceKind, ResourceVector, total_resources


def vectors(max_value: int = 10_000):
    counts = st.integers(min_value=0, max_value=max_value)
    return st.builds(ResourceVector, lut=counts, ff=counts, bram=counts, dsp=counts)


class TestConstruction:
    def test_zero_is_all_zero(self):
        assert ResourceVector.zero().is_zero()

    def test_luts_constructor(self):
        vec = ResourceVector.luts(123)
        assert vec.lut == 123
        assert vec.ff == vec.bram == vec.dsp == 0

    def test_negative_component_rejected(self):
        with pytest.raises(ResourceError):
            ResourceVector(lut=-1)

    def test_non_integer_component_rejected(self):
        with pytest.raises(TypeError):
            ResourceVector(lut=1.5)

    def test_from_mapping(self):
        vec = ResourceVector.from_mapping({"lut": 5, "dsp": 2})
        assert vec.lut == 5 and vec.dsp == 2 and vec.ff == 0

    def test_from_mapping_unknown_key(self):
        with pytest.raises(ResourceError, match="unknown resource kinds"):
            ResourceVector.from_mapping({"slices": 5})


class TestArithmetic:
    def test_addition(self):
        a = ResourceVector(lut=1, ff=2, bram=3, dsp=4)
        b = ResourceVector(lut=10, ff=20, bram=30, dsp=40)
        assert a + b == ResourceVector(lut=11, ff=22, bram=33, dsp=44)

    def test_subtraction(self):
        a = ResourceVector(lut=10, ff=10)
        b = ResourceVector(lut=4, ff=5)
        assert a - b == ResourceVector(lut=6, ff=5)

    def test_subtraction_below_zero_raises(self):
        with pytest.raises(ResourceError):
            ResourceVector(lut=1) - ResourceVector(lut=2)

    def test_integer_scaling(self):
        assert ResourceVector(lut=3, bram=1) * 4 == ResourceVector(lut=12, bram=4)
        assert 4 * ResourceVector(lut=3) == ResourceVector(lut=12)

    def test_scaled_rounds_up(self):
        assert ResourceVector(lut=10).scaled(0.35) == ResourceVector(lut=4)

    def test_scaled_negative_rejected(self):
        with pytest.raises(ResourceError):
            ResourceVector(lut=10).scaled(-0.5)

    def test_total_resources_empty(self):
        assert total_resources([]) == ResourceVector.zero()

    def test_total_resources(self):
        vecs = [ResourceVector(lut=1), ResourceVector(lut=2, dsp=3)]
        assert total_resources(vecs) == ResourceVector(lut=3, dsp=3)


class TestQueries:
    def test_fits_in(self):
        small = ResourceVector(lut=5, bram=1)
        big = ResourceVector(lut=10, ff=2, bram=1)
        assert small.fits_in(big)
        assert not big.fits_in(small)

    def test_dominates_is_inverse_of_fits_in(self):
        small = ResourceVector(lut=5)
        big = ResourceVector(lut=10)
        assert big.dominates(small)
        assert not small.dominates(big)

    def test_utilization(self):
        demand = ResourceVector(lut=50, bram=1)
        capacity = ResourceVector(lut=100, ff=10, bram=4, dsp=8)
        ratios = demand.utilization(capacity)
        assert ratios[ResourceKind.LUT] == pytest.approx(0.5)
        assert ratios[ResourceKind.BRAM] == pytest.approx(0.25)
        assert ratios[ResourceKind.DSP] == 0.0

    def test_utilization_impossible_demand(self):
        with pytest.raises(ResourceError):
            ResourceVector(dsp=1).utilization(ResourceVector(lut=10))

    def test_max_utilization_is_binding_ratio(self):
        demand = ResourceVector(lut=10, bram=3)
        capacity = ResourceVector(lut=100, bram=4)
        assert demand.max_utilization(capacity) == pytest.approx(0.75)

    def test_shortfall_clamps_at_zero(self):
        demand = ResourceVector(lut=10, bram=5)
        capacity = ResourceVector(lut=100, bram=2)
        assert demand.shortfall(capacity) == ResourceVector(bram=3)

    def test_component_max(self):
        a = ResourceVector(lut=1, bram=9)
        b = ResourceVector(lut=7, dsp=2)
        assert a.component_max(b) == ResourceVector(lut=7, bram=9, dsp=2)

    def test_as_dict_round_trip(self):
        vec = ResourceVector(lut=1, ff=2, bram=3, dsp=4)
        assert ResourceVector.from_mapping(vec.as_dict()) == vec

    def test_str_omits_zero_components(self):
        assert "ff" not in str(ResourceVector(lut=3))
        assert str(ResourceVector.zero()).endswith("(0)")


class TestProperties:
    @given(vectors(), vectors())
    def test_addition_commutes(self, a, b):
        assert a + b == b + a

    @given(vectors(), vectors(), vectors())
    def test_addition_associates(self, a, b, c):
        assert (a + b) + c == a + (b + c)

    @given(vectors())
    def test_zero_is_identity(self, a):
        assert a + ResourceVector.zero() == a

    @given(vectors(), vectors())
    def test_sum_dominates_parts(self, a, b):
        assert (a + b).dominates(a)
        assert (a + b).dominates(b)

    @given(vectors(), vectors())
    def test_component_max_is_least_upper_bound(self, a, b):
        lub = a.component_max(b)
        assert lub.dominates(a) and lub.dominates(b)
        # Nothing strictly smaller dominates both: check each component.
        for kind in ResourceKind:
            assert lub.get(kind) == max(a.get(kind), b.get(kind))

    @given(vectors(), vectors())
    def test_shortfall_plus_capacity_covers_demand(self, demand, capacity):
        patched = capacity + demand.shortfall(capacity)
        assert demand.fits_in(patched)

    @given(vectors(), st.integers(min_value=0, max_value=20))
    def test_scalar_multiplication_matches_repeated_addition(self, a, n):
        acc = ResourceVector.zero()
        for _ in range(n):
            acc = acc + a
        assert a * n == acc

    @given(vectors())
    def test_fits_in_is_reflexive(self, a):
        assert a.fits_in(a)

    @given(vectors(), vectors(), vectors())
    def test_fits_in_is_transitive(self, a, b, c):
        if a.fits_in(b) and b.fits_in(c):
            assert a.fits_in(c)
