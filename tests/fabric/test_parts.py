"""Tests for the board catalog."""

import pytest

from repro.errors import FabricError
from repro.fabric.device import ColumnKind
from repro.fabric.parts import PART_CATALOG, make_device, vc707, vcu118, vcu128


class TestVc707:
    """The paper's evaluation board must track the xc7vx485t datasheet."""

    def test_lut_capacity_near_datasheet(self):
        # Datasheet: 303,600 LUTs; column model lands within 2%.
        luts = vc707().capacity().lut
        assert abs(luts - 303_600) / 303_600 < 0.02

    def test_dsp_capacity_exact(self):
        assert vc707().capacity().dsp == 2800

    def test_bram_capacity_near_datasheet(self):
        bram = vc707().capacity().bram
        assert abs(bram - 1030) / 1030 < 0.06

    def test_region_grid(self):
        dev = vc707()
        assert dev.region_rows == 7
        assert dev.region_cols == 2

    def test_has_forbidden_clock_columns(self):
        assert len(vc707().forbidden_columns()) == 2

    def test_special_columns_spread_through_fabric(self):
        """Every 20-column window must contain BRAM (so any plausible
        pblock can host accelerator memories)."""
        dev = vc707()
        kinds = [dev.column_kind(x) for x in range(dev.num_columns)]
        for start in range(0, dev.num_columns - 20):
            window = kinds[start : start + 20]
            assert ColumnKind.BRAM in window, f"no BRAM column in window at {start}"


class TestBiggerParts:
    def test_vcu118_is_larger_than_vc707(self):
        assert vcu118().capacity().lut > 3 * vc707().capacity().lut

    def test_vcu128_is_largest(self):
        assert vcu128().capacity().lut > vcu118().capacity().lut

    def test_ultrascale_parts_use_12x4_regions(self):
        for dev in (vcu118(), vcu128()):
            assert dev.region_rows == 12
            assert dev.region_cols == 4


class TestCatalog:
    def test_all_boards_instantiate(self):
        for board in PART_CATALOG:
            assert make_device(board).capacity().lut > 0

    def test_lookup_is_case_insensitive(self):
        assert make_device("VC707").name == "xc7vx485t"

    def test_unknown_board_rejected(self):
        with pytest.raises(FabricError, match="unknown board"):
            make_device("zcu102")
