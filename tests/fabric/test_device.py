"""Tests for the column-organized device model."""

import pytest

from repro.errors import FabricError
from repro.fabric.device import ClockRegion, ColumnKind, Device, repeat_pattern
from repro.fabric.resources import ResourceVector


def tiny_device(rows=2, cols=2) -> Device:
    pattern = [
        ColumnKind.CLB,
        ColumnKind.BRAM,
        ColumnKind.CLB,
        ColumnKind.DSP,
        ColumnKind.CLK,
        ColumnKind.CLB,
    ]
    return Device(
        name="tiny",
        columns=pattern * cols,
        region_rows=rows,
        region_cols=cols,
        segment_resources={
            ColumnKind.CLB: ResourceVector(lut=400, ff=800),
            ColumnKind.BRAM: ResourceVector(bram=10),
            ColumnKind.DSP: ResourceVector(dsp=20),
        },
    )


class TestGeometry:
    def test_column_count(self):
        assert tiny_device().num_columns == 12

    def test_columns_per_region_col(self):
        assert tiny_device().columns_per_region_col == 6

    def test_clock_regions_row_major(self):
        regions = tiny_device().clock_regions()
        assert len(regions) == 4
        assert regions[0] == ClockRegion(row=0, col=0)
        assert regions[-1] == ClockRegion(row=1, col=1)

    def test_clock_region_name(self):
        assert ClockRegion(row=3, col=1).name == "X1Y3"

    def test_region_col_of_column(self):
        dev = tiny_device()
        assert dev.region_col_of_column(0) == 0
        assert dev.region_col_of_column(6) == 1

    def test_column_kind(self):
        dev = tiny_device()
        assert dev.column_kind(1) is ColumnKind.BRAM
        assert dev.column_kind(4) is ColumnKind.CLK

    def test_out_of_range_column(self):
        with pytest.raises(FabricError):
            tiny_device().column_kind(99)

    def test_columns_must_divide_into_region_cols(self):
        with pytest.raises(FabricError, match="divide"):
            Device(
                name="bad",
                columns=[ColumnKind.CLB] * 5,
                region_rows=1,
                region_cols=2,
                segment_resources={},
            )

    def test_empty_device_rejected(self):
        with pytest.raises(FabricError):
            Device("bad", [], 1, 1, {})

    def test_zero_regions_rejected(self):
        with pytest.raises(FabricError):
            Device("bad", [ColumnKind.CLB], 0, 1, {})


class TestResources:
    def test_segment_resources_default_zero(self):
        assert tiny_device().segment_resources(ColumnKind.IO).is_zero()

    def test_column_resources_span_all_rows(self):
        dev = tiny_device(rows=2)
        assert dev.column_resources(0) == ResourceVector(lut=800, ff=1600)

    def test_capacity_sums_all_columns(self):
        dev = tiny_device(rows=2, cols=2)
        # 6 CLB columns x 2 rows x 400 LUTs = 4800 LUTs
        assert dev.capacity().lut == 4800
        assert dev.capacity().bram == 40
        assert dev.capacity().dsp == 80

    def test_rect_resources_single_cell(self):
        dev = tiny_device()
        assert dev.rect_resources(0, 0, 0, 0) == ResourceVector(lut=400, ff=800)

    def test_rect_resources_multi_row(self):
        dev = tiny_device(rows=2)
        assert dev.rect_resources(0, 1, 0, 1) == ResourceVector(lut=800, ff=1600, bram=20)

    def test_rect_inverted_bounds_rejected(self):
        with pytest.raises(FabricError, match="inverted"):
            tiny_device().rect_resources(3, 1, 0, 0)

    def test_rect_equals_capacity_when_covering_device(self):
        dev = tiny_device(rows=2, cols=2)
        full = dev.rect_resources(0, dev.num_columns - 1, 0, dev.region_rows - 1)
        assert full == dev.capacity()


class TestForbiddenColumns:
    def test_clk_columns_are_forbidden(self):
        dev = tiny_device(cols=2)
        assert dev.forbidden_columns() == [4, 10]


class TestRepeatPattern:
    def test_repeats(self):
        assert repeat_pattern([ColumnKind.CLB], 3) == [ColumnKind.CLB] * 3

    def test_zero_repetitions_rejected(self):
        with pytest.raises(FabricError):
            repeat_pattern([ColumnKind.CLB], 0)
