"""Tests for pblock geometry and DFX legality checks."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import FabricError
from repro.fabric.pblock import Pblock, check_pblock
from repro.fabric.parts import vc707
from repro.fabric.resources import ResourceVector


@pytest.fixture(scope="module")
def device():
    return vc707()


def blocks(max_col=60, max_row=6):
    lo_col = st.integers(0, max_col)
    lo_row = st.integers(0, max_row)
    return st.builds(
        lambda c0, cw, r0, rh: Pblock(
            name="p", col_lo=c0, col_hi=c0 + cw, row_lo=r0, row_hi=min(r0 + rh, max_row)
        ),
        lo_col,
        st.integers(0, 20),
        lo_row,
        st.integers(0, 6),
    )


class TestGeometry:
    def test_dimensions(self):
        pb = Pblock("p", col_lo=2, col_hi=5, row_lo=1, row_hi=3)
        assert pb.width == 4
        assert pb.height == 3
        assert pb.area == 12

    def test_inverted_bounds_rejected(self):
        with pytest.raises(FabricError):
            Pblock("p", col_lo=5, col_hi=2, row_lo=0, row_hi=0)

    def test_negative_bounds_rejected(self):
        with pytest.raises(FabricError):
            Pblock("p", col_lo=-1, col_hi=2, row_lo=0, row_hi=0)

    def test_overlap_detection(self):
        a = Pblock("a", 0, 5, 0, 2)
        b = Pblock("b", 5, 9, 2, 3)  # shares corner cell (5, 2)
        c = Pblock("c", 6, 9, 3, 4)
        assert a.overlaps(b)
        assert not a.overlaps(c)

    def test_resources_match_device_rect(self, device):
        pb = Pblock("p", 0, 10, 0, 1)
        assert pb.resources(device) == device.rect_resources(0, 10, 0, 1)

    def test_xdc_mentions_name_and_rows(self, device):
        pb = Pblock("rp0", 0, 3, 2, 4)
        xdc = pb.xdc(device)
        assert "rp0" in xdc and "ROWS2-4" in xdc

    @given(blocks(), blocks())
    def test_overlap_is_symmetric(self, a, b):
        assert a.overlaps(b) == b.overlaps(a)

    @given(blocks())
    def test_every_block_overlaps_itself(self, a):
        assert a.overlaps(a)


class TestLegality:
    def test_legal_block(self, device):
        pb = Pblock("p", 0, 20, 0, 2)
        report = check_pblock(device, pb, ResourceVector(lut=100))
        assert report.legal
        assert report.provided.lut > 100

    def test_exceeds_device_columns(self, device):
        pb = Pblock("p", 0, device.num_columns + 5, 0, 0)
        report = check_pblock(device, pb, ResourceVector())
        assert not report.legal
        assert any("exceeds device" in v for v in report.violations)

    def test_exceeds_device_rows(self, device):
        pb = Pblock("p", 0, 1, 0, device.region_rows)
        report = check_pblock(device, pb, ResourceVector())
        assert not report.legal

    def test_forbidden_clock_column(self, device):
        clk = device.forbidden_columns()[0]
        pb = Pblock("p", clk - 1, clk + 1, 0, 0)
        report = check_pblock(device, pb, ResourceVector(lut=1))
        assert not report.legal
        assert any("forbidden" in v for v in report.violations)

    def test_insufficient_resources(self, device):
        pb = Pblock("p", 0, 1, 0, 0)
        demand = ResourceVector(lut=10**6)
        report = check_pblock(device, pb, demand)
        assert not report.legal
        assert any("insufficient" in v for v in report.violations)

    def test_overlap_with_other_rp(self, device):
        a = Pblock("a", 0, 10, 0, 2)
        b = Pblock("b", 5, 15, 1, 3)
        report = check_pblock(device, a, ResourceVector(lut=1), others=[b])
        assert not report.legal
        assert any("overlaps" in v for v in report.violations)

    def test_same_name_not_self_overlap(self, device):
        a = Pblock("a", 0, 10, 0, 2)
        report = check_pblock(device, a, ResourceVector(lut=1), others=[a])
        assert report.legal
