"""Tests for the end-to-end PR-ESP flow."""

import pytest

from repro.core.strategy import ImplementationStrategy
from repro.flow.dpr_flow import DprFlow
from repro.vivado.bitstream import BitstreamKind


@pytest.fixture(scope="module")
def flow():
    return DprFlow()


@pytest.fixture(scope="module")
def soc2_result(flow):
    from repro.core.designs import soc_2

    return flow.build(soc_2())


class TestStages:
    def test_all_fig1_stages_traced(self, soc2_result):
        stages = [s.stage for s in soc2_result.stages]
        assert stages == [
            "parse",
            "blackbox_gen",
            "synthesis",
            "floorplan",
            "choose_parallelism",
            "implementation",
            "bitstreams",
        ]

    def test_synthesis_is_parallel(self, soc2_result):
        # Parallel makespan must be far below the serial sum of synths.
        assert soc2_result.synth_makespan_minutes < 60

    def test_strategy_decision_matches_class(self, soc2_result):
        assert soc2_result.decision.design_class.value == "1.2"
        assert soc2_result.strategy is ImplementationStrategy.FULLY_PARALLEL


class TestImplementation:
    def test_parallel_makespan_structure(self, soc2_result):
        expected = soc2_result.static_par_minutes + soc2_result.max_omega_minutes
        assert soc2_result.par_makespan_minutes == pytest.approx(expected)

    def test_omega_per_context_run(self, soc2_result):
        assert len(soc2_result.omega_minutes) == 4  # fully-parallel: one per RP

    def test_total_is_synth_plus_par(self, soc2_result):
        assert soc2_result.total_minutes == pytest.approx(
            soc2_result.synth_makespan_minutes + soc2_result.par_makespan_minutes
        )

    def test_serial_override(self, flow):
        from repro.core.designs import soc_2

        result = flow.build(soc_2(), strategy_override=ImplementationStrategy.SERIAL)
        assert result.strategy is ImplementationStrategy.SERIAL
        assert result.static_par_minutes is None
        assert result.omega_minutes == {}

    def test_semi_override(self, flow):
        from repro.core.designs import soc_2

        result = flow.build(
            soc_2(), strategy_override=ImplementationStrategy.SEMI_PARALLEL
        )
        assert result.plan.tau == 2
        assert len(result.omega_minutes) == 2


class TestBitstreams:
    def test_one_full_bitstream(self, soc2_result):
        fulls = [b for b in soc2_result.bitstreams if b.kind is BitstreamKind.FULL]
        assert len(fulls) == 1

    def test_one_partial_per_mode_plus_blank(self, soc2_result):
        partials = soc2_result.partial_bitstreams()
        tiles = soc2_result.config.reconfigurable_tiles
        expected_modes = sum(len(t.modes) for t in tiles)
        blanks = [b for b in partials if b.mode == "blank"]
        assert len(blanks) == len(tiles)  # one greybox per region
        assert len(partials) == expected_modes + len(blanks)

    def test_partials_are_compressed(self, soc2_result):
        assert all(b.compressed for b in soc2_result.partial_bitstreams())

    def test_uncompressed_flow_option(self):
        from repro.core.designs import soc_2

        raw = DprFlow(compress_bitstreams=False).build(soc_2())
        compressed = DprFlow(compress_bitstreams=True).build(soc_2())
        raw_total = sum(b.size_bytes for b in raw.partial_bitstreams())
        packed_total = sum(b.size_bytes for b in compressed.partial_bitstreams())
        assert packed_total < raw_total / 3

    def test_host_cpu_tile_gets_cpu_bitstream(self):
        from repro.core.designs import soc_4

        result = DprFlow().build(soc_4())
        modes = {(b.target_rp, b.mode) for b in result.partial_bitstreams()}
        assert ("rt_cpu", "leon3") in modes


class TestFloorplanIntegration:
    def test_one_pblock_per_rp(self, soc2_result):
        assert len(soc2_result.floorplan.assignments) == soc2_result.partition.num_rps

    def test_regions_cover_demands(self, soc2_result):
        for assignment in soc2_result.floorplan.assignments:
            assert assignment.demand.fits_in(assignment.provided)


class TestAllPaperDesigns:
    def test_every_paper_soc_builds(self, flow, all_paper_socs):
        for name, config in all_paper_socs.items():
            result = flow.build(config)
            assert result.total_minutes > 0, name


class TestSummaryExport:
    def test_summary_dict_is_json_serializable(self, soc2_result):
        import json

        text = json.dumps(soc2_result.to_summary_dict())
        data = json.loads(text)
        assert data["soc"] == "soc_2"
        assert data["strategy"] == "fully-parallel"
        assert data["design_class"] == "1.2"
        assert data["minutes"]["total"] == pytest.approx(
            soc2_result.total_minutes
        )

    def test_summary_covers_bitstreams_and_floorplan(self, soc2_result):
        data = soc2_result.to_summary_dict()
        assert len(data["bitstreams"]) == len(soc2_result.bitstreams)
        assert len(data["floorplan"]) == len(soc2_result.floorplan.assignments)
        for entry in data["floorplan"]:
            assert 0.0 < entry["utilization"] <= 1.0
