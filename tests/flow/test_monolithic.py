"""Tests for the standard-flow baseline."""

import pytest

from repro.flow.monolithic import MonolithicFlow
from repro.vivado.bitstream import BitstreamKind


@pytest.fixture(scope="module")
def baseline_result():
    from repro.core.designs import soc_2

    return MonolithicFlow().build(soc_2())


class TestBaseline:
    def test_synth_plus_par(self, baseline_result):
        assert baseline_result.total_minutes == pytest.approx(
            baseline_result.synth_minutes + baseline_result.par_minutes
        )

    def test_single_instance_synthesis_is_slower_than_parallel(self, baseline_result):
        from repro.core.designs import soc_2
        from repro.flow.dpr_flow import DprFlow

        presp = DprFlow().build(soc_2())
        assert baseline_result.synth_minutes > presp.synth_makespan_minutes

    def test_baseline_still_produces_partials(self, baseline_result):
        partials = [
            b for b in baseline_result.bitstreams if b.kind is BitstreamKind.PARTIAL
        ]
        assert len(partials) == 4

    def test_metrics_attached(self, baseline_result):
        assert baseline_result.metrics.num_rps == 4


class TestTable5Shape:
    """The PR-ESP vs monolithic comparison must keep the paper's shape:
    large wins for classes 1.2/2.1, modest for 1.3, smallest for 1.1."""

    @pytest.fixture(scope="class")
    def comparisons(self, all_paper_socs):
        from repro.flow.dpr_flow import DprFlow

        flow, baseline = DprFlow(), MonolithicFlow()
        out = {}
        for name in ("soc_a", "soc_b", "soc_c", "soc_d"):
            presp = flow.build(all_paper_socs[name])
            mono = baseline.build(all_paper_socs[name])
            out[name] = (presp, mono)
        return out

    def test_presp_wins_class_12_and_21(self, comparisons):
        for name in ("soc_a", "soc_d"):
            presp, mono = comparisons[name]
            improvement = (mono.total_minutes - presp.total_minutes) / mono.total_minutes
            assert improvement > 0.10, f"{name}: expected a large win"

    def test_class_11_is_the_smallest_win(self, comparisons):
        """The paper found SoC_B (class 1.1) to be PR-ESP's weakest case
        (slightly *slower* than the baseline); our model keeps it the
        weakest class-1.x case though the sign flips (documented in
        EXPERIMENTS.md)."""
        improvements = {
            name: (mono.total_minutes - presp.total_minutes) / mono.total_minutes
            for name, (presp, mono) in comparisons.items()
        }
        assert improvements["soc_a"] > improvements["soc_c"]
        assert improvements["soc_d"] > improvements["soc_c"]

    def test_parallel_synthesis_always_wins(self, comparisons):
        for name, (presp, mono) in comparisons.items():
            assert presp.synth_makespan_minutes < mono.synth_minutes, name
