"""Tests for implementation planning."""

import pytest

from repro.core.metrics import compute_metrics
from repro.core.strategy import ImplementationStrategy, choose_strategy
from repro.errors import FlowError
from repro.flow.schedule import RunKind, plan_implementation
from repro.soc.partition import partition_design


def decision_for(config, strategy):
    metrics = compute_metrics(config)
    decision = choose_strategy(metrics)
    if decision.strategy is not strategy:
        from repro.core.strategy import StrategyDecision

        decision = StrategyDecision(
            classification=decision.classification,
            strategy=strategy,
            tau=1 if strategy is ImplementationStrategy.SERIAL else metrics.num_rps
            if strategy is ImplementationStrategy.FULLY_PARALLEL
            else 2,
        )
    return decision


class TestSerialPlan:
    def test_single_full_run(self, soc2):
        partition = partition_design(soc2)
        plan = plan_implementation(
            partition, decision_for(soc2, ImplementationStrategy.SERIAL)
        )
        assert plan.tau == 1
        assert len(plan.runs) == 1
        assert plan.runs[0].kind is RunKind.FULL_SERIAL
        assert set(plan.runs[0].rp_names) == {rp.name for rp in partition.rps}

    def test_serial_plan_has_no_static_run(self, soc2):
        partition = partition_design(soc2)
        plan = plan_implementation(
            partition, decision_for(soc2, ImplementationStrategy.SERIAL)
        )
        with pytest.raises(FlowError):
            plan.static_run


class TestFullyParallelPlan:
    def test_one_context_run_per_rp(self, soc2):
        partition = partition_design(soc2)
        plan = plan_implementation(
            partition, decision_for(soc2, ImplementationStrategy.FULLY_PARALLEL)
        )
        assert plan.tau == partition.num_rps
        assert len(plan.context_runs) == partition.num_rps
        for run in plan.context_runs:
            assert len(run.rp_names) == 1
            assert run.depends_on == (plan.static_run.name,)

    def test_static_run_present(self, soc2):
        partition = partition_design(soc2)
        plan = plan_implementation(
            partition, decision_for(soc2, ImplementationStrategy.FULLY_PARALLEL)
        )
        assert plan.static_run.kind is RunKind.STATIC


class TestSemiParallelPlan:
    def test_tau_groups(self, soc2):
        partition = partition_design(soc2)
        plan = plan_implementation(
            partition, decision_for(soc2, ImplementationStrategy.SEMI_PARALLEL)
        )
        assert plan.tau == 2
        assert len(plan.context_runs) == 2
        covered = sorted(n for run in plan.context_runs for n in run.rp_names)
        assert covered == sorted(rp.name for rp in partition.rps)

    def test_groups_are_lpt_balanced(self, soc2):
        partition = partition_design(soc2)
        plan = plan_implementation(
            partition, decision_for(soc2, ImplementationStrategy.SEMI_PARALLEL)
        )
        sizes = {rp.name: rp.synthesis_luts for rp in partition.rps}
        group_sizes = sorted(
            sum(sizes[n] for n in run.rp_names) for run in plan.context_runs
        )
        # SOC_2 LPT: {fft, gemm} ~65.1k vs {conv2d, sort} ~58.0k
        assert group_sizes[1] - group_sizes[0] < 10_000
