"""Wall-clock acceptance tests for the build service (``-m perf``).

Two claims back the batch/cache layer:

* the 12-build Table IV sweep (4 WAMI SoCs x 3 strategies) through
  ``BatchBuilder --jobs 4`` is at least 2x faster than running the same
  builds serially (needs >= 4 cores — skipped on smaller runners);
* repeating the sweep against a warm cache is at least 10x faster than
  the cold pass, and byte-identical in its summaries.

Both tests assert result *identity* alongside speed, so a fast-but-
wrong shortcut cannot pass.
"""

import gc
import os
import time

import pytest

from repro.core.designs import wami_parallelism_socs
from repro.core.strategy import ImplementationStrategy
from repro.flow.batch import BatchBuilder, BuildRequest
from repro.flow.cache import FlowCache
from repro.flow.dpr_flow import DprFlow

pytestmark = pytest.mark.perf

STRATEGIES = (
    ImplementationStrategy.SERIAL,
    ImplementationStrategy.SEMI_PARALLEL,
    ImplementationStrategy.FULLY_PARALLEL,
)


def sweep_requests():
    """The Table IV grid: 4 WAMI SoCs x 3 strategies = 12 builds."""
    socs = wami_parallelism_socs()
    return [
        BuildRequest(config=config, strategy_override=strategy)
        for config in socs.values()
        for strategy in STRATEGIES
    ]


def summaries(outcomes):
    return [outcome.unwrap().to_summary_dict() for outcome in outcomes]


def test_warm_cache_sweep_at_least_10x_faster():
    flow = DprFlow()
    cache = FlowCache()
    builder = BatchBuilder(flow=flow, cache=cache)
    requests = sweep_requests()

    # GC-quiesced like the profile workloads: late in a full suite run
    # a gen-2 collection over the accumulated heap can land inside the
    # ~5 ms warm window and swamp the ratio being measured.
    gc.collect()
    gc.disable()
    try:
        start = time.perf_counter()
        cold = builder.build_many(requests)
        cold_s = time.perf_counter() - start

        start = time.perf_counter()
        warm = builder.build_many(requests)
        warm_s = time.perf_counter() - start
    finally:
        gc.enable()

    assert [outcome.cached for outcome in cold] == [False] * len(requests)
    assert [outcome.cached for outcome in warm] == [True] * len(requests)
    # Cached results must be indistinguishable from fresh ones.
    assert summaries(warm) == summaries(cold)
    fresh = [
        flow.build(
            request.config, strategy_override=request.strategy_override
        ).to_summary_dict()
        for request in requests
    ]
    assert summaries(warm) == fresh
    assert warm_s * 10 <= cold_s, (
        f"warm sweep {warm_s * 1000:.0f} ms vs cold {cold_s * 1000:.0f} ms "
        f"(speedup {cold_s / warm_s:.1f}x < 10x)"
    )


@pytest.mark.skipif(
    (os.cpu_count() or 1) < 4,
    reason="parallel speedup needs at least 4 cores",
)
def test_parallel_sweep_at_least_2x_faster():
    flow = DprFlow()
    requests = sweep_requests()

    start = time.perf_counter()
    serial = BatchBuilder(flow=flow, jobs=1).build_many(requests)
    serial_s = time.perf_counter() - start

    start = time.perf_counter()
    parallel = BatchBuilder(flow=flow, jobs=4).build_many(requests)
    parallel_s = time.perf_counter() - start

    assert summaries(parallel) == summaries(serial)
    assert parallel_s * 2 <= serial_s, (
        f"parallel sweep {parallel_s:.2f} s vs serial {serial_s:.2f} s "
        f"(speedup {serial_s / parallel_s:.1f}x < 2x)"
    )
