"""Tests for the content-addressed flow cache."""

import pickle

import pytest

from repro.core.designs import wami_parallelism_socs
from repro.core.strategy import ImplementationStrategy
from repro.errors import FlowError
from repro.flow.cache import (
    FlowCache,
    config_fingerprint,
    default_disk_dir,
    flow_cache_key,
)
from repro.flow.dpr_flow import DprFlow
from repro.obs.export import chrome_trace_json
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import Tracer
from repro.soc.config import SocConfig
from repro.soc.esp_library import STOCK_ACCELERATORS, stock_accelerator
from repro.vivado.characterization import characterization_design


@pytest.fixture(scope="module")
def soc():
    return wami_parallelism_socs()["soc_a"]


@pytest.fixture(scope="module")
def flow():
    return DprFlow()


class TestKeyDerivation:
    def test_same_inputs_same_key(self, flow, soc):
        assert flow_cache_key(flow, soc) == flow_cache_key(flow, soc)

    def test_strategy_override_changes_key(self, flow, soc):
        keys = {
            flow_cache_key(flow, soc),
            flow_cache_key(
                flow, soc, strategy_override=ImplementationStrategy.SERIAL
            ),
            flow_cache_key(
                flow, soc, strategy_override=ImplementationStrategy.FULLY_PARALLEL
            ),
        }
        assert len(keys) == 3

    def test_semi_tau_changes_key(self, flow, soc):
        assert flow_cache_key(flow, soc, semi_tau=2) != flow_cache_key(
            flow, soc, semi_tau=3
        )

    def test_changed_mode_set_changes_key(self, flow, soc):
        """Growing one tile's mode list is a different design."""
        tiles = list(soc.tiles)
        for index, tile in enumerate(tiles):
            if tile in soc.reconfigurable_tiles:
                widened = type(tile)(
                    name=tile.name,
                    modes=list(tile.modes) + [stock_accelerator("fft")],
                    host_cpu=tile.host_cpu,
                    hosted_cpu_core=tile.hosted_cpu_core,
                )
                tiles[index] = widened
                break
        changed = SocConfig.assemble(
            name=soc.name,
            board=soc.board,
            rows=soc.rows,
            cols=soc.cols,
            tiles=tiles,
        )
        assert flow_cache_key(flow, changed) != flow_cache_key(flow, soc)

    def test_resource_vectors_distinguish_same_named_designs(self, flow):
        """`to_dict` would alias these: same structure, different LUTs."""
        small = characterization_design("chz_x", [3_000, 4_000])
        large = characterization_design("chz_x", [3_000, 5_000])
        assert flow_cache_key(flow, small) != flow_cache_key(flow, large)

    def test_flow_options_change_key(self, soc):
        assert flow_cache_key(DprFlow(), soc) != flow_cache_key(
            DprFlow(compress_bitstreams=False), soc
        )
        assert flow_cache_key(DprFlow(), soc) != flow_cache_key(
            DprFlow(max_instances=4), soc
        )

    def test_fingerprint_covers_all_library_ips(self):
        """Every catalog accelerator digests without error."""
        from repro.flow.cache import _ip_fingerprint

        for name, ip in STOCK_ACCELERATORS.items():
            fingerprint = _ip_fingerprint(ip)
            assert fingerprint["name"] == ip.name
            assert len(fingerprint["resources"]) == 4

    def test_config_fingerprint_includes_every_tile(self, soc):
        fingerprint = config_fingerprint(soc)
        assert len(fingerprint["tiles"]) == len(soc.tiles)


class TestCorrectness:
    def test_cached_summary_identical_to_fresh(self, flow, soc):
        cache = FlowCache()
        fresh = flow.build(soc)
        key = flow_cache_key(flow, soc)
        cache.put(key, fresh)
        served = cache.get(key)
        assert served is not fresh
        assert served.to_summary_dict() == fresh.to_summary_dict()

    def test_cached_trace_identical_to_fresh(self, flow, soc):
        """A replayed trace must be byte-identical to a live one."""
        live_tracer = Tracer(time_unit="min")
        fresh = flow.build(soc, tracer=live_tracer)
        cache = FlowCache()
        cache.put(flow_cache_key(flow, soc), fresh)

        served = cache.get(flow_cache_key(flow, soc))
        replay_tracer = Tracer(time_unit="min")
        flow.record_trace(served, replay_tracer)
        assert chrome_trace_json(replay_tracer) == chrome_trace_json(live_tracer)

    def test_changed_config_misses(self, flow, soc):
        cache = FlowCache()
        cache.put(flow_cache_key(flow, soc), flow.build(soc))
        other = wami_parallelism_socs()["soc_b"]
        assert cache.get(flow_cache_key(flow, other)) is None

    def test_served_copies_are_private(self, flow, soc):
        """Mutating a served result must not poison later hits."""
        cache = FlowCache()
        key = flow_cache_key(flow, soc)
        cache.put(key, flow.build(soc))
        first = cache.get(key)
        baseline = first.to_summary_dict()
        first.bitstreams.clear()
        again = cache.get(key)
        assert again.to_summary_dict() == baseline


class TestTiers:
    def test_lru_eviction(self, flow):
        socs = list(wami_parallelism_socs().values())
        cache = FlowCache(max_entries=2)
        keys = []
        for config in socs[:3]:
            key = flow_cache_key(flow, config)
            keys.append(key)
            cache.put(key, flow.build(config))
        assert len(cache) == 2
        assert cache.get(keys[0]) is None  # oldest evicted
        assert cache.get(keys[2]) is not None
        assert cache.stats()["evictions"] == 1

    def test_get_refreshes_lru_position(self, flow):
        socs = list(wami_parallelism_socs().values())
        cache = FlowCache(max_entries=2)
        keys = [flow_cache_key(flow, config) for config in socs[:3]]
        cache.put(keys[0], flow.build(socs[0]))
        cache.put(keys[1], flow.build(socs[1]))
        cache.get(keys[0])  # now most recent
        cache.put(keys[2], flow.build(socs[2]))
        assert cache.get(keys[0]) is not None
        assert cache.get(keys[1]) is None

    def test_disk_tier_survives_process_boundary(self, flow, soc, tmp_path):
        """A second cache instance (new 'process') hits the disk tier."""
        key = flow_cache_key(flow, soc)
        writer = FlowCache(disk_dir=tmp_path)
        writer.put(key, flow.build(soc))

        reader = FlowCache(disk_dir=tmp_path)
        served = reader.get(key)
        assert served is not None
        assert served.to_summary_dict() == flow.build(soc).to_summary_dict()
        assert reader.stats()["hits_disk"] == 1
        # The disk hit was promoted: next lookup is a memory hit.
        reader.get(key)
        assert reader.stats()["hits_memory"] == 1

    def test_corrupt_disk_entry_is_a_miss(self, flow, soc, tmp_path):
        key = flow_cache_key(flow, soc)
        writer = FlowCache(disk_dir=tmp_path)
        writer.put(key, flow.build(soc))
        (tmp_path / f"{key}.pkl").write_bytes(b"not a pickle")
        reader = FlowCache(disk_dir=tmp_path)
        assert reader.get(key) is None
        assert reader.stats()["disk_errors"] == 1
        assert not (tmp_path / f"{key}.pkl").exists()  # evicted

    def test_clear_disk(self, flow, soc, tmp_path):
        cache = FlowCache(disk_dir=tmp_path)
        cache.put(flow_cache_key(flow, soc), flow.build(soc))
        assert list(tmp_path.glob("*.pkl"))
        cache.clear(disk=True)
        assert len(cache) == 0
        assert not list(tmp_path.glob("*.pkl"))

    def test_concurrent_writers_never_publish_torn_entries(self, flow, soc, tmp_path):
        """Regression: two writers racing on one key used to share one
        ``<key>.tmp`` file, so a rename could publish a truncated
        pickle. Tmp names are per-writer now; hammer the same key from
        many threads and every published entry must load cleanly."""
        import threading

        key = flow_cache_key(flow, soc)
        result = flow.build(soc)
        caches = [FlowCache(disk_dir=tmp_path) for _ in range(4)]
        start = threading.Barrier(len(caches))

        def writer(cache):
            start.wait()
            for _ in range(20):
                cache.put(key, result)

        threads = [
            threading.Thread(target=writer, args=(cache,)) for cache in caches
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        # No tmp litter, and the published entry deserializes.
        assert list(tmp_path.glob("*.tmp")) == []
        reader = FlowCache(disk_dir=tmp_path)
        served = reader.get(key)
        assert served is not None
        assert served.to_summary_dict() == result.to_summary_dict()
        assert reader.stats()["disk_errors"] == 0

    def test_default_disk_dir_honors_xdg(self, monkeypatch, tmp_path):
        monkeypatch.setenv("XDG_CACHE_HOME", str(tmp_path))
        assert default_disk_dir() == tmp_path / "repro-flow"

    def test_bad_capacity_rejected(self):
        with pytest.raises(FlowError):
            FlowCache(max_entries=0)


class TestInstrumentation:
    def test_counters_land_in_registry(self, flow, soc):
        registry = MetricsRegistry()
        cache = FlowCache(metrics=registry)
        key = flow_cache_key(flow, soc)
        cache.get(key)  # miss
        cache.put(key, flow.build(soc))
        cache.get(key)  # memory hit
        snapshot = registry.snapshot()
        assert snapshot["flow_cache_requests_total"] == 2
        assert snapshot["flow_cache_misses_total"] == 1
        assert snapshot["flow_cache_hits_total{tier=memory}"] == 1

    def test_stats_without_registry(self, flow, soc):
        cache = FlowCache()
        key = flow_cache_key(flow, soc)
        cache.get(key)
        cache.put(key, flow.build(soc))
        cache.get(key)
        stats = cache.stats()
        assert stats["requests"] == 2
        assert stats["misses"] == 1
        assert stats["hits_memory"] == 1
        assert stats["entries"] == 1

    def test_payloads_are_picklable_roundtrips(self, flow, soc):
        result = flow.build(soc)
        clone = pickle.loads(pickle.dumps(result, pickle.HIGHEST_PROTOCOL))
        assert clone.to_summary_dict() == result.to_summary_dict()
