"""Tests for the batch build service."""

import pytest

from repro.core.designs import wami_parallelism_socs
from repro.core.platform import PrEspPlatform
from repro.core.strategy import ImplementationStrategy
from repro.errors import FlowError
from repro.flow.batch import BatchBuilder, BuildRequest, cached_build
from repro.flow.cache import FlowCache
from repro.flow.dpr_flow import DprFlow
from repro.flow.options import BuildOptions
from repro.obs.metrics import MetricsRegistry
from repro.vivado.characterization import characterization_design


@pytest.fixture(scope="module")
def socs():
    return wami_parallelism_socs()


@pytest.fixture(scope="module")
def flow():
    return DprFlow()


def oversized_config():
    """A config whose only accelerator cannot fit any floorplan."""
    return characterization_design("chz_oversized", [5_000_000])


class TestOrderingAndEquivalence:
    def test_outcomes_keep_request_order(self, flow, socs):
        requests = [
            BuildRequest(config=socs[name], strategy_override=strategy)
            for name in ("soc_b", "soc_a")
            for strategy in (ImplementationStrategy.SERIAL, None)
        ]
        outcomes = BatchBuilder(flow=flow).build_many(requests)
        assert [o.request for o in outcomes] == requests

    def test_batch_matches_serial_builds(self, flow, socs):
        requests = [BuildRequest(config=socs[name]) for name in ("soc_a", "soc_c")]
        outcomes = BatchBuilder(flow=flow).build_many(requests)
        for request, outcome in zip(requests, outcomes):
            direct = flow.build(request.config)
            assert outcome.ok
            assert outcome.result.to_summary_dict() == direct.to_summary_dict()

    def test_pool_path_matches_inline(self, flow, socs):
        """jobs=2 exercises the process pool even on a 1-core box."""
        requests = [
            BuildRequest(config=socs[name]) for name in ("soc_a", "soc_b", "soc_c")
        ]
        inline = BatchBuilder(flow=flow, jobs=1).build_many(requests)
        pooled = BatchBuilder(flow=flow, jobs=2).build_many(requests)
        for a, b in zip(inline, pooled):
            assert a.result.to_summary_dict() == b.result.to_summary_dict()

    def test_empty_batch(self, flow):
        assert BatchBuilder(flow=flow).build_many([]) == []


class TestErrorCapture:
    def test_one_bad_request_does_not_sink_the_batch(self, flow, socs):
        requests = [
            BuildRequest(config=socs["soc_a"]),
            BuildRequest(config=oversized_config()),
            BuildRequest(config=socs["soc_b"]),
        ]
        outcomes = BatchBuilder(flow=flow).build_many(requests)
        assert [o.ok for o in outcomes] == [True, False, True]
        failed = outcomes[1]
        assert failed.error is not None
        assert failed.error.kind == "FloorplanError"
        assert "rt0" in failed.error.message
        with pytest.raises(FlowError, match="chz_oversized"):
            failed.unwrap()

    def test_error_capture_through_the_pool(self, flow, socs):
        requests = [
            BuildRequest(config=oversized_config()),
            BuildRequest(config=socs["soc_a"]),
        ]
        outcomes = BatchBuilder(flow=flow, jobs=2).build_many(requests)
        assert [o.ok for o in outcomes] == [False, True]
        assert outcomes[0].error.kind == "FloorplanError"

    def test_failed_build_never_cached(self, flow, socs):
        cache = FlowCache()
        builder = BatchBuilder(flow=flow, cache=cache)
        builder.build_many([BuildRequest(config=oversized_config())])
        assert len(cache) == 0

    def test_bad_jobs_rejected(self, flow):
        with pytest.raises(FlowError):
            BatchBuilder(flow=flow, jobs=0)


class TestCacheShortCircuit:
    def test_warm_requests_skip_the_build(self, flow, socs):
        cache = FlowCache()
        builder = BatchBuilder(flow=flow, cache=cache)
        requests = [BuildRequest(config=socs[name]) for name in ("soc_a", "soc_b")]
        cold = builder.build_many(requests)
        warm = builder.build_many(requests)
        assert [o.cached for o in cold] == [False, False]
        assert [o.cached for o in warm] == [True, True]
        for a, b in zip(cold, warm):
            assert a.result.to_summary_dict() == b.result.to_summary_dict()

    def test_partial_warmth(self, flow, socs):
        cache = FlowCache()
        builder = BatchBuilder(flow=flow, cache=cache)
        builder.build_many([BuildRequest(config=socs["soc_a"])])
        outcomes = builder.build_many(
            [
                BuildRequest(config=socs["soc_a"]),
                BuildRequest(config=socs["soc_b"]),
            ]
        )
        assert [o.cached for o in outcomes] == [True, False]

    def test_metrics_report_hit_and_error_statuses(self, flow, socs):
        registry = MetricsRegistry()
        cache = FlowCache()
        builder = BatchBuilder(flow=flow, cache=cache, metrics=registry)
        requests = [
            BuildRequest(config=socs["soc_a"]),
            BuildRequest(config=oversized_config()),
        ]
        builder.build_many(requests)
        builder.build_many(requests)
        snapshot = registry.snapshot()
        assert snapshot["flow_batch_requests_total{status=built}"] == 1
        assert snapshot["flow_batch_requests_total{status=cache_hit}"] == 1
        assert snapshot["flow_batch_requests_total{status=error}"] == 2


class TestRequestLabels:
    def test_auto_label(self, socs):
        assert BuildRequest(config=socs["soc_a"]).label == "soc_a/auto"

    def test_override_label(self, socs):
        request = BuildRequest(
            config=socs["soc_a"],
            strategy_override=ImplementationStrategy.SEMI_PARALLEL,
        )
        assert request.label == "soc_a/semi-parallel"


class TestCachedBuildHelper:
    def test_without_cache(self, flow, socs):
        result, cached = cached_build(flow, None, socs["soc_a"])
        assert not cached
        assert result.to_summary_dict() == flow.build(socs["soc_a"]).to_summary_dict()

    def test_hit_then_miss_flags(self, flow, socs):
        cache = FlowCache()
        _, first = cached_build(flow, cache, socs["soc_a"])
        _, second = cached_build(flow, cache, socs["soc_a"])
        assert (first, second) == (False, True)


class TestPlatformIntegration:
    def test_platform_build_many(self, socs):
        platform = PrEspPlatform(options=BuildOptions(cache=FlowCache()))
        requests = [BuildRequest(config=socs[name]) for name in ("soc_a", "soc_b")]
        first = platform.build_many(requests)
        second = platform.build_many(requests)
        assert all(o.ok for o in first)
        assert [o.cached for o in second] == [True, True]

    def test_platform_build_reports_cache_state(self, socs):
        platform = PrEspPlatform(options=BuildOptions(cache=FlowCache()))
        cold = platform.build(socs["soc_a"])
        warm = platform.build(socs["soc_a"])
        assert (cold.cached, warm.cached) == (False, True)
        assert cold.flow.to_summary_dict() == warm.flow.to_summary_dict()

    def test_platform_without_cache_never_reports_cached(self, socs):
        platform = PrEspPlatform()
        assert not platform.build(socs["soc_a"]).cached
        assert not platform.build(socs["soc_a"]).cached
