"""Lifecycle of the persistent warm worker pool.

The pool must be lazy (serial builders never fork), persistent
(repeat batches reuse the same executor), and closeable (explicitly,
via context manager, and transitively from the platform that owns the
batch). Output equivalence between pooled and serial execution is
covered by the batch tests; these pin the pool's lifetime.
"""

import pytest

from repro.core.designs import wami_deployment_socs
from repro.core.platform import BuildOptions, PrEspPlatform
from repro.core.strategy import ImplementationStrategy
from repro.flow.batch import BatchBuilder, BuildRequest
from repro.vivado.characterization import Characterizer


@pytest.fixture(scope="module")
def requests():
    config = wami_deployment_socs()["soc_y"]
    return [
        BuildRequest(config=config, strategy_override=strategy)
        for strategy in (
            ImplementationStrategy.SERIAL,
            ImplementationStrategy.FULLY_PARALLEL,
        )
    ]


class TestBatchPoolLifecycle:
    def test_serial_builder_never_starts_a_pool(self, requests):
        batch = BatchBuilder(jobs=1)
        assert all(o.ok for o in batch.build_many(requests))
        assert not batch.pool_active

    def test_pool_is_lazy_then_persists_across_batches(self, requests):
        with BatchBuilder(jobs=2) as batch:
            assert not batch.pool_active
            assert all(o.ok for o in batch.build_many(requests))
            assert batch.pool_active
            first_pool = batch._pool
            assert all(o.ok for o in batch.build_many(requests))
            assert batch._pool is first_pool
        assert not batch.pool_active

    def test_close_is_idempotent_and_pool_restarts(self, requests):
        batch = BatchBuilder(jobs=2)
        batch.build_many(requests)
        batch.close()
        batch.close()
        assert not batch.pool_active
        # The builder stays usable: the next batch starts a fresh pool.
        assert all(o.ok for o in batch.build_many(requests))
        assert batch.pool_active
        batch.close()

    def test_single_pending_request_stays_in_process(self, requests):
        batch = BatchBuilder(jobs=2)
        assert batch.build_many(requests[:1])[0].ok
        assert not batch.pool_active


class TestPlatformOwnership:
    def test_platform_close_shuts_down_all_pools(self, requests):
        with PrEspPlatform(options=BuildOptions(jobs=2)) as platform:
            platform.build_many(requests)
            assert platform.batch.pool_active
            platform.build_many(requests, jobs=3)
            override = platform._override_batches[3]
            assert override.pool_active
        assert not platform.batch.pool_active
        assert not platform._override_batches

    def test_jobs_override_reuses_one_batch(self, requests):
        platform = PrEspPlatform(options=BuildOptions(jobs=1))
        platform.build_many(requests, jobs=2)
        override = platform._override_batches[2]
        platform.build_many(requests, jobs=2)
        assert platform._override_batches[2] is override
        platform.close()

    def test_characterizer_close(self):
        characterizer = Characterizer(jobs=2)
        with characterizer:
            config = wami_deployment_socs()["soc_y"]
            characterizer.sweep([config], max_tau=2)
        assert not characterizer.batch.pool_active
