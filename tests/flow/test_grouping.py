"""Tests for the LPT grouping used by semi-parallel scheduling."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import FlowError
from repro.flow.grouping import balanced_groups, group_weights, makespan


class TestBalancedGroups:
    def test_fewer_items_than_groups(self):
        groups = balanced_groups([5.0], 3, weight=lambda x: x)
        assert groups == [[5.0]]

    def test_zero_groups_rejected(self):
        with pytest.raises(FlowError):
            balanced_groups([1], 0, weight=lambda x: x)

    def test_lpt_textbook_case(self):
        # Classic Graham instance: LPT yields 14 (optimum is 13),
        # inside the 4/3 - 1/(3m) guarantee.
        items = [7, 6, 5, 4, 3]
        groups = balanced_groups(items, 2, weight=float)
        assert makespan(groups, float) == 14.0

    def test_groups_sorted_by_weight(self):
        groups = balanced_groups([10, 1, 1], 2, weight=float)
        weights = group_weights(groups, float)
        assert weights == sorted(weights, reverse=True)

    def test_paper_soc2_tau2_grouping(self):
        """Conv2d+Sort vs FFT+GEMM is the LPT split of SOC_2."""
        sizes = {"conv2d": 37.16, "fft": 34.11, "gemm": 31.04, "sort": 20.89}
        groups = balanced_groups(list(sizes), 2, weight=lambda n: sizes[n])
        as_sets = [set(g) for g in groups]
        assert {"fft", "gemm"} in as_sets
        assert {"conv2d", "sort"} in as_sets

    def test_makespan_empty_rejected(self):
        with pytest.raises(FlowError):
            makespan([], float)


class TestProperties:
    weights = st.lists(st.floats(min_value=0.1, max_value=100.0), min_size=1, max_size=15)

    @given(weights, st.integers(1, 6))
    def test_partition_is_exact(self, items, k):
        groups = balanced_groups(items, k, weight=float)
        flattened = sorted(x for g in groups for x in g)
        assert flattened == sorted(items)

    @given(weights, st.integers(1, 6))
    def test_group_count_bounded(self, items, k):
        groups = balanced_groups(items, k, weight=float)
        assert 1 <= len(groups) <= min(k, len(items))

    @given(weights, st.integers(1, 6))
    def test_list_scheduling_bound(self, items, k):
        """Graham's bound: any list schedule's makespan is at most
        total/k + longest item (so at most twice the trivial lower
        bound max(longest, total/k))."""
        groups = balanced_groups(items, k, weight=float)
        assert makespan(groups, float) <= sum(items) / k + max(items) + 1e-9

    @given(weights)
    def test_one_group_is_everything(self, items):
        groups = balanced_groups(items, 1, weight=float)
        assert len(groups) == 1
        assert makespan(groups, float) == pytest.approx(sum(items))
