"""Tests for fault-tolerant, resumable flow builds.

Covers the acceptance properties of the fault-tolerance layer: same
seed reproduces the same retry timeline and summary, backoffs respect
the policy bound, a permanently failed RP degrades the build instead of
aborting it (with valid full + blanking bitstreams), and an interrupted
checkpointed build resumed with ``resume=True`` matches the
uninterrupted one bit for bit.
"""

import pytest

from repro.core.strategy import ImplementationStrategy
from repro.errors import FlowError
from repro.flow.dpr_flow import DprFlow
from repro.obs.events import (
    CAD_JOB_FAILED,
    CAD_JOB_RETRIED,
    EventBus,
    FLOW_CHECKPOINT_SAVED,
    FLOW_DEGRADED,
    FLOW_STAGE_RESUMED,
)
from repro.soc.config import SocConfig
from repro.soc.esp_library import stock_accelerator
from repro.soc.tiles import ReconfigurableTile, Tile, TileKind
from repro.vivado.bitstream import BitstreamKind
from repro.vivado.faults import CadFaultError, CadFaultModel, RetryPolicy
from repro.vivado.runtime_model import JobKind

ALL_RATES = {kind: 0.5 for kind in JobKind}


@pytest.fixture
def duo_soc() -> SocConfig:
    """A 2x3 SoC with two reconfigurable tiles."""
    return SocConfig.assemble(
        name="duo",
        board="vc707",
        rows=2,
        cols=3,
        tiles=[
            Tile(kind=TileKind.CPU, name="cpu0"),
            Tile(kind=TileKind.MEM, name="mem0"),
            Tile(kind=TileKind.AUX, name="aux0"),
            ReconfigurableTile(
                name="rt0",
                modes=[stock_accelerator("fft"), stock_accelerator("gemm")],
            ),
            ReconfigurableTile(name="rt1", modes=[stock_accelerator("conv2d")]),
        ],
    )


def flow_with_injection(stage: str, job: str, count: int = 3) -> DprFlow:
    """A flow whose fault model permanently fails one targeted job."""
    faults = CadFaultModel()
    faults.inject_fault(stage, job, count=count)
    return DprFlow(faults=faults)


class TestDeterminism:
    def test_same_seed_same_retry_timeline_and_summary(self, duo_soc):
        results = [
            DprFlow(faults=CadFaultModel(seed=0, rates=ALL_RATES)).build(duo_soc)
            for _ in range(2)
        ]
        assert results[0].to_summary_dict() == results[1].to_summary_dict()
        assert results[0].executions == results[1].executions
        # The 0.5 rate must actually exercise the retry path.
        assert results[0].total_retries > 0

    def test_fault_free_flow_reports_no_retries(self, duo_soc):
        result = DprFlow().build(duo_soc)
        assert result.total_retries == 0
        assert result.degraded is False
        assert result.failures == ()
        summary = result.to_summary_dict()["fault_tolerance"]
        assert summary["degraded"] is False
        assert summary["retries"] == 0

    def test_retries_reshape_the_makespan(self, duo_soc):
        healthy = DprFlow().build(duo_soc)
        faults = CadFaultModel()
        faults.inject_fault("synthesis", "synth_rt0", count=1)
        retried = DprFlow(faults=faults).build(duo_soc)
        assert retried.total_retries == 1
        assert retried.total_minutes > healthy.total_minutes


class TestBackoffBound:
    def test_every_backoff_within_policy_cap(self, duo_soc):
        policy = RetryPolicy(
            max_attempts=4, backoff_minutes=2.0, factor=3.0,
            cap_minutes=5.0, jitter=0.25,
        )
        flow = DprFlow(
            faults=CadFaultModel(seed=1, rates=ALL_RATES), retry=policy
        )
        result = flow.build(duo_soc)
        attempts = [
            attempt
            for execution in result.executions.values()
            for attempt in execution.attempts
        ]
        assert any(a.backoff_minutes > 0 for a in attempts)
        assert all(
            a.backoff_minutes <= policy.max_backoff_minutes for a in attempts
        )


class TestDegradation:
    def test_dark_synth_rp_degrades_with_blanking_bitstream(self, duo_soc):
        result = flow_with_injection("synthesis", "synth_rt0").build(duo_soc)
        assert result.degraded is True
        assert result.dark_rps == ("rt0",)
        failure = result.failures[0]
        assert (failure.stage, failure.job) == ("synthesis", "synth_rt0")
        assert failure.rp_names == ("rt0",)
        assert failure.attempts == 3
        assert failure.minutes_burned > 0
        # One valid full bitstream, blanking-only for the dark tile.
        fulls = [b for b in result.bitstreams if b.kind is BitstreamKind.FULL]
        assert len(fulls) == 1
        rt0 = [b for b in result.bitstreams if b.target_rp == "rt0"]
        assert [b.mode for b in rt0] == ["blank"]
        rt1_modes = {b.mode for b in result.bitstreams if b.target_rp == "rt1"}
        assert "conv2d" in rt1_modes and "blank" in rt1_modes

    def test_summary_dict_carries_the_failure(self, duo_soc):
        result = flow_with_injection("synthesis", "synth_rt0").build(duo_soc)
        section = result.to_summary_dict()["fault_tolerance"]
        assert section["degraded"] is True
        assert section["dark_rps"] == ["rt0"]
        assert section["failures"][0]["job"] == "synth_rt0"

    def test_static_synthesis_failure_aborts(self, duo_soc):
        with pytest.raises(CadFaultError, match="synth_static"):
            flow_with_injection("synthesis", "synth_static").build(duo_soc)

    def test_context_run_failure_darkens_its_group(self, duo_soc):
        flow = flow_with_injection("implementation", "impl_ctx_1")
        result = flow.build(
            duo_soc, strategy_override=ImplementationStrategy.FULLY_PARALLEL
        )
        assert result.degraded is True
        assert result.dark_rps == ("rt1",)  # impl_ctx_1 implements rt1
        assert "impl_ctx_1" not in result.omega_minutes
        dark = [b for b in result.bitstreams if b.target_rp == "rt1"]
        assert [b.mode for b in dark] == ["blank"]

    def test_serial_run_failure_aborts(self, duo_soc):
        flow = flow_with_injection("implementation", "impl_serial")
        with pytest.raises(CadFaultError, match="impl_serial"):
            flow.build(
                duo_soc, strategy_override=ImplementationStrategy.SERIAL
            )

    def test_all_rps_dark_aborts(self, duo_soc):
        faults = CadFaultModel()
        faults.inject_fault("synthesis", "synth_rt0", count=3)
        faults.inject_fault("synthesis", "synth_rt1", count=3)
        with pytest.raises(FlowError, match="excluded"):
            DprFlow(faults=faults).build(duo_soc)

    def test_events_narrate_retries_failures_and_degradation(self, duo_soc):
        faults = CadFaultModel()
        faults.inject_fault("synthesis", "synth_rt0", count=3)
        faults.inject_fault("synthesis", "synth_rt1", count=1)
        bus = EventBus()
        flow_result = DprFlow(faults=faults).build(duo_soc, events=bus)
        kinds = [event.kind for event in bus.events()]
        assert CAD_JOB_RETRIED in kinds
        assert CAD_JOB_FAILED in kinds
        assert kinds.count(FLOW_DEGRADED) == 1
        assert flow_result.degraded is True


class TestCheckpointResume:
    def test_resume_reproduces_the_summary(self, duo_soc, tmp_path):
        flow = DprFlow()
        first = flow.build(duo_soc, checkpoint_dir=tmp_path / "ckpt")
        resumed = flow.build(
            duo_soc, checkpoint_dir=tmp_path / "ckpt", resume=True
        )
        assert resumed.resumed_stages == tuple(s.stage for s in first.stages)
        assert resumed.to_summary_dict() == first.to_summary_dict()

    def test_interrupted_build_resumes_to_identical_summary(
        self, duo_soc, tmp_path, monkeypatch
    ):
        baseline = DprFlow().build(duo_soc)
        flow = DprFlow()

        def crash(*args, **kwargs):
            raise KeyboardInterrupt("killed mid-flow")

        monkeypatch.setattr(flow, "_implement", crash)
        with pytest.raises(KeyboardInterrupt):
            flow.build(duo_soc, checkpoint_dir=tmp_path / "ckpt")
        monkeypatch.undo()

        resumed = flow.build(
            duo_soc, checkpoint_dir=tmp_path / "ckpt", resume=True
        )
        assert "synthesis" in resumed.resumed_stages
        assert "implementation" not in resumed.resumed_stages
        assert resumed.to_summary_dict() == baseline.to_summary_dict()

    def test_resume_ignores_checkpoints_of_a_different_build(
        self, duo_soc, tmp_path
    ):
        DprFlow().build(duo_soc, checkpoint_dir=tmp_path / "ckpt")
        other = DprFlow(faults=CadFaultModel(seed=9, rates=ALL_RATES))
        resumed = other.build(
            duo_soc, checkpoint_dir=tmp_path / "ckpt", resume=True
        )
        assert resumed.resumed_stages == ()

    def test_fresh_build_clears_stale_checkpoints(self, duo_soc, tmp_path):
        flow = DprFlow()
        flow.build(duo_soc, checkpoint_dir=tmp_path / "ckpt")
        again = flow.build(duo_soc, checkpoint_dir=tmp_path / "ckpt")
        assert again.resumed_stages == ()

    def test_degraded_build_survives_resume(self, duo_soc, tmp_path):
        flow = flow_with_injection("synthesis", "synth_rt0")
        first = flow.build(duo_soc, checkpoint_dir=tmp_path / "ckpt")
        resumed = flow.build(
            duo_soc, checkpoint_dir=tmp_path / "ckpt", resume=True
        )
        assert resumed.degraded is True
        assert resumed.dark_rps == ("rt0",)
        assert resumed.to_summary_dict() == first.to_summary_dict()

    def test_resume_emits_stage_resumed_events(self, duo_soc, tmp_path):
        flow = DprFlow()
        flow.build(duo_soc, checkpoint_dir=tmp_path / "ckpt")
        bus = EventBus()
        flow.build(
            duo_soc, checkpoint_dir=tmp_path / "ckpt", resume=True, events=bus
        )
        kinds = [event.kind for event in bus.events()]
        assert FLOW_STAGE_RESUMED in kinds
        assert FLOW_CHECKPOINT_SAVED not in kinds
