"""Tests for black-box wrapper generation."""

from repro.flow.blackbox import WRAPPER_PORTS, generate_blackboxes
from repro.soc.partition import partition_design


class TestGeneration:
    def test_one_wrapper_per_rp(self, soc2):
        partition = partition_design(soc2)
        boxes = generate_blackboxes(partition)
        assert len(boxes) == partition.num_rps
        assert {b.rp_name for b in boxes} == {rp.name for rp in partition.rps}

    def test_module_names_match_rtl(self, soc2):
        partition = partition_design(soc2)
        for box in generate_blackboxes(partition):
            assert partition.rtl.find(box.module_name) is not None


class TestVerilogStub:
    def test_stub_declares_all_ports(self, soc2):
        partition = partition_design(soc2)
        stub = generate_blackboxes(partition)[0].verilog_stub()
        for name, _direction, _width in WRAPPER_PORTS:
            assert name in stub

    def test_stub_is_empty_module(self, soc2):
        partition = partition_design(soc2)
        stub = generate_blackboxes(partition)[0].verilog_stub()
        assert stub.startswith("module ")
        assert stub.endswith("endmodule")
        assert "black box" in stub

    def test_interface_has_dma_reg_irq(self):
        """The Sec. III wrapper interface: load/store ports, register
        access, completion interrupt."""
        names = {name for name, _d, _w in WRAPPER_PORTS}
        assert {"dma_read_ctrl", "dma_write_chnl", "apb_req", "acc_done_irq"} <= names
