"""Tests for the auto-generated tool scripts."""

from repro.flow.scripts import ImplementationScript, SynthesisScript


class TestSynthesisScript:
    def test_ooc_script(self):
        script = SynthesisScript(
            design="soc", unit="rt0_wrapper", part="xc7vx485t", ooc=True
        )
        text = script.render()
        assert "create_project -in_memory -part xc7vx485t" in text
        assert "synth_design -top rt0_wrapper -mode out_of_context" in text
        assert "write_checkpoint" in text

    def test_global_script_has_no_ooc_flag(self):
        script = SynthesisScript(design="soc", unit="top", part="xc7vx485t", ooc=False)
        assert "out_of_context" not in script.render()

    def test_black_boxes_commented(self):
        script = SynthesisScript(
            design="soc",
            unit="top",
            part="xc7vx485t",
            black_boxes=("rt0_wrapper", "rt1_wrapper"),
        )
        text = script.render()
        assert "rt0_wrapper resolved as black box" in text
        assert "rt1_wrapper resolved as black box" in text


class TestImplementationScript:
    def test_static_script_locks_routing(self):
        script = ImplementationScript(
            design="soc",
            part="xc7vx485t",
            run_name="impl_static",
            static_checkpoint="checkpoints/static_synth.dcp",
            pblock_constraints=("create_pblock p0;",),
            lock_static=True,
            write_partials=False,
        )
        text = script.render()
        assert "lock_design -level routing" in text
        assert "create_pblock p0;" in text
        assert "route_design" in text

    def test_context_script_reads_rp_checkpoints(self):
        script = ImplementationScript(
            design="soc",
            part="xc7vx485t",
            run_name="impl_ctx_0",
            static_checkpoint="checkpoints/static_routed.dcp",
            rp_checkpoints=("checkpoints/rt0_synth.dcp",),
        )
        text = script.render()
        assert "read_checkpoint -cell" in text
        assert "write_bitstream" in text
        assert "lock_design" not in text
