"""Tests for incremental tile recompilation."""

import pytest

from repro.errors import FlowError
from repro.flow.dpr_flow import DprFlow
from repro.flow.incremental import IncrementalFlow, rebuild_tiles
from repro.soc.esp_library import stock_accelerator


@pytest.fixture(scope="module")
def base_result():
    from repro.core.designs import soc_2

    return DprFlow().build(soc_2())


class TestRebuild:
    def test_single_tile_rebuild_is_much_faster(self, base_result):
        result = rebuild_tiles(base_result, ["rt_sort"])
        assert result.makespan_minutes < base_result.total_minutes / 2
        assert result.speedup > 2.0

    def test_rebuild_produces_fresh_bitstreams(self, base_result):
        result = rebuild_tiles(base_result, ["rt_sort"])
        modes = {(b.target_rp, b.mode) for b in result.bitstreams}
        assert ("rt_sort", "sort") in modes
        assert ("rt_sort", "blank") in modes

    def test_multi_tile_rebuild_parallelizes(self, base_result):
        result = rebuild_tiles(base_result, ["rt_sort", "rt_gemm"])
        # With two instances available the makespan is the slower tile,
        # not the sum.
        assert result.makespan_minutes < sum(result.tile_minutes.values())
        assert result.makespan_minutes == pytest.approx(
            max(result.tile_minutes.values())
        )

    def test_mode_replacement_within_pblock(self, base_result):
        # Swap sort's (20.5k) contents for the smaller MAC (2.4k): fits.
        result = rebuild_tiles(
            base_result,
            ["rt_sort"],
            new_modes={"rt_sort": [stock_accelerator("mac")]},
        )
        modes = {(b.target_rp, b.mode) for b in result.bitstreams}
        assert ("rt_sort", "mac") in modes

    def test_oversized_replacement_demands_full_rebuild(self, base_result):
        # The sort tile's pblock cannot host conv2d (36.7k vs ~30k region).
        with pytest.raises(FlowError, match="full rebuild"):
            rebuild_tiles(
                base_result,
                ["rt_sort"],
                new_modes={"rt_sort": [stock_accelerator("conv2d")]},
            )

    def test_unknown_tile_rejected(self, base_result):
        with pytest.raises(FlowError, match="unknown"):
            rebuild_tiles(base_result, ["rt_ghost"])

    def test_empty_change_set_rejected(self, base_result):
        with pytest.raises(FlowError):
            rebuild_tiles(base_result, [])

    def test_duplicate_tiles_rejected(self, base_result):
        with pytest.raises(FlowError, match="unique"):
            rebuild_tiles(base_result, ["rt_sort", "rt_sort"])

    def test_modes_for_unchanged_tile_rejected(self, base_result):
        with pytest.raises(FlowError, match="unchanged"):
            rebuild_tiles(
                base_result,
                ["rt_sort"],
                new_modes={"rt_gemm": [stock_accelerator("mac")]},
            )

    def test_serial_instance_cap(self, base_result):
        flow = IncrementalFlow(max_instances=1)
        result = flow.rebuild(base_result, ["rt_sort", "rt_gemm"])
        assert result.makespan_minutes == pytest.approx(
            sum(result.tile_minutes.values())
        )
