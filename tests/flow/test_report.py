"""Tests for the human-readable flow reports."""

import pytest

from repro.flow.dpr_flow import DprFlow
from repro.flow.monolithic import MonolithicFlow
from repro.flow.report import comparison_report, flow_report


@pytest.fixture(scope="module")
def result():
    from repro.core.designs import soc_2

    return DprFlow().build(soc_2())


class TestFlowReport:
    def test_contains_headline_sections(self, result):
        text = flow_report(result)
        for token in ("PR-ESP flow report", "stages:", "floorplan:", "bitstreams:"):
            assert token in text

    def test_mentions_strategy_and_class(self, result):
        text = flow_report(result)
        assert "fully-parallel" in text
        assert "class=1.2" in text

    def test_lists_every_bitstream(self, result):
        text = flow_report(result)
        for bitstream in result.bitstreams:
            assert bitstream.name in text

    def test_lists_every_stage(self, result):
        text = flow_report(result)
        for stage in result.stages:
            assert stage.stage in text


class TestComparisonReport:
    def test_reports_improvement(self, result):
        from repro.core.designs import soc_2

        mono = MonolithicFlow().build(soc_2())
        text = comparison_report(result, mono)
        assert "PR-ESP vs monolithic" in text
        assert "improvement" in text
        assert "%" in text
