"""Failure-injection tests: PRC transfer errors and manager recovery."""

import pytest

from repro.errors import ReconfigurationError
from repro.noc.mesh import Mesh
from repro.runtime.driver import AcceleratorDriver, DriverRegistry
from repro.runtime.manager import ReconfigurationManager
from repro.runtime.memory import BitstreamStore
from repro.runtime.faults import (
    NO_RUNTIME_FAULTS,
    RuntimeFaultKind,
    RuntimeFaultModel,
)
from repro.runtime.prc import PrcDevice
from repro.vivado.bitstream import Bitstream, BitstreamKind


def inject(prc, tile, mode, count=1):
    """Arm CRC failures the supported way (the old shim is gone)."""
    if prc.faults is NO_RUNTIME_FAULTS:
        prc.faults = RuntimeFaultModel()
    prc.faults.inject(
        tile, mode, RuntimeFaultKind.BITSTREAM_CORRUPTION, count=count
    )


def make_stack(sim):
    mesh = Mesh(3, 3, clock_hz=78e6)
    prc = PrcDevice(sim, mesh, mem_position=(0, 1), aux_position=(0, 2))
    store = BitstreamStore()
    registry = DriverRegistry()
    for mode in ("fft", "gemm"):
        registry.install(AcceleratorDriver(accelerator=mode, exec_time_s=0.01))
        store.load(
            Bitstream(
                name=f"rt0_{mode}.pbs",
                kind=BitstreamKind.PARTIAL,
                size_bytes=250_000,
                compressed=True,
                target_rp="rt0",
                mode=mode,
            ),
            "rt0",
        )
    manager = ReconfigurationManager(sim, prc, store, registry)
    manager.attach_tile("rt0")
    return manager, prc


class TestPrcInjection:
    def test_injected_failure_fails_transfer(self, sim):
        manager, prc = make_stack(sim)
        inject(prc, "rt0", "fft")
        # Direct PRC use: the transfer process fails.
        proc = prc.reconfigure("rt0", "fft", 250_000)
        sim.run()
        assert isinstance(proc.exception, ReconfigurationError)
        assert prc.failed_transfers == 1

    def test_failure_count_must_be_positive(self, sim):
        _, prc = make_stack(sim)
        with pytest.raises(ReconfigurationError):
            prc.faults.inject("rt0", "fft", count=0)

    def test_removed_shim_raises_type_error(self, sim):
        _, prc = make_stack(sim)
        with pytest.raises(TypeError, match="inject_failure was removed"):
            prc.inject_failure("rt0", "fft")

    def test_failures_are_consumed(self, sim):
        manager, prc = make_stack(sim)
        inject(prc, "rt0", "fft", count=1)
        first = prc.reconfigure("rt0", "fft", 250_000)
        second = prc.reconfigure("rt0", "fft", 250_000)
        sim.run()
        assert first.exception is not None
        assert second.exception is None

    def test_icap_lock_released_after_failure(self, sim):
        _, prc = make_stack(sim)
        inject(prc, "rt0", "fft")
        prc.reconfigure("rt0", "fft", 250_000)
        sim.run()
        assert not prc.busy


class TestManagerRecovery:
    def test_single_failure_is_retried_transparently(self, sim):
        manager, prc = make_stack(sim)
        inject(prc, "rt0", "fft", count=1)
        proc = manager.invoke("rt0", "fft")
        sim.run()
        record = proc.value  # succeeded despite the failed first attempt
        assert record.mode_name == "fft"
        assert manager.failed_attempts == 1
        assert manager.tile("rt0").loaded_mode == "fft"
        # The retry paid a second transfer window.
        assert record.reconfig_s > 1.5 * prc.transfer_seconds(250_000)

    def test_double_failure_propagates_and_leaves_tile_dark(self, sim):
        manager, prc = make_stack(sim)
        inject(prc, "rt0", "fft", count=2)
        proc = manager.invoke("rt0", "fft")
        sim.run()
        assert isinstance(proc.exception, ReconfigurationError)
        state = manager.tile("rt0")
        assert state.loaded_mode is None
        assert state.decoupler.queues_enabled  # tile cannot wedge the NoC
        assert manager.registry.active_on("rt0") is None

    def test_tile_remains_usable_after_hard_failure(self, sim):
        manager, prc = make_stack(sim)
        inject(prc, "rt0", "fft", count=2)
        failed = manager.invoke("rt0", "fft")
        recovered = manager.invoke("rt0", "gemm")
        sim.run()
        assert failed.exception is not None
        assert recovered.value.mode_name == "gemm"
        assert manager.tile("rt0").loaded_mode == "gemm"

    def test_lock_released_after_hard_failure(self, sim):
        manager, prc = make_stack(sim)
        inject(prc, "rt0", "fft", count=2)
        manager.invoke("rt0", "fft")
        sim.run()
        assert not manager.tile("rt0").lock.locked


class TestBlanking:
    def load_blank(self, manager):
        manager.store.load(
            Bitstream(
                name="rt0_blank.pbs",
                kind=BitstreamKind.PARTIAL,
                size_bytes=80_000,
                compressed=True,
                target_rp="rt0",
                mode="blank",
            ),
            "rt0",
        )

    def test_blank_clears_tile(self, sim):
        manager, _ = make_stack(sim)
        self.load_blank(manager)
        manager.invoke("rt0", "fft")
        proc = manager.blank_tile("rt0")
        sim.run()
        assert proc.value == "blank"
        assert manager.tile("rt0").loaded_mode is None
        assert manager.registry.active_on("rt0") is None

    def test_blank_idempotent_on_dark_tile(self, sim):
        manager, _ = make_stack(sim)
        self.load_blank(manager)
        proc = manager.blank_tile("rt0")
        sim.run()
        assert proc.value is None  # already dark: no transfer
        assert manager.total_reconfigurations() == 0

    def test_invoke_after_blank_reconfigures(self, sim):
        manager, _ = make_stack(sim)
        self.load_blank(manager)
        manager.invoke("rt0", "fft")
        manager.blank_tile("rt0")
        proc = manager.invoke("rt0", "fft")
        sim.run()
        assert proc.value.reconfig_s > 0

    def test_blank_without_image_fails(self, sim):
        manager, _ = make_stack(sim)
        manager.invoke("rt0", "fft")
        proc = manager.blank_tile("rt0")
        sim.run()
        assert isinstance(proc.exception, ReconfigurationError)
