"""Tests for the runtime reconfiguration manager protocol."""

import pytest

from repro.errors import ReconfigurationError
from repro.noc.mesh import Mesh
from repro.runtime.driver import AcceleratorDriver, DriverRegistry
from repro.runtime.manager import ReconfigurationManager
from repro.runtime.memory import BitstreamStore
from repro.runtime.prc import PrcDevice
from repro.vivado.bitstream import Bitstream, BitstreamKind


def partial(mode, rp="rt0", size=300_000):
    return Bitstream(
        name=f"{rp}_{mode}.pbs",
        kind=BitstreamKind.PARTIAL,
        size_bytes=size,
        compressed=True,
        target_rp=rp,
        mode=mode,
    )


@pytest.fixture
def manager(sim):
    mesh = Mesh(3, 3, clock_hz=78e6)
    prc = PrcDevice(sim, mesh, mem_position=(0, 1), aux_position=(0, 2))
    store = BitstreamStore()
    registry = DriverRegistry()
    for mode in ("fft", "gemm", "sort"):
        registry.install(AcceleratorDriver(accelerator=mode, exec_time_s=0.010))
        store.load(partial(mode), "rt0")
        store.load(partial(mode, rp="rt1"), "rt1")
    mgr = ReconfigurationManager(sim, prc, store, registry)
    mgr.attach_tile("rt0")
    mgr.attach_tile("rt1")
    return mgr


class TestInvocation:
    def test_first_invoke_reconfigures(self, manager, sim):
        proc = manager.invoke("rt0", "fft")
        sim.run()
        record = proc.value
        assert record.reconfig_s > 0
        assert record.exec_time_s == pytest.approx(0.010)
        assert manager.tile("rt0").loaded_mode == "fft"

    def test_repeat_invoke_skips_reconfiguration(self, manager, sim):
        manager.invoke("rt0", "fft")
        second = manager.invoke("rt0", "fft")
        sim.run()
        assert second.value.reconfig_s == 0.0
        assert manager.tile("rt0").reconfigurations == 1

    def test_mode_switch_reconfigures_again(self, manager, sim):
        manager.invoke("rt0", "fft")
        switch = manager.invoke("rt0", "gemm")
        sim.run()
        assert switch.value.reconfig_s > 0
        assert manager.tile("rt0").loaded_mode == "gemm"
        assert manager.total_reconfigurations() == 2

    def test_unattached_tile_rejected(self, manager):
        with pytest.raises(ReconfigurationError):
            manager.invoke("ghost", "fft")

    def test_missing_driver_rejected(self, manager):
        with pytest.raises(Exception):
            manager.invoke("rt0", "not_installed")

    def test_custom_exec_time(self, manager, sim):
        proc = manager.invoke("rt0", "fft", exec_time_s=0.5)
        sim.run()
        assert proc.value.exec_time_s == pytest.approx(0.5)


class TestLockingProtocol:
    def test_caller_waits_for_running_accelerator(self, manager, sim):
        """The paper: before queueing, the caller waits for the tile's
        current execution; during reconfiguration others block."""
        first = manager.invoke("rt0", "fft", exec_time_s=1.0)
        second = manager.invoke("rt0", "gemm", exec_time_s=0.1)
        sim.run()
        r1, r2 = first.value, second.value
        # Second starts its reconfiguration only after the first's
        # execution ends.
        assert r2.start_exec_s - r2.reconfig_s >= r1.end_exec_s

    def test_fifo_order_per_tile(self, manager, sim):
        procs = [manager.invoke("rt0", "fft", exec_time_s=0.01) for _ in range(4)]
        sim.run()
        starts = [p.value.start_exec_s for p in procs]
        assert starts == sorted(starts)

    def test_independent_tiles_proceed_in_parallel(self, manager, sim):
        a = manager.invoke("rt0", "fft", exec_time_s=1.0)
        b = manager.invoke("rt1", "gemm", exec_time_s=1.0)
        sim.run()
        # Executions overlap (reconfigurations serialize on the ICAP,
        # executions do not).
        ra, rb = a.value, b.value
        assert ra.start_exec_s < rb.end_exec_s
        assert rb.start_exec_s < ra.end_exec_s

    def test_decoupler_recoupled_after_reconfig(self, manager, sim):
        manager.invoke("rt0", "fft")
        sim.run()
        state = manager.tile("rt0")
        assert state.decoupler.queues_enabled
        assert state.decoupler.cycles == 1

    def test_driver_swapped(self, manager, sim):
        manager.invoke("rt0", "fft")
        sim.run()
        assert manager.registry.active_on("rt0").accelerator == "fft"


class TestPreload:
    def test_preload_reconfigures_without_exec(self, manager, sim):
        proc = manager.preload("rt0", "sort")
        sim.run()
        assert proc.value == "sort"
        assert manager.tile("rt0").loaded_mode == "sort"
        assert manager.invocations == []

    def test_preload_noop_when_loaded(self, manager, sim):
        manager.preload("rt0", "sort")
        sim.run()
        before = manager.total_reconfigurations()
        manager.preload("rt0", "sort")
        sim.run()
        assert manager.total_reconfigurations() == before


class TestTelemetry:
    def test_overhead_accounting(self, manager, sim):
        manager.invoke("rt0", "fft")
        manager.invoke("rt0", "gemm")
        sim.run()
        assert manager.reconfiguration_overhead_s() == pytest.approx(
            sum(r.reconfig_s for r in manager.invocations)
        )

    def test_double_attach_rejected(self, manager):
        with pytest.raises(ReconfigurationError):
            manager.attach_tile("rt0")
