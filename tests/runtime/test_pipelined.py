"""Tests for pipelined multi-frame execution."""

import pytest

from repro.errors import ConfigurationError
from repro.runtime.executor import AppExecutor, StageTask
from tests.runtime.test_executor import build_runtime


class TestPipelined:
    def test_pipelined_timeline_has_all_instances(self, sim):
        api, _ = build_runtime(sim)
        tasks = [
            StageTask("t1", 0.01, "rt0", "a"),
            StageTask("t2", 0.01, "rt1", "b", deps=("t1",)),
        ]
        timeline = AppExecutor(sim, api, tasks).run(frames=3, pipelined=True)
        names = {e.task for e in timeline.spans("exec")}
        assert names == {f"f{k}:{t}" for k in range(3) for t in ("t1", "t2")}

    def test_pipelined_overlaps_frames(self, sim):
        """Frame 1's first stage may start before frame 0 fully ends."""
        api, _ = build_runtime(sim)
        tasks = [
            StageTask("head", 0.01, "rt0", "a"),
            StageTask("tail", 0.20, "rt1", "b", deps=("head",)),
        ]
        timeline = AppExecutor(sim, api, tasks).run(frames=2, pipelined=True)
        spans = {e.task: e for e in timeline.spans("exec")}
        assert spans["f1:head"].start_s < spans["f0:tail"].end_s

    def test_pipelined_never_slower_than_sequential(self, sim):
        from repro.sim.kernel import Simulator

        tasks = [
            StageTask("head", 0.01, "rt0", "a"),
            StageTask("tail", 0.20, "rt1", "b", deps=("head",)),
        ]

        def run(pipelined):
            local_sim = Simulator()
            api, _ = build_runtime(local_sim)
            executor = AppExecutor(local_sim, api, tasks)
            return executor.run(frames=4, pipelined=pipelined).makespan_s

        assert run(True) <= run(False) + 1e-9

    def test_same_stage_frame_order_preserved(self, sim):
        """Frame k's instance of a stage never starts before frame k-1's
        instance of the same stage finished (state dependency)."""
        api, _ = build_runtime(sim)
        tasks = [
            StageTask("t1", 0.02, "rt0", "a"),
            StageTask("t2", 0.02, "rt1", "b", deps=("t1",)),
        ]
        timeline = AppExecutor(sim, api, tasks).run(frames=3, pipelined=True)
        spans = {e.task: e for e in timeline.spans("exec")}
        for stage in ("t1", "t2"):
            for frame in (1, 2):
                assert (
                    spans[f"f{frame}:{stage}"].start_s
                    >= spans[f"f{frame - 1}:{stage}"].end_s - 1e-12
                )

    def test_pipelined_with_power_gating_rejected(self, sim):
        api, _ = build_runtime(sim)
        executor = AppExecutor(
            sim, api, [StageTask("t", 0.01, "rt0", "a")], blank_after_frame=True
        )
        with pytest.raises(ConfigurationError, match="exclusive"):
            executor.run(frames=2, pipelined=True)

    def test_platform_pipelined_deploy(self):
        from repro.core.designs import wami_soc_x
        from repro.core.platform import PrEspPlatform

        platform = PrEspPlatform()
        config = wami_soc_x()
        flow_result = platform.flow.build(config)
        sequential = platform.deploy_wami(config, flow_result=flow_result, frames=4)
        pipelined = platform.deploy_wami(
            config, flow_result=flow_result, frames=4, pipelined=True
        )
        assert pipelined.seconds_per_frame <= sequential.seconds_per_frame
        # Energy accounting still resolves modes despite frame prefixes.
        assert pipelined.energy.dynamic_j > 0
