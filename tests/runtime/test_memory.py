"""Tests for the bitstream store."""

import pytest

from repro.errors import ReconfigurationError
from repro.runtime.memory import BitstreamStore
from repro.vivado.bitstream import Bitstream, BitstreamKind


def partial(mode="fft", rp="rt0", size=256 * 1024):
    return Bitstream(
        name=f"{rp}_{mode}.pbs",
        kind=BitstreamKind.PARTIAL,
        size_bytes=size,
        compressed=True,
        target_rp=rp,
        mode=mode,
    )


def full():
    return Bitstream(
        name="soc.bit", kind=BitstreamKind.FULL, size_bytes=19 * 2**20, compressed=False
    )


class TestLoading:
    def test_load_assigns_page_aligned_addresses(self):
        store = BitstreamStore()
        a = store.load(partial("fft"), "rt0")
        b = store.load(partial("gemm"), "rt0")
        assert a.physical_address % 0x1000 == 0
        assert b.physical_address % 0x1000 == 0
        assert b.physical_address >= a.physical_address + a.size_bytes

    def test_full_bitstream_rejected(self):
        with pytest.raises(ReconfigurationError, match="partial"):
            BitstreamStore().load(full(), "rt0")

    def test_duplicate_rejected(self):
        store = BitstreamStore()
        store.load(partial(), "rt0")
        with pytest.raises(ReconfigurationError, match="already"):
            store.load(partial(), "rt0")

    def test_same_mode_different_tiles_ok(self):
        store = BitstreamStore()
        store.load(partial(rp="rt0"), "rt0")
        store.load(partial(rp="rt1"), "rt1")
        assert len(store) == 2


class TestLookup:
    def test_lookup(self):
        store = BitstreamStore()
        loaded = store.load(partial("fft"), "rt0")
        assert store.lookup("rt0", "fft") is loaded

    def test_missing_lookup(self):
        with pytest.raises(ReconfigurationError, match="no bitstream"):
            BitstreamStore().lookup("rt0", "fft")

    def test_modes_for_tile(self):
        store = BitstreamStore()
        store.load(partial("fft"), "rt0")
        store.load(partial("gemm"), "rt0")
        store.load(partial("mac", rp="rt1"), "rt1")
        assert store.modes_for_tile("rt0") == ["fft", "gemm"]

    def test_total_bytes(self):
        store = BitstreamStore()
        store.load(partial(size=1000), "rt0")
        store.load(partial("gemm", size=2000), "rt0")
        assert store.total_bytes() == 3000


class TestFlowIntegration:
    def test_load_flow_output(self, platform, socy):
        result = platform.flow.build(socy)
        store = BitstreamStore()
        count = store.load_flow_output(result.bitstreams)
        tiles = socy.reconfigurable_tiles
        expected = sum(len(t.modes) for t in tiles) + len(tiles)  # + blanks
        assert count == expected
        tile = tiles[0]
        assert store.modes_for_tile(tile.name) == sorted(tile.mode_names())
        assert store.modes_for_tile(tile.name, include_blank=True) == sorted(
            tile.mode_names() + ["blank"]
        )
        assert store.has_image(tile.name, "blank")
