"""Tests for the baremetal DPR driver."""

import pytest

from repro.errors import ReconfigurationError
from repro.noc.mesh import Mesh
from repro.runtime.baremetal import BaremetalDriver
from repro.runtime.memory import BitstreamStore
from repro.runtime.prc import PrcDevice
from repro.vivado.bitstream import Bitstream, BitstreamKind


def make_driver(sim, poll=50e-6):
    mesh = Mesh(3, 3, clock_hz=78e6)
    prc = PrcDevice(sim, mesh, mem_position=(0, 1), aux_position=(0, 2))
    store = BitstreamStore()
    for mode in ("fft", "gemm"):
        for tile in ("rt0", "rt1"):
            store.load(
                Bitstream(
                    name=f"{tile}_{mode}.pbs",
                    kind=BitstreamKind.PARTIAL,
                    size_bytes=250_000,
                    compressed=True,
                    target_rp=tile,
                    mode=mode,
                ),
                tile,
            )
    driver = BaremetalDriver(
        sim, prc, store, exec_times={"fft": 0.010, "gemm": 0.020}, poll_period_s=poll
    )
    driver.attach_tile("rt0")
    driver.attach_tile("rt1")
    return driver, prc


class TestBasics:
    def test_run_reconfigures_and_executes(self, sim):
        driver, _ = make_driver(sim)
        proc = driver.run("rt0", "fft")
        sim.run()
        record = proc.value
        assert record.reconfig_s > 0
        assert record.exec_time_s == pytest.approx(0.010)
        assert driver.loaded_mode("rt0") == "fft"

    def test_warm_run_skips_reconfiguration(self, sim):
        driver, prc = make_driver(sim)
        driver.run("rt0", "fft")
        sim.run()
        proc = driver.run("rt0", "fft")
        sim.run()
        assert proc.value.reconfig_s == 0.0
        assert len(prc.records) == 1

    def test_poll_overhead_charged(self, sim):
        driver, _ = make_driver(sim, poll=1e-3)
        proc = driver.run("rt0", "fft")
        sim.run()
        # One poll for reconfig DONE + one for accelerator completion.
        assert proc.value.poll_overhead_s == pytest.approx(2e-3)
        assert driver.total_poll_overhead_s() == pytest.approx(2e-3)

    def test_unattached_tile_rejected(self, sim):
        driver, _ = make_driver(sim)
        with pytest.raises(ReconfigurationError):
            driver.run("ghost", "fft")

    def test_unknown_mode_rejected(self, sim):
        driver, _ = make_driver(sim)
        with pytest.raises(ReconfigurationError):
            driver.run("rt0", "sort")

    def test_bad_poll_period_rejected(self, sim):
        with pytest.raises(ReconfigurationError):
            make_driver(sim, poll=0.0)


class TestSingleThreadedModel:
    def test_concurrent_run_rejected(self, sim):
        driver, _ = make_driver(sim)
        a = driver.run("rt0", "fft")
        b = driver.run("rt1", "gemm")  # starts while a is in flight
        sim.run()
        outcomes = sorted(
            (p.exception is None) for p in (a, b)
        )
        assert outcomes == [False, True]  # exactly one succeeded
        failed = a if a.exception is not None else b
        assert isinstance(failed.exception, ReconfigurationError)

    def test_run_sequence_serializes(self, sim):
        driver, _ = make_driver(sim)
        proc = driver.run_sequence(
            [("rt0", "fft"), ("rt1", "gemm"), ("rt0", "gemm")]
        )
        sim.run()
        records = proc.value
        assert len(records) == 3
        for earlier, later in zip(records, records[1:]):
            assert later.start_exec_s >= earlier.end_exec_s
        # Third run switches rt0 from fft to gemm.
        assert records[2].reconfig_s > 0


class TestVsLinuxManager:
    def test_baremetal_cannot_overlap_but_manager_can(self, sim):
        """The structural difference between the two stacks: under the
        manager, independent tiles overlap execution; baremetal
        serializes everything."""
        from repro.runtime.driver import AcceleratorDriver, DriverRegistry
        from repro.runtime.manager import ReconfigurationManager
        from repro.sim.kernel import Simulator

        # Baremetal: sequential.
        bm_driver, _ = make_driver(sim)
        proc = bm_driver.run_sequence([("rt0", "fft"), ("rt1", "gemm")])
        sim.run()
        bm_span = proc.value[-1].end_exec_s

        # Linux manager on an identical platform: overlapped.
        sim2 = Simulator()
        mesh = Mesh(3, 3, clock_hz=78e6)
        prc = PrcDevice(sim2, mesh, mem_position=(0, 1), aux_position=(0, 2))
        store = BitstreamStore()
        registry = DriverRegistry()
        for mode, t in (("fft", 0.010), ("gemm", 0.020)):
            registry.install(AcceleratorDriver(accelerator=mode, exec_time_s=t))
            for tile in ("rt0", "rt1"):
                store.load(
                    Bitstream(
                        name=f"{tile}_{mode}.pbs",
                        kind=BitstreamKind.PARTIAL,
                        size_bytes=250_000,
                        compressed=True,
                        target_rp=tile,
                        mode=mode,
                    ),
                    tile,
                )
        manager = ReconfigurationManager(sim2, prc, store, registry)
        manager.attach_tile("rt0")
        manager.attach_tile("rt1")
        a = manager.invoke("rt0", "fft")
        b = manager.invoke("rt1", "gemm")
        sim2.run()
        linux_span = max(a.value.end_exec_s, b.value.end_exec_s)

        assert linux_span < bm_span
