"""Tests for the driver registry."""

import pytest

from repro.errors import DriverError
from repro.runtime.driver import AcceleratorDriver, DriverRegistry


def registry_with(*names):
    registry = DriverRegistry()
    for name in names:
        registry.install(AcceleratorDriver(accelerator=name, exec_time_s=0.01))
    return registry


class TestCatalog:
    def test_install_and_lookup(self):
        registry = registry_with("fft")
        assert registry.driver_for("fft").accelerator == "fft"

    def test_default_devname(self):
        driver = AcceleratorDriver(accelerator="fft", exec_time_s=0.01)
        assert driver.devname == "/dev/fft.0"

    def test_double_install_rejected(self):
        registry = registry_with("fft")
        with pytest.raises(DriverError, match="already installed"):
            registry.install(AcceleratorDriver(accelerator="fft", exec_time_s=0.01))

    def test_missing_driver(self):
        with pytest.raises(DriverError, match="no driver"):
            registry_with().driver_for("fft")

    def test_bad_exec_time(self):
        with pytest.raises(DriverError):
            AcceleratorDriver(accelerator="fft", exec_time_s=0.0)

    def test_catalog_sorted(self):
        registry = registry_with("sort", "fft", "gemm")
        assert registry.catalog() == ["fft", "gemm", "sort"]


class TestTileBinding:
    def test_attach_and_swap(self):
        registry = registry_with("fft", "gemm")
        registry.attach_tile("rt0")
        assert registry.active_on("rt0") is None
        registry.swap("rt0", "fft")
        assert registry.active_on("rt0").accelerator == "fft"
        registry.swap("rt0", "gemm")
        assert registry.active_on("rt0").accelerator == "gemm"

    def test_swap_counts_changes_only(self):
        registry = registry_with("fft")
        registry.attach_tile("rt0")
        registry.swap("rt0", "fft")
        registry.swap("rt0", "fft")  # no-op
        assert registry.swap_count == 1

    def test_swap_to_none_unbinds(self):
        registry = registry_with("fft")
        registry.attach_tile("rt0")
        registry.swap("rt0", "fft")
        registry.swap("rt0", None)
        assert registry.active_on("rt0") is None

    def test_swap_uninstalled_rejected(self):
        registry = registry_with("fft")
        registry.attach_tile("rt0")
        with pytest.raises(DriverError, match="no driver"):
            registry.swap("rt0", "nvdla")

    def test_unknown_tile_rejected(self):
        registry = registry_with("fft")
        with pytest.raises(DriverError, match="unknown tile"):
            registry.swap("ghost", "fft")

    def test_double_attach_rejected(self):
        registry = registry_with()
        registry.attach_tile("rt0")
        with pytest.raises(DriverError):
            registry.attach_tile("rt0")
