"""Tests for the user-space DPR API."""

import pytest

from repro.errors import ReconfigurationError
from repro.noc.mesh import Mesh
from repro.runtime.api import DprUserApi
from repro.runtime.driver import AcceleratorDriver, DriverRegistry
from repro.runtime.faults import RuntimeFaultModel
from repro.runtime.manager import ReconfigurationManager
from repro.runtime.memory import BitstreamStore
from repro.runtime.prc import PrcDevice
from repro.vivado.bitstream import Bitstream, BitstreamKind


@pytest.fixture
def api(sim):
    mesh = Mesh(2, 2, clock_hz=78e6)
    prc = PrcDevice(sim, mesh, mem_position=(0, 1), aux_position=(1, 0))
    store = BitstreamStore()
    registry = DriverRegistry()
    for mode in ("fft", "gemm"):
        registry.install(AcceleratorDriver(accelerator=mode, exec_time_s=0.01))
        store.load(
            Bitstream(
                name=f"rt0_{mode}.pbs",
                kind=BitstreamKind.PARTIAL,
                size_bytes=200_000,
                compressed=True,
                target_rp="rt0",
                mode=mode,
            ),
            "rt0",
        )
    manager = ReconfigurationManager(sim, prc, store, registry)
    manager.attach_tile("rt0")
    return DprUserApi(manager)


class TestOpen:
    def test_open_exposes_modes(self, api):
        handle = api.open_tile("rt0")
        assert handle.modes == ("fft", "gemm")

    def test_open_unknown_tile(self, api):
        with pytest.raises(ReconfigurationError):
            api.open_tile("ghost")

    def test_handle_lookup(self, api):
        api.open_tile("rt0")
        assert api.handle("rt0").tile_name == "rt0"
        with pytest.raises(ReconfigurationError, match="not open"):
            api.handle("rt1")

    def test_context_manager_closes(self, api):
        with api.open_tile("rt0") as handle:
            assert api.handle("rt0") is handle
        with pytest.raises(ReconfigurationError, match="not open"):
            api.handle("rt0")

    def test_closed_handle_rejected(self, api):
        with api.open_tile("rt0") as handle:
            pass
        with pytest.raises(ReconfigurationError, match="not open"):
            api.esp_run(handle, "fft")
        with pytest.raises(ReconfigurationError, match="not open"):
            api.esp_blank(handle)

    def test_close_is_idempotent(self, api):
        handle = api.open_tile("rt0")
        handle.close()
        handle.close()


class TestRun:
    def test_esp_run_returns_invocation_result(self, api, sim):
        handle = api.open_tile("rt0")
        result = api.esp_run(handle, "fft")
        assert not result.done
        with pytest.raises(ReconfigurationError, match="not completed"):
            _ = result.record
        sim.run()
        assert result.done
        assert result.accelerator == "fft"
        assert result.tile_name == "rt0"
        assert result.record.mode_name == "fft"
        assert result.exec_time_s == pytest.approx(0.01)
        assert result.reconfig_s > 0.0
        assert result.wait_s == pytest.approx(0.0)
        assert result.degraded is False
        assert len(api.invocation_log()) == 1

    def test_run_without_bitstream_rejected(self, api):
        handle = api.open_tile("rt0")
        with pytest.raises(ReconfigurationError, match="no bitstream"):
            api.esp_run(handle, "sort")

    def test_esp_load_prefetches(self, api, sim):
        handle = api.open_tile("rt0")
        api.esp_load(handle, "gemm")
        sim.run()
        result = api.esp_run(handle, "gemm")
        sim.run()
        assert result.reconfig_s == 0.0

    def test_esp_load_unknown_mode(self, api):
        handle = api.open_tile("rt0")
        with pytest.raises(ReconfigurationError):
            api.esp_load(handle, "sort")

    def test_degraded_flag_reflects_failed_transfers(self, api, sim):
        prc = api._manager.prc
        prc.faults = RuntimeFaultModel()
        prc.faults.inject("rt0", "fft", count=1)
        handle = api.open_tile("rt0")
        result = api.esp_run(handle, "fft")
        sim.run()
        assert result.degraded is True
        assert result.record.failed_attempts == 1
