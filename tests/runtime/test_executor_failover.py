"""Scheduler failover: re-planning instances off quarantined tiles."""

import pytest

from repro.errors import TileQuarantinedError
from repro.noc.mesh import Mesh
from repro.obs import events as ev
from repro.obs.events import EventBus
from repro.runtime.api import DprUserApi
from repro.runtime.driver import AcceleratorDriver, DriverRegistry
from repro.runtime.executor import AppExecutor, StageTask
from repro.runtime.faults import (
    PERSISTENT,
    RuntimeFaultKind,
    RuntimeFaultModel,
)
from repro.runtime.manager import ReconfigurationManager
from repro.runtime.memory import BitstreamStore
from repro.runtime.prc import PrcDevice
from repro.sim.kernel import Simulator
from repro.vivado.bitstream import Bitstream, BitstreamKind

CRC = RuntimeFaultKind.BITSTREAM_CORRUPTION


def make_cluster(sim, faults, placement, events=None):
    """A multi-tile stack; ``placement`` maps tile -> list of modes."""
    mesh = Mesh(3, 3, clock_hz=78e6)
    prc = PrcDevice(
        sim, mesh, mem_position=(0, 1), aux_position=(0, 2), faults=faults
    )
    store = BitstreamStore()
    registry = DriverRegistry()
    installed = set()
    for tile, modes in placement.items():
        for mode in modes:
            if mode not in installed:
                registry.install(
                    AcceleratorDriver(accelerator=mode, exec_time_s=0.01)
                )
                installed.add(mode)
            store.load(
                Bitstream(
                    name=f"{tile}_{mode}.pbs",
                    kind=BitstreamKind.PARTIAL,
                    size_bytes=250_000,
                    compressed=True,
                    target_rp=tile,
                    mode=mode,
                ),
                tile,
            )
    manager = ReconfigurationManager(
        sim, prc, store, registry, events=events or ev.NULL_EVENTS
    )
    for tile in placement:
        manager.attach_tile(tile)
    return DprUserApi(manager), manager


def persistent_crc(tile, mode):
    model = RuntimeFaultModel()
    model.inject(tile, mode, CRC, count=PERSISTENT)
    return model


class TestFailover:
    def test_replanned_onto_surviving_tile(self):
        sim = Simulator()
        bus = EventBus()
        api, manager = make_cluster(
            sim,
            persistent_crc("rt0", "fft"),
            {"rt0": ["fft"], "rt1": ["fft"]},
            events=bus,
        )
        executor = AppExecutor(
            sim,
            api,
            [StageTask(name="t", duration_s=0.01, tile_name="rt0", mode_name="fft")],
            events=bus,
        )
        timeline = executor.run(frames=1)
        assert manager.tile_quarantined("rt0")
        assert executor.failovers == 1
        execs = timeline.spans("exec")
        assert len(execs) == 1 and execs[0].worker == "rt1"
        failover = bus.events(ev.SCHED_FAILOVER)
        assert len(failover) == 1
        assert failover[0].source == "rt0"
        assert failover[0].attrs["to"] == "rt1"

    def test_software_fallback_when_no_tile_survives(self):
        sim = Simulator()
        bus = EventBus()
        api, manager = make_cluster(
            sim, persistent_crc("rt0", "fft"), {"rt0": ["fft"]}, events=bus
        )
        executor = AppExecutor(
            sim,
            api,
            [
                StageTask(
                    name="t",
                    duration_s=0.01,
                    tile_name="rt0",
                    mode_name="fft",
                    sw_duration_s=0.07,
                )
            ],
            events=bus,
        )
        timeline = executor.run(frames=1)
        sw = timeline.spans("sw")
        assert len(sw) == 1
        assert sw[0].worker == "cpu"
        assert sw[0].duration_s == pytest.approx(0.07)
        assert bus.events(ev.SCHED_FAILOVER)[0].attrs["to"] == "cpu"

    def test_unplaceable_instance_raises(self):
        sim = Simulator()
        api, _ = make_cluster(sim, persistent_crc("rt0", "fft"), {"rt0": ["fft"]})
        executor = AppExecutor(
            sim,
            api,
            [StageTask(name="t", duration_s=0.01, tile_name="rt0", mode_name="fft")],
        )
        with pytest.raises(TileQuarantinedError):
            executor.run(frames=1)

    def test_pre_quarantined_tile_is_skipped_up_front(self):
        sim = Simulator()
        model = persistent_crc("rt0", "fft")
        api, manager = make_cluster(
            sim, model, {"rt0": ["fft"], "rt1": ["fft", "gemm"]}
        )
        # Quarantine rt0 before the executor ever runs.
        warm = AppExecutor(
            sim,
            api,
            [StageTask(name="w", duration_s=0.01, tile_name="rt0", mode_name="fft")],
        )
        warm.run(frames=1)
        assert manager.tile_quarantined("rt0")
        executor = AppExecutor(
            sim,
            api,
            [StageTask(name="t", duration_s=0.01, tile_name="rt0", mode_name="fft")],
        )
        timeline = executor.run(frames=1)
        assert executor.failovers == 1
        assert timeline.spans("exec")[0].worker == "rt1"

    def test_later_frames_keep_using_the_failover_target(self):
        sim = Simulator()
        api, _ = make_cluster(
            sim, persistent_crc("rt0", "fft"), {"rt0": ["fft"], "rt1": ["fft"]}
        )
        executor = AppExecutor(
            sim,
            api,
            [StageTask(name="t", duration_s=0.01, tile_name="rt0", mode_name="fft")],
        )
        timeline = executor.run(frames=3)
        execs = timeline.spans("exec")
        assert len(execs) == 3
        assert {e.worker for e in execs} == {"rt1"}


class ReversedExecutor(AppExecutor):
    """Spawns worker threads in reverse name order (determinism stress)."""

    def _worker_queues(self, queues):
        return sorted(queues.items(), reverse=True)


class TestWorkerOrderDeterminism:
    PLACEMENT = {"rt0": ["fft", "gemm"], "rt1": ["fft", "gemm"]}
    TASKS = [
        StageTask(name="a", duration_s=0.01, tile_name="rt0", mode_name="fft"),
        StageTask(name="b", duration_s=0.01, tile_name="rt1", mode_name="gemm"),
        StageTask(
            name="c",
            duration_s=0.01,
            tile_name="rt0",
            mode_name="gemm",
            deps=("a", "b"),
        ),
    ]

    def run_with(self, executor_cls):
        sim = Simulator()
        model = RuntimeFaultModel(seed=9, rates={CRC: 0.3})
        api, manager = make_cluster(sim, model.fresh(), dict(self.PLACEMENT))
        executor = executor_cls(sim, api, list(self.TASKS))
        timeline = executor.run(frames=4)
        per_tile = {
            tile: [(e.task, e.kind) for e in timeline.events if e.worker == tile]
            for tile in ("rt0", "rt1")
        }
        exec_spans = {
            tile: [
                e.duration_s
                for e in timeline.spans("exec")
                if e.worker == tile
            ]
            for tile in ("rt0", "rt1")
        }
        return (
            timeline.makespan_s,
            per_tile,
            exec_spans,
            dict(manager.failed_attempts_by_tile),
        )

    def test_thread_spawn_order_does_not_change_the_run(self):
        # The fault draws are keyed by (tile, mode, attempt), so the
        # same seeded run must replay identically whichever worker
        # thread the kernel spawns first. Reconfig span *boundaries*
        # may shift (they include ICAP queueing, and the queue order at
        # t=0 follows spawn order); the logical per-tile behaviour, the
        # fault timeline and the makespan must not.
        makespan_a, tiles_a, execs_a, failed_a = self.run_with(AppExecutor)
        makespan_b, tiles_b, execs_b, failed_b = self.run_with(ReversedExecutor)
        assert failed_a  # the 0.3 CRC rate actually bit somewhere
        assert makespan_a == makespan_b
        assert tiles_a == tiles_b
        for tile in execs_a:
            assert execs_a[tile] == pytest.approx(execs_b[tile])
        assert failed_a == failed_b
