"""Tests for the blank-after-frame power-gating policy."""

import pytest

from repro.core.designs import wami_soc_z
from repro.core.platform import PrEspPlatform


@pytest.fixture(scope="module")
def platform():
    return PrEspPlatform()


@pytest.fixture(scope="module")
def gated_pair(platform):
    config = wami_soc_z()
    flow_result = platform.flow.build(config)
    off = platform.deploy_wami(config, flow_result=flow_result, frames=3)
    on = platform.deploy_wami(
        config, flow_result=flow_result, frames=3, power_gating=True
    )
    return off, on


class TestConfiguredTime:
    def test_state_accounting(self, sim):
        from repro.runtime.manager import TileState
        from repro.sim.resources import Lock
        from repro.soc.socket import Decoupler

        state = TileState(name="rt0", decoupler=Decoupler("rt0"), lock=Lock(sim))
        assert state.configured_time(10.0) == 0.0
        state.mark_configured(2.0)
        assert state.configured_time(5.0) == pytest.approx(3.0)
        state.mark_dark(7.0)
        assert state.configured_time(10.0) == pytest.approx(5.0)
        state.mark_configured(9.0)
        assert state.configured_time(10.0) == pytest.approx(6.0)

    def test_mark_configured_idempotent(self, sim):
        from repro.runtime.manager import TileState
        from repro.sim.resources import Lock
        from repro.soc.socket import Decoupler

        state = TileState(name="rt0", decoupler=Decoupler("rt0"), lock=Lock(sim))
        state.mark_configured(1.0)
        state.mark_configured(5.0)  # no effect
        assert state.configured_time(10.0) == pytest.approx(9.0)


class TestDeployment:
    def test_gating_blanks_every_tile_each_frame(self, gated_pair):
        off, on = gated_pair
        tiles = len(on.config.reconfigurable_tiles)
        frames = on.frames
        # Gated run adds one blank per tile per frame.
        assert on.reconfigurations == off.reconfigurations + tiles * frames

    def test_gating_reduces_energy(self, gated_pair):
        off, on = gated_pair
        assert on.joules_per_frame < off.joules_per_frame
        # The reduction comes from the baseline (region) term.
        assert on.energy.baseline_j < off.energy.baseline_j

    def test_gating_increases_reconfig_energy(self, gated_pair):
        off, on = gated_pair
        assert on.energy.reconfig_j > off.energy.reconfig_j

    def test_dynamic_energy_unchanged(self, gated_pair):
        off, on = gated_pair
        assert on.energy.dynamic_j == pytest.approx(off.energy.dynamic_j, rel=1e-6)

    def test_configured_fraction_validation(self):
        from repro.energy.measure import measure_energy
        from repro.errors import ConfigurationError
        from repro.runtime.executor import ExecutionTimeline

        with pytest.raises(ConfigurationError, match="outside"):
            measure_energy(
                ExecutionTimeline(events=[], makespan_s=1.0),
                frames=1,
                static_kluts=1.0,
                region_kluts={"rt0": 10.0},
                mode_power_w={},
                task_modes={},
                configured_fraction={"rt0": 1.5},
            )
