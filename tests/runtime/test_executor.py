"""Tests for the multi-threaded application executor."""

import pytest

from repro.errors import ConfigurationError
from repro.noc.mesh import Mesh
from repro.runtime.api import DprUserApi
from repro.runtime.driver import AcceleratorDriver, DriverRegistry
from repro.runtime.executor import AppExecutor, StageTask
from repro.runtime.manager import ReconfigurationManager
from repro.runtime.memory import BitstreamStore
from repro.runtime.prc import PrcDevice
from repro.vivado.bitstream import Bitstream, BitstreamKind


def build_runtime(sim, tiles=("rt0", "rt1"), modes=("a", "b", "c")):
    mesh = Mesh(3, 3, clock_hz=78e6)
    prc = PrcDevice(sim, mesh, mem_position=(0, 1), aux_position=(0, 2))
    store = BitstreamStore()
    registry = DriverRegistry()
    for mode in modes:
        registry.install(AcceleratorDriver(accelerator=mode, exec_time_s=0.01))
        for tile in tiles:
            store.load(
                Bitstream(
                    name=f"{tile}_{mode}.pbs",
                    kind=BitstreamKind.PARTIAL,
                    size_bytes=150_000,
                    compressed=True,
                    target_rp=tile,
                    mode=mode,
                ),
                tile,
            )
    manager = ReconfigurationManager(sim, prc, store, registry)
    for tile in tiles:
        manager.attach_tile(tile)
    return DprUserApi(manager), manager


class TestValidation:
    def test_duplicate_task_names(self, sim):
        api, _ = build_runtime(sim)
        tasks = [
            StageTask("t", 0.01, "rt0", "a"),
            StageTask("t", 0.01, "rt1", "b"),
        ]
        with pytest.raises(ConfigurationError, match="unique"):
            AppExecutor(sim, api, tasks)

    def test_unknown_dependency(self, sim):
        api, _ = build_runtime(sim)
        with pytest.raises(ConfigurationError, match="unknown task"):
            AppExecutor(sim, api, [StageTask("t", 0.01, "rt0", "a", deps=("ghost",))])

    def test_hw_task_needs_mode(self):
        with pytest.raises(ConfigurationError, match="mode"):
            StageTask("t", 0.01, "rt0")

    def test_cycle_detected(self, sim):
        api, _ = build_runtime(sim)
        tasks = [
            StageTask("t1", 0.01, "rt0", "a", deps=("t2",)),
            StageTask("t2", 0.01, "rt1", "b", deps=("t1",)),
        ]
        executor = AppExecutor(sim, api, tasks)
        with pytest.raises(ConfigurationError, match="cycle"):
            executor.run()

    def test_zero_frames_rejected(self, sim):
        api, _ = build_runtime(sim)
        executor = AppExecutor(sim, api, [StageTask("t", 0.01, "rt0", "a")])
        with pytest.raises(ConfigurationError):
            executor.run(frames=0)


class TestExecution:
    def test_dependencies_respected(self, sim):
        api, _ = build_runtime(sim)
        tasks = [
            StageTask("first", 0.01, "rt0", "a"),
            StageTask("second", 0.01, "rt1", "b", deps=("first",)),
        ]
        timeline = AppExecutor(sim, api, tasks).run()
        spans = {e.task: e for e in timeline.spans("exec")}
        assert spans["second"].start_s >= spans["first"].end_s

    def test_independent_tasks_on_different_tiles_overlap(self, sim):
        api, _ = build_runtime(sim)
        tasks = [
            StageTask("a_task", 0.5, "rt0", "a"),
            StageTask("b_task", 0.5, "rt1", "b"),
        ]
        timeline = AppExecutor(sim, api, tasks).run()
        spans = {e.task: e for e in timeline.spans("exec")}
        assert spans["a_task"].start_s < spans["b_task"].end_s
        assert spans["b_task"].start_s < spans["a_task"].end_s

    def test_software_task_runs_on_cpu_worker(self, sim):
        api, _ = build_runtime(sim)
        tasks = [StageTask("sw", 0.1, None)]
        timeline = AppExecutor(sim, api, tasks).run()
        (span,) = timeline.spans("sw")
        assert span.worker == "cpu"
        assert span.duration_s == pytest.approx(0.1)

    def test_reconfig_spans_recorded(self, sim):
        api, _ = build_runtime(sim)
        tasks = [
            StageTask("t1", 0.01, "rt0", "a"),
            StageTask("t2", 0.01, "rt0", "b", deps=("t1",)),
        ]
        timeline = AppExecutor(sim, api, tasks).run()
        assert len(timeline.spans("reconfig")) == 2  # both modes loaded once

    def test_same_mode_twice_reconfigures_once_per_frame_chain(self, sim):
        api, manager = build_runtime(sim)
        tasks = [
            StageTask("t1", 0.01, "rt0", "a"),
            StageTask("t2", 0.01, "rt0", "a", deps=("t1",)),
        ]
        AppExecutor(sim, api, tasks).run()
        assert manager.total_reconfigurations() == 1

    def test_multi_frame_accumulates(self, sim):
        api, _ = build_runtime(sim)
        tasks = [StageTask("t", 0.01, "rt0", "a")]
        timeline = AppExecutor(sim, api, tasks).run(frames=3)
        assert len(timeline.spans("exec")) == 3

    def test_makespan_covers_all_events(self, sim):
        api, _ = build_runtime(sim)
        tasks = [
            StageTask("t1", 0.02, "rt0", "a"),
            StageTask("t2", 0.03, "rt1", "b", deps=("t1",)),
            StageTask("sw", 0.01, None, deps=("t2",)),
        ]
        timeline = AppExecutor(sim, api, tasks).run()
        assert timeline.makespan_s >= max(e.end_s for e in timeline.events) - 1e-12

    def test_busy_time_per_worker(self, sim):
        api, _ = build_runtime(sim)
        tasks = [
            StageTask("t1", 0.02, "rt0", "a"),
            StageTask("sw", 0.05, None),
        ]
        timeline = AppExecutor(sim, api, tasks).run()
        assert timeline.busy_time("cpu") == pytest.approx(0.05)
        assert timeline.busy_time("rt0") > 0.02  # exec + reconfig
