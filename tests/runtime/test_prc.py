"""Tests for the DFXC/ICAP device model."""

import pytest

from repro.errors import ReconfigurationError
from repro.noc.mesh import Mesh
from repro.runtime.prc import PrcDevice


def make_prc(sim, fetch=1.2, clock=78e6):
    mesh = Mesh(3, 3, clock_hz=clock)
    return PrcDevice(
        sim,
        mesh,
        mem_position=(0, 1),
        aux_position=(0, 2),
        clock_hz=clock,
        fetch_bytes_per_cycle=fetch,
    )


class TestLatencyModel:
    def test_transfer_time_scales_with_size(self, sim):
        prc = make_prc(sim)
        assert prc.transfer_seconds(2 * 300_000) > 1.9 * prc.transfer_seconds(300_000)

    def test_fetch_bound_dominates(self, sim):
        prc = make_prc(sim, fetch=0.5)
        size = 300 * 1024
        expected = size / 0.5 / 78e6
        assert prc.transfer_seconds(size) == pytest.approx(expected, rel=0.05)

    def test_compressed_bitstream_is_proportionally_faster(self, sim):
        prc = make_prc(sim)
        raw, packed = 3_500_000, 330_000
        assert prc.transfer_seconds(raw) > 9 * prc.transfer_seconds(packed)

    def test_zero_size_rejected(self, sim):
        with pytest.raises(ReconfigurationError):
            make_prc(sim).transfer_seconds(0)

    def test_bad_fetch_rate_rejected(self, sim):
        with pytest.raises(ReconfigurationError):
            make_prc(sim, fetch=0)


class TestSerialization:
    def test_single_reconfiguration(self, sim):
        prc = make_prc(sim)
        proc = prc.reconfigure("rt0", "fft", 300_000)
        sim.run()
        assert proc.value.tile_name == "rt0"
        assert proc.value.duration_s == pytest.approx(
            prc.transfer_seconds(300_000)
        )

    def test_concurrent_requests_serialize_on_icap(self, sim):
        prc = make_prc(sim)
        a = prc.reconfigure("rt0", "fft", 300_000)
        b = prc.reconfigure("rt1", "gemm", 300_000)
        sim.run()
        ra, rb = a.value, b.value
        # The second transfer starts only after the first ends.
        first, second = sorted((ra, rb), key=lambda r: r.start_s)
        assert second.start_s >= first.end_s

    def test_records_accumulate(self, sim):
        prc = make_prc(sim)
        for i in range(3):
            prc.reconfigure("rt0", f"m{i}", 100_000)
        sim.run()
        assert len(prc.records) == 3
        assert prc.total_reconfiguration_time_s() == pytest.approx(
            sum(r.duration_s for r in prc.records)
        )

    def test_busy_flag(self, sim):
        prc = make_prc(sim)
        assert not prc.busy
        prc.reconfigure("rt0", "fft", 300_000)
        sim.run(until=prc.transfer_seconds(300_000) / 2)
        assert prc.busy
        sim.run()
        assert not prc.busy
