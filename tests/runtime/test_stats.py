"""Tests for runtime statistics aggregation."""

import pytest

from repro.errors import ReconfigurationError
from repro.runtime.faults import NO_RUNTIME_FAULTS, RuntimeFaultModel
from repro.runtime.stats import collect_stats
from tests.runtime.test_manager import manager  # fixture reuse


def arm_crc_failure(manager, tile, mode, count=1):
    """Arm CRC failures via the fault model (the old shim is gone)."""
    if manager.prc.faults is NO_RUNTIME_FAULTS:
        manager.prc.faults = RuntimeFaultModel()
    manager.prc.faults.inject(tile, mode, count=count)


class TestCollect:
    def test_counts(self, manager, sim):
        manager.invoke("rt0", "fft")
        manager.invoke("rt0", "gemm")
        manager.invoke("rt1", "sort")
        sim.run()
        stats = collect_stats(manager)
        assert stats.total_invocations == 3
        assert stats.total_reconfigurations == 3
        assert stats.failed_attempts == 0
        assert set(stats.tiles) == {"rt0", "rt1"}
        assert stats.tiles["rt0"].invocations == 2

    def test_exec_and_reconfig_time(self, manager, sim):
        manager.invoke("rt0", "fft", exec_time_s=0.5)
        sim.run()
        stats = collect_stats(manager)
        tile = stats.tiles["rt0"]
        assert tile.exec_time_s == pytest.approx(0.5)
        assert tile.reconfig_time_s > 0
        assert 0.0 < tile.reconfig_share < 1.0

    def test_warm_invocations_have_zero_reconfig_share(self, manager, sim):
        manager.invoke("rt0", "fft")
        sim.run()
        manager.invocations.clear()
        manager.invoke("rt0", "fft", exec_time_s=0.1)
        sim.run()
        stats = collect_stats(manager)
        assert stats.tiles["rt0"].reconfig_time_s == 0.0

    def test_wait_time_from_contention(self, manager, sim):
        manager.invoke("rt0", "fft", exec_time_s=1.0)
        manager.invoke("rt0", "fft", exec_time_s=0.1)  # queued behind
        sim.run()
        stats = collect_stats(manager)
        assert stats.tiles["rt0"].wait_time_s > 0.9
        assert stats.tiles["rt0"].mean_wait_s > 0.4

    def test_icap_utilization(self, manager, sim):
        manager.invoke("rt0", "fft", exec_time_s=0.001)
        sim.run()
        stats = collect_stats(manager)
        assert 0.0 < stats.icap_utilization <= 1.0

    def test_busiest_tile(self, manager, sim):
        manager.invoke("rt0", "fft", exec_time_s=0.9)
        manager.invoke("rt1", "gemm", exec_time_s=0.1)
        sim.run()
        assert collect_stats(manager).busiest_tile().tile_name == "rt0"

    def test_busiest_tile_empty_manager(self, sim):
        from repro.noc.mesh import Mesh
        from repro.runtime.driver import DriverRegistry
        from repro.runtime.manager import ReconfigurationManager
        from repro.runtime.memory import BitstreamStore
        from repro.runtime.prc import PrcDevice

        mesh = Mesh(2, 2)
        prc = PrcDevice(sim, mesh, (0, 0), (0, 1))
        empty = ReconfigurationManager(sim, prc, BitstreamStore(), DriverRegistry())
        with pytest.raises(ReconfigurationError):
            collect_stats(empty).busiest_tile()

    def test_summary_lines(self, manager, sim):
        manager.invoke("rt0", "fft")
        sim.run()
        lines = collect_stats(manager).summary_lines()
        assert any("rt0" in line for line in lines)
        assert "invocations=1" in lines[0]


class TestFailedAttemptAttribution:
    def test_failures_attributed_to_tile(self, manager, sim):
        arm_crc_failure(manager, "rt0", "fft", count=1)
        manager.invoke("rt0", "fft")
        manager.invoke("rt1", "sort")
        sim.run()
        stats = collect_stats(manager)
        assert stats.failed_attempts == 1
        assert stats.tiles["rt0"].failed_attempts == 1
        assert stats.tiles["rt1"].failed_attempts == 0

    def test_failed_count_shown_in_summary(self, manager, sim):
        arm_crc_failure(manager, "rt0", "fft", count=1)
        manager.invoke("rt0", "fft")
        sim.run()
        lines = collect_stats(manager).summary_lines()
        rt0_line = next(line for line in lines if "rt0" in line)
        assert "failed=1" in rt0_line

    def test_clean_tiles_omit_failed_field(self, manager, sim):
        manager.invoke("rt0", "fft")
        sim.run()
        lines = collect_stats(manager).summary_lines()
        assert not any("failed=" in line for line in lines)


class TestToDict:
    def test_round_trips_totals_and_tiles(self, manager, sim):
        arm_crc_failure(manager, "rt0", "fft", count=1)
        manager.invoke("rt0", "fft", exec_time_s=0.2)
        sim.run()
        data = collect_stats(manager).to_dict()
        assert data["total_invocations"] == 1
        assert data["failed_attempts"] == 1
        tile = data["tiles"]["rt0"]
        assert tile["invocations"] == 1
        assert tile["failed_attempts"] == 1
        assert tile["exec_s"] == pytest.approx(0.2)
        assert 0.0 < tile["reconfig_share"] < 1.0

    def test_is_json_serializable(self, manager, sim):
        import json

        manager.invoke("rt1", "gemm")
        sim.run()
        text = json.dumps(collect_stats(manager).to_dict())
        assert "rt1" in text
