"""The runtime fault model and the manager's watchdog/recovery layer."""

import pytest

from repro.errors import (
    KernelHangError,
    ReconfigurationError,
    StuckTransferError,
    TileQuarantinedError,
)
from repro.noc.mesh import Mesh
from repro.obs import events as ev
from repro.obs.events import EventBus
from repro.runtime.driver import AcceleratorDriver, DriverRegistry
from repro.runtime.faults import (
    NO_RUNTIME_FAULTS,
    PERSISTENT,
    RecoveryPolicy,
    RuntimeFaultKind,
    RuntimeFaultModel,
    RuntimeFaultOptions,
)
from repro.runtime.manager import ReconfigurationManager
from repro.runtime.memory import BitstreamStore
from repro.runtime.prc import PrcDevice
from repro.vivado.bitstream import Bitstream, BitstreamKind

CRC = RuntimeFaultKind.BITSTREAM_CORRUPTION
STUCK = RuntimeFaultKind.STUCK_TRANSFER
HANG = RuntimeFaultKind.KERNEL_HANG


def make_stack(sim, faults=None, recovery=None, events=None, blank=False):
    """A one-tile runtime stack with optional fault model and policy."""
    mesh = Mesh(3, 3, clock_hz=78e6)
    prc = PrcDevice(
        sim,
        mesh,
        mem_position=(0, 1),
        aux_position=(0, 2),
        faults=faults if faults is not None else NO_RUNTIME_FAULTS,
    )
    store = BitstreamStore()
    registry = DriverRegistry()
    modes = ["fft", "gemm"] + (["blank"] if blank else [])
    for mode in modes:
        if mode != "blank":
            registry.install(AcceleratorDriver(accelerator=mode, exec_time_s=0.01))
        store.load(
            Bitstream(
                name=f"rt0_{mode}.pbs",
                kind=BitstreamKind.PARTIAL,
                size_bytes=80_000 if mode == "blank" else 250_000,
                compressed=True,
                target_rp="rt0",
                mode=mode,
            ),
            "rt0",
        )
    manager = ReconfigurationManager(
        sim,
        prc,
        store,
        registry,
        events=events if events is not None else ev.NULL_EVENTS,
        recovery=recovery,
    )
    manager.attach_tile("rt0")
    return manager, prc


class TestFaultModel:
    def test_draws_are_order_independent(self):
        rates = {CRC: 0.3, STUCK: 0.2}
        forward = RuntimeFaultModel(seed=11, rates=rates)
        backward = RuntimeFaultModel(seed=11, rates=rates)
        keys = [("rt0", "fft"), ("rt1", "gemm"), ("rt2", "fft")]
        got_fwd = {k: [forward.transfer_fault(*k) for _ in range(8)] for k in keys}
        got_bwd = {
            k: [backward.transfer_fault(*k) for _ in range(8)]
            for k in reversed(keys)
        }
        assert got_fwd == got_bwd

    def test_same_seed_replays_same_timeline(self):
        a = RuntimeFaultModel(seed=7, rates={CRC: 0.4, HANG: 0.3})
        b = RuntimeFaultModel(seed=7, rates={CRC: 0.4, HANG: 0.3})
        assert [a.transfer_fault("rt0", "fft") for _ in range(16)] == [
            b.transfer_fault("rt0", "fft") for _ in range(16)
        ]
        assert [a.invoke_fault("rt0", "fft") for _ in range(16)] == [
            b.invoke_fault("rt0", "fft") for _ in range(16)
        ]

    def test_different_seeds_diverge(self):
        a = RuntimeFaultModel(seed=1, rates={CRC: 0.5})
        b = RuntimeFaultModel(seed=2, rates={CRC: 0.5})
        assert [a.transfer_fault("rt0", "fft") for _ in range(32)] != [
            b.transfer_fault("rt0", "fft") for _ in range(32)
        ]

    def test_injected_counts_are_consumed_in_order(self):
        model = RuntimeFaultModel()
        model.inject("rt0", "fft", CRC, count=2)
        model.inject("rt0", "fft", STUCK, count=1)
        outcomes = [model.transfer_fault("rt0", "fft") for _ in range(4)]
        assert outcomes == [CRC, CRC, STUCK, None]
        assert model.drawn[CRC] == 2 and model.drawn[STUCK] == 1

    def test_persistent_injection_never_drains(self):
        model = RuntimeFaultModel()
        model.inject("rt0", "fft", CRC, count=PERSISTENT)
        assert all(
            model.transfer_fault("rt0", "fft") is CRC for _ in range(10)
        )
        assert model.injected_count("rt0", "fft", CRC) == PERSISTENT

    def test_injection_validation(self):
        model = RuntimeFaultModel()
        with pytest.raises(ReconfigurationError):
            model.inject("rt0", "fft", "crc")  # not a RuntimeFaultKind
        with pytest.raises(ReconfigurationError):
            model.inject("rt0", "fft", CRC, count=0)

    def test_rate_validation(self):
        with pytest.raises(ReconfigurationError):
            RuntimeFaultModel(rates={"crc": 0.1})
        with pytest.raises(ReconfigurationError):
            RuntimeFaultModel(rates={CRC: 1.0})
        with pytest.raises(ReconfigurationError):
            RuntimeFaultModel(rates={CRC: 0.6, STUCK: 0.5})

    def test_enabled(self):
        assert not RuntimeFaultModel().enabled
        assert RuntimeFaultModel(rates={HANG: 0.1}).enabled
        armed = RuntimeFaultModel()
        armed.inject("rt0", "fft")
        assert armed.enabled

    def test_fresh_restarts_attempt_numbering(self):
        model = RuntimeFaultModel(seed=5, rates={CRC: 0.3})
        model.inject("rt0", "gemm", HANG, count=1)
        first = [model.transfer_fault("rt0", "fft") for _ in range(12)]
        replay = model.fresh()
        assert [replay.transfer_fault("rt0", "fft") for _ in range(12)] == first
        assert replay.invoke_fault("rt0", "gemm")  # injection copied over
        assert replay.fingerprint() == model.fingerprint()

    def test_no_runtime_faults_refuses_injection(self):
        with pytest.raises(ReconfigurationError):
            NO_RUNTIME_FAULTS.inject("rt0", "fft")
        assert NO_RUNTIME_FAULTS.transfer_fault("rt0", "fft") is None
        assert not NO_RUNTIME_FAULTS.invoke_fault("rt0", "fft")
        assert not NO_RUNTIME_FAULTS.enabled

    def test_options_validate_types(self):
        with pytest.raises(ReconfigurationError):
            RuntimeFaultOptions(faults="nope")
        with pytest.raises(ReconfigurationError):
            RuntimeFaultOptions(recovery="nope")


class TestRecoveryPolicy:
    def test_first_attempt_has_no_backoff(self):
        assert RecoveryPolicy().backoff_before(1, 0, "rt0", "fft") == 0.0

    def test_backoff_grows_then_caps(self):
        policy = RecoveryPolicy(backoff_s=0.01, factor=2.0, cap_s=0.02, jitter=0.0)
        waits = [policy.backoff_before(n, 0, "rt0", "fft") for n in (2, 3, 4, 5)]
        assert waits == [0.01, 0.02, 0.02, 0.02]
        assert policy.max_backoff_s == 0.02

    def test_jitter_is_bounded_and_deterministic(self):
        policy = RecoveryPolicy(backoff_s=0.01, cap_s=0.01, jitter=0.5)
        wait = policy.backoff_before(2, 3, "rt0", "fft")
        assert 0.01 <= wait <= 0.015
        assert wait == policy.backoff_before(2, 3, "rt0", "fft")

    def test_validation(self):
        with pytest.raises(ReconfigurationError):
            RecoveryPolicy(max_attempts=0)
        with pytest.raises(ReconfigurationError):
            RecoveryPolicy(factor=0.5)
        with pytest.raises(ReconfigurationError):
            RecoveryPolicy(jitter=1.5)
        with pytest.raises(ReconfigurationError):
            RecoveryPolicy(exec_deadline_factor=1.0)
        with pytest.raises(ReconfigurationError):
            RecoveryPolicy(quarantine_after=0)


class TestRemovedShim:
    def test_inject_failure_raises_type_error(self, sim):
        _, prc = make_stack(sim)
        with pytest.raises(TypeError, match="inject_failure was removed"):
            prc.inject_failure("rt0", "fft", count=2)

    def test_model_injection_is_shared_with_the_manager(self, sim):
        model = RuntimeFaultModel()
        model.inject("rt0", "fft", CRC, count=2)
        manager, prc = make_stack(sim, faults=model)
        assert manager.faults is prc.faults
        assert manager.faults.injected_count("rt0", "fft", CRC) == 2

    def test_legacy_retry_contract_is_preserved(self, sim):
        model = RuntimeFaultModel()
        model.inject("rt0", "fft", CRC, count=1)
        manager, _ = make_stack(sim, faults=model)
        proc = manager.invoke("rt0", "fft")
        sim.run()
        assert proc.value.mode_name == "fft"
        assert proc.value.failed_attempts == 1


class TestStuckTransfers:
    def test_direct_stuck_transfer_fails_and_frees_icap(self, sim):
        model = RuntimeFaultModel()
        model.inject("rt0", "fft", STUCK)
        _, prc = make_stack(sim, faults=model)
        proc = prc.reconfigure("rt0", "fft", 250_000)
        sim.run()
        assert isinstance(proc.exception, StuckTransferError)
        assert not prc.busy
        assert prc.failed_transfers == 1

    def test_abort_frees_a_wedged_transfer_early(self, sim):
        model = RuntimeFaultModel()
        model.inject("rt0", "fft", STUCK)
        _, prc = make_stack(sim, faults=model)
        prc.reconfigure("rt0", "fft", 250_000)

        def aborter():
            yield sim.timeout(0.01)
            assert prc.abort_transfer("rt0", "fft")

        sim.process(aborter())
        sim.run()
        # Without the abort the stall burns ~1000 transfer windows.
        assert sim.now == pytest.approx(0.01)
        assert not prc.busy

    def test_watchdog_aborts_and_retry_succeeds(self, sim):
        model = RuntimeFaultModel()
        model.inject("rt0", "fft", STUCK, count=1)
        bus = EventBus()
        manager, prc = make_stack(sim, faults=model, events=bus)
        proc = manager.invoke("rt0", "fft")
        sim.run()
        record = proc.value
        assert record.mode_name == "fft"
        assert record.failed_attempts == 1
        assert manager.tile("rt0").loaded_mode == "fft"
        assert not prc.busy
        failed = bus.events(ev.RECONFIG_FAILED)
        assert failed and failed[0].attrs["reason"] == "stuck"
        # The abort fired at the recovery deadline, not the 1000x stall.
        assert sim.now < 1000 * prc.transfer_seconds(250_000)


class TestFallback:
    def test_abandoned_reconfig_falls_back_to_last_good(self, sim):
        model = RuntimeFaultModel()
        model.inject("rt0", "fft", CRC, count=PERSISTENT)
        bus = EventBus()
        manager, _ = make_stack(sim, faults=model, events=bus)
        warmup = manager.invoke("rt0", "gemm")
        failed = manager.invoke("rt0", "fft")
        sim.run()
        assert warmup.value.mode_name == "gemm"
        assert isinstance(failed.exception, ReconfigurationError)
        # The tile kept serving its last-known-good mode instead of
        # going dark.
        state = manager.tile("rt0")
        assert state.loaded_mode == "gemm"
        assert state.last_good_mode == "gemm"
        assert manager.fallbacks == 1
        assert manager.fallbacks_by_tile["rt0"] == 1
        fallback = bus.events(ev.RECONFIG_FALLBACK)
        assert len(fallback) == 1
        assert fallback[0].attrs["mode"] == "gemm"
        assert fallback[0].attrs["failed_mode"] == "fft"

    def test_no_fallback_without_a_prior_success(self, sim):
        model = RuntimeFaultModel()
        model.inject("rt0", "fft", CRC, count=2)
        manager, _ = make_stack(sim, faults=model)
        proc = manager.invoke("rt0", "fft")
        sim.run()
        # Satellite: retry-once-then-dark — fft never succeeded, so
        # there is nothing to fall back to and the region stays dark.
        assert isinstance(proc.exception, ReconfigurationError)
        state = manager.tile("rt0")
        assert state.loaded_mode is None
        assert state.decoupler.queues_enabled
        assert manager.fallbacks == 0

    def test_fallback_can_be_disabled(self, sim):
        model = RuntimeFaultModel()
        model.inject("rt0", "fft", CRC, count=PERSISTENT)
        manager, _ = make_stack(
            sim, faults=model, recovery=RecoveryPolicy(fallback_to_last_good=False)
        )
        warmup = manager.invoke("rt0", "gemm")
        failed = manager.invoke("rt0", "fft")
        sim.run()
        assert warmup.value is not None
        assert failed.exception is not None
        assert manager.tile("rt0").loaded_mode is None
        assert manager.fallbacks == 0


class TestKernelHangs:
    def test_hung_kernel_is_restarted(self, sim):
        model = RuntimeFaultModel()
        model.inject("rt0", "fft", HANG, count=1)
        bus = EventBus()
        manager, _ = make_stack(sim, faults=model, events=bus)
        proc = manager.invoke("rt0", "fft")
        sim.run()
        record = proc.value
        assert record.mode_name == "fft"
        assert record.hang_attempts == 1
        assert manager.kernel_hangs == 1
        hung = bus.events(ev.KERNEL_HUNG)
        assert len(hung) == 1
        # The hung attempt burned the watchdog deadline, the restart
        # then ran the nominal execution on top.
        policy = manager.recovery
        assert record.exec_time_s >= 0.01 * (policy.exec_deadline_factor + 1)

    def test_persistent_hang_abandons_the_invocation(self, sim):
        model = RuntimeFaultModel()
        model.inject("rt0", "fft", HANG, count=PERSISTENT)
        manager, _ = make_stack(sim, faults=model)
        proc = manager.invoke("rt0", "fft")
        sim.run()
        assert isinstance(proc.exception, KernelHangError)
        state = manager.tile("rt0")
        assert state.loaded_mode is None
        assert manager.registry.active_on("rt0") is None
        assert not state.lock.locked


class TestQuarantine:
    def drive_to_quarantine(self, sim, blank=True, events=None):
        model = RuntimeFaultModel()
        model.inject("rt0", "fft", CRC, count=PERSISTENT)
        manager, _ = make_stack(sim, faults=model, events=events, blank=blank)
        procs = [manager.invoke("rt0", "fft") for _ in range(4)]
        sim.run()
        return manager, procs

    def test_persistent_failures_quarantine_the_tile(self, sim):
        bus = EventBus()
        manager, procs = self.drive_to_quarantine(sim, events=bus)
        # quarantine_after=3: the first three invocations each abandon
        # a reconfiguration, the fourth finds the tile closed.
        for proc in procs[:3]:
            assert isinstance(proc.exception, ReconfigurationError)
        assert isinstance(procs[3].exception, TileQuarantinedError)
        assert manager.tile_quarantined("rt0")
        assert manager.quarantined == {"rt0": "crc"}
        marks = bus.events(ev.TILE_QUARANTINED)
        assert len(marks) == 1
        assert marks[0].attrs["blanked"] is True
        assert marks[0].attrs["abandoned_ops"] == 3

    def test_quarantine_without_blank_image_leaves_region_as_is(self, sim):
        bus = EventBus()
        manager, _ = self.drive_to_quarantine(sim, blank=False, events=bus)
        marks = bus.events(ev.TILE_QUARANTINED)
        assert marks[0].attrs["blanked"] is False
        assert manager.tile_quarantined("rt0")

    def test_preload_and_invoke_refused_after_quarantine(self, sim):
        manager, _ = self.drive_to_quarantine(sim)
        invoke = manager.invoke("rt0", "gemm")
        preload = manager.preload("rt0", "gemm")
        sim.run()
        assert isinstance(invoke.exception, TileQuarantinedError)
        assert isinstance(preload.exception, TileQuarantinedError)


class TestConfiguredFractions:
    def test_tile_going_dark_mid_window_caps_the_fraction(self, sim):
        model = RuntimeFaultModel()
        model.inject("rt0", "gemm", CRC, count=PERSISTENT)
        manager, _ = make_stack(
            sim, faults=model, recovery=RecoveryPolicy(fallback_to_last_good=False)
        )

        def scenario():
            yield manager.invoke("rt0", "fft")  # configures the region
            failed = manager.invoke("rt0", "gemm")  # abandons -> dark
            yield sim.any_of([failed])
            dark_at = sim.now
            yield sim.timeout(2 * dark_at)  # let the dark window grow
            return dark_at

        proc = sim.process(scenario())
        sim.run()
        dark_at = proc.value
        fraction = manager.configured_fractions()["rt0"]
        assert 0.0 < fraction < 1.0
        # The configured window closed when the tile went dark; the
        # tail of the run added only dark time.
        state = manager.tile("rt0")
        assert state.configured_since is None
        assert state.configured_time(sim.now) == state.configured_time(dark_at)


class TestBlankReconfigureSerialization:
    def test_blank_cannot_interleave_with_a_reconfiguration(self, sim):
        # Regression: blank_tile used to bypass the per-tile lock, so a
        # blank could start while a reconfiguration held the tile.
        bus = EventBus()
        manager, _ = make_stack(sim, events=bus, blank=True)
        invoke = manager.invoke("rt0", "fft")
        blanked = manager.blank_tile("rt0")
        sim.run()
        assert invoke.value.mode_name == "fft"
        assert blanked.value == "blank"
        assert manager.tile("rt0").loaded_mode is None
        starts = bus.events(ev.RECONFIG_STARTED)
        completions = bus.events(ev.RECONFIG_COMPLETED)
        assert [e.attrs["mode"] for e in starts] == ["fft", "blank"]
        # The blank only started after the fft window fully closed.
        assert starts[1].time >= completions[0].time

    def test_blank_queued_first_runs_first(self, sim):
        manager, _ = make_stack(sim, blank=True)
        blanked = manager.blank_tile("rt0")  # tile dark: no-op
        invoke = manager.invoke("rt0", "fft")
        sim.run()
        assert blanked.value is None
        assert invoke.value.mode_name == "fft"
        assert manager.tile("rt0").loaded_mode == "fft"
