"""Shared fixtures for the PR-ESP reproduction test suite."""

from __future__ import annotations

import pytest

from repro.core.designs import (
    characterization_socs,
    soc_2,
    wami_parallelism_socs,
    wami_soc_y,
)
from repro.core.platform import PrEspPlatform
from repro.fabric.parts import vc707
from repro.sim.kernel import Simulator
from repro.soc.config import SocConfig
from repro.soc.esp_library import stock_accelerator
from repro.soc.tiles import ReconfigurableTile, Tile, TileKind


@pytest.fixture
def device():
    """The VC707 device model (the paper's evaluation board)."""
    return vc707()


@pytest.fixture
def sim():
    """A fresh discrete-event simulator."""
    return Simulator()


@pytest.fixture
def platform():
    """A default PR-ESP platform."""
    return PrEspPlatform()


@pytest.fixture
def small_soc() -> SocConfig:
    """A 2x2 SoC with one reconfigurable MAC tile (fast to build)."""
    return SocConfig.assemble(
        name="small",
        board="vc707",
        rows=2,
        cols=2,
        tiles=[
            Tile(kind=TileKind.CPU, name="cpu0"),
            Tile(kind=TileKind.MEM, name="mem0"),
            Tile(kind=TileKind.AUX, name="aux0"),
            ReconfigurableTile(name="rt0", modes=[stock_accelerator("mac")]),
        ],
    )


@pytest.fixture
def soc2() -> SocConfig:
    """The paper's SOC_2 characterization design."""
    return soc_2()


@pytest.fixture
def socy() -> SocConfig:
    """The paper's SoC_Y deployment design."""
    return wami_soc_y()


@pytest.fixture(scope="session")
def all_paper_socs():
    """All eight flow-evaluation SoCs keyed by name."""
    return {**characterization_socs(), **wami_parallelism_socs()}
