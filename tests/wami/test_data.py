"""Tests for the synthetic WAMI sequence generator."""

import numpy as np
import pytest

from repro.wami.data import synthetic_bayer_sequence
from repro.wami.kernels import debayer, grayscale, warp


class TestGeneration:
    def test_shapes_and_counts(self):
        frames, params, movers = synthetic_bayer_sequence(num_frames=3, size=32)
        assert len(frames) == 3
        assert len(params) == 3
        assert all(f.shape == (32, 32) for f in frames)

    def test_frame0_is_identity(self):
        _, params, _ = synthetic_bayer_sequence(num_frames=2, size=32)
        assert np.allclose(params[0], 0.0)

    def test_deterministic_with_seed(self):
        a, _, _ = synthetic_bayer_sequence(num_frames=2, size=32, seed=9)
        b, _, _ = synthetic_bayer_sequence(num_frames=2, size=32, seed=9)
        assert np.allclose(a[0], b[0])
        c, _, _ = synthetic_bayer_sequence(num_frames=2, size=32, seed=10)
        assert not np.allclose(a[1], c[1])

    def test_bad_sizes_rejected(self):
        with pytest.raises(ValueError):
            synthetic_bayer_sequence(size=31)
        with pytest.raises(ValueError):
            synthetic_bayer_sequence(num_frames=0)

    def test_pixel_range(self):
        frames, _, _ = synthetic_bayer_sequence(num_frames=2, size=32)
        for frame in frames:
            assert frame.min() >= 0.0
            assert frame.max() <= 255.0 + 1e-9


class TestGroundTruth:
    def test_params_register_frames(self):
        """warp(frame_i_gray, params[i]) must approximate frame 0."""
        frames, params, _ = synthetic_bayer_sequence(
            num_frames=3, size=48, drift_px_per_frame=1.0, num_movers=0, seed=4
        )
        grays = [grayscale(debayer(f)) for f in frames]
        reference = grays[0]
        for gray, p in zip(grays[1:], params[1:]):
            registered = warp(gray, p)
            interior = (slice(8, -8), slice(8, -8))
            err = np.abs(registered[interior] - reference[interior]).mean()
            drift = np.abs(gray[interior] - reference[interior]).mean()
            assert err < 0.5 * drift

    def test_movers_recorded_inside_frame(self):
        _, _, movers = synthetic_bayer_sequence(
            num_frames=4, size=48, num_movers=2, seed=3
        )
        assert movers  # at least some mover observations
        for truth in movers:
            assert 0 <= truth.row < 48
            assert 0 <= truth.col < 48
