"""Tests for the WAMI dataflow graph."""

import pytest

from repro.errors import ConfigurationError
from repro.wami.graph import WAMI_EDGES, WAMI_GRAPH, WamiGraph, WamiStage


class TestStages:
    def test_twelve_stages(self):
        assert len(WamiStage) == 12

    def test_indexes_are_1_to_12(self):
        assert sorted(s.value for s in WamiStage) == list(range(1, 13))

    def test_from_index(self):
        assert WamiStage.from_index(1) is WamiStage.DEBAYER
        assert WamiStage.from_index(12) is WamiStage.CHANGE_DETECTION

    def test_from_index_invalid(self):
        with pytest.raises(ConfigurationError):
            WamiStage.from_index(13)

    def test_kernel_names_are_lowercase(self):
        for stage in WamiStage:
            assert stage.kernel_name == stage.kernel_name.lower()


class TestGraphStructure:
    def test_acyclic(self):
        import networkx as nx

        assert nx.is_directed_acyclic_graph(WAMI_GRAPH.graph)

    def test_debayer_is_the_source(self):
        assert WAMI_GRAPH.predecessors(WamiStage.DEBAYER) == []

    def test_change_detection_is_the_sink(self):
        assert WAMI_GRAPH.successors(WamiStage.CHANGE_DETECTION) == []

    def test_all_stages_connected(self):
        import networkx as nx

        assert nx.is_weakly_connected(WAMI_GRAPH.graph)

    def test_topological_order_respects_edges(self):
        order = WAMI_GRAPH.topological_order()
        position = {stage: i for i, stage in enumerate(order)}
        for src, dst in WAMI_EDGES:
            assert position[src] < position[dst]

    def test_cycle_rejected(self):
        edges = list(WAMI_EDGES) + [(WamiStage.CHANGE_DETECTION, WamiStage.DEBAYER)]
        with pytest.raises(ConfigurationError, match="acyclic"):
            WamiGraph(edges)


class TestScheduling:
    def test_levels_partition_all_stages(self):
        levels = WAMI_GRAPH.levels()
        flattened = [s for level in levels for s in level]
        assert sorted(flattened, key=lambda s: s.value) == sorted(
            WamiStage, key=lambda s: s.value
        )

    def test_level_zero_is_debayer(self):
        assert WAMI_GRAPH.levels()[0] == [WamiStage.DEBAYER]

    def test_max_width_is_two(self):
        """The LK decomposition yields a width-2 DAG — the structural
        reason SoC_Z's four tiles do not scale linearly (Fig. 4)."""
        assert WAMI_GRAPH.max_width() == 2

    def test_critical_path_under_unit_weights(self):
        path, length = WAMI_GRAPH.critical_path({s: 1.0 for s in WamiStage})
        assert path[0] is WamiStage.DEBAYER
        assert path[-1] is WamiStage.CHANGE_DETECTION
        assert length == len(path)

    def test_critical_path_tracks_weights(self):
        weights = {s: 1.0 for s in WamiStage}
        weights[WamiStage.HESSIAN] = 100.0
        path, length = WAMI_GRAPH.critical_path(weights)
        assert WamiStage.HESSIAN in path
        assert length > 100.0
