"""Tests for the automatic WAMI partitioner."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ConfigurationError
from repro.wami.graph import WamiStage
from repro.wami.partitioner import Allocation, WamiPartitioner, soc_from_allocation


@pytest.fixture(scope="module")
def partitioner():
    return WamiPartitioner()


class TestAllocation:
    def test_empty_tile_rejected(self):
        with pytest.raises(ConfigurationError, match="empty"):
            Allocation(tiles=((), (WamiStage.DEBAYER,)))

    def test_duplicate_stage_rejected(self):
        with pytest.raises(ConfigurationError, match="twice"):
            Allocation(tiles=((WamiStage.DEBAYER,), (WamiStage.DEBAYER,)))

    def test_indexes_view(self):
        allocation = Allocation(
            tiles=((WamiStage.DEBAYER, WamiStage.WARP), (WamiStage.GRAYSCALE,))
        )
        assert allocation.indexes() == ((1, 4), (2,))

    def test_tile_of(self):
        allocation = Allocation(tiles=((WamiStage.DEBAYER,), (WamiStage.GRAYSCALE,)))
        mapping = allocation.tile_of()
        assert mapping[WamiStage.DEBAYER] == 0
        assert mapping[WamiStage.GRAYSCALE] == 1


class TestGenerators:
    @pytest.mark.parametrize("tiles", [2, 3, 4, 6])
    def test_lpt_covers_all_stages(self, partitioner, tiles):
        allocation = partitioner.lpt_allocation(tiles)
        assert allocation.num_tiles == tiles
        assert sorted(allocation.covered_stages(), key=lambda s: s.value) == sorted(
            WamiStage, key=lambda s: s.value
        )

    @pytest.mark.parametrize("tiles", [2, 3, 4, 6])
    def test_chain_covers_all_stages(self, partitioner, tiles):
        allocation = partitioner.chain_allocation(tiles)
        assert allocation.num_tiles == tiles
        assert len(allocation.covered_stages()) == 12

    def test_chain_groups_are_contiguous_in_topo_order(self, partitioner):
        allocation = partitioner.chain_allocation(3)
        order = partitioner.graph.topological_order()
        position = {s: i for i, s in enumerate(order)}
        boundaries = []
        for group in allocation.tiles:
            positions = sorted(position[s] for s in group)
            assert positions == list(range(positions[0], positions[-1] + 1))
            boundaries.append(positions[0])
        assert boundaries == sorted(boundaries)

    def test_bad_tile_count(self, partitioner):
        with pytest.raises(ConfigurationError):
            partitioner.lpt_allocation(0)
        with pytest.raises(ConfigurationError):
            partitioner.lpt_allocation(13)

    @settings(deadline=None, max_examples=10)
    @given(st.integers(2, 5), st.integers(0, 10_000))
    def test_random_allocations_are_valid(self, tiles, seed):
        partitioner = WamiPartitioner()
        for allocation in partitioner.random_allocations(tiles, 5, seed=seed):
            assert allocation.num_tiles == tiles
            assert len(allocation.covered_stages()) == 12


class TestEstimator:
    def test_more_tiles_never_slower_for_lpt(self, partitioner):
        t2 = partitioner.estimate_frame_time(partitioner.lpt_allocation(2))
        t4 = partitioner.estimate_frame_time(partitioner.lpt_allocation(4))
        assert t4 <= t2 * 1.05  # width-2 DAG saturates, but never blows up

    def test_estimate_exceeds_critical_path(self, partitioner):
        from repro.wami.graph import WAMI_GRAPH

        weights = {s: partitioner.profiles[s].exec_time_s for s in WamiStage}
        _, critical = WAMI_GRAPH.critical_path(weights)
        estimate = partitioner.estimate_frame_time(partitioner.lpt_allocation(4))
        assert estimate >= critical

    def test_single_tile_estimate_is_serial(self, partitioner):
        allocation = partitioner.lpt_allocation(1)
        estimate = partitioner.estimate_frame_time(allocation)
        total_exec = sum(p.exec_time_s for p in partitioner.profiles.values())
        stall = partitioner.reconfig_stall_s(allocation.tiles[0])
        assert estimate == pytest.approx(total_exec + 12 * stall, rel=0.01)

    def test_best_allocation_beats_or_ties_candidates(self, partitioner):
        best, best_time = partitioner.best_allocation(3, random_candidates=50)
        for candidate in (
            partitioner.lpt_allocation(3),
            partitioner.chain_allocation(3),
        ):
            assert best_time <= partitioner.estimate_frame_time(candidate) + 1e-12


class TestSocMaterialization:
    def test_soc_from_allocation_deploys(self, partitioner):
        from repro.core.platform import PrEspPlatform

        allocation, _ = partitioner.best_allocation(3, random_candidates=20)
        config = soc_from_allocation("auto_soc", allocation)
        assert len(config.reconfigurable_tiles) == 3
        report = PrEspPlatform().deploy_wami(config, frames=1)
        assert report.seconds_per_frame > 0
        assert not report.software_stages  # full coverage -> no sw fallback

    def test_paper_allocation_round_trip(self):
        from repro.core.designs import WAMI_TILE_ALLOCATION

        groups = tuple(
            tuple(WamiStage.from_index(i) for i in indexes)
            for indexes in WAMI_TILE_ALLOCATION["soc_z"]
        )
        allocation = Allocation(tiles=groups)
        assert allocation.indexes() == WAMI_TILE_ALLOCATION["soc_z"]
