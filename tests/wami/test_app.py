"""Tests for the WAMI application driver (golden run + SoC lowering)."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.wami.app import WamiApplication
from repro.wami.data import synthetic_bayer_sequence
from repro.wami.graph import WAMI_GRAPH, WamiStage


@pytest.fixture(scope="module")
def app():
    return WamiApplication()


class TestGoldenRun:
    def test_processes_all_frames(self, app):
        frames, _, _ = synthetic_bayer_sequence(num_frames=3, size=32, num_movers=0)
        result = app.golden_run(frames, lk_iterations=10)
        assert result.num_frames == 3
        assert len(result.masks) == 3

    def test_registration_tracks_ground_truth(self, app):
        frames, truth, _ = synthetic_bayer_sequence(
            num_frames=3, size=48, drift_px_per_frame=1.0, num_movers=0, seed=12
        )
        result = app.golden_run(frames, lk_iterations=40)
        # Translation components of the recovered warps track the truth.
        for estimated, expected in zip(result.params[1:], truth[1:]):
            assert np.abs(estimated[4:] - expected[4:]).max() < 0.5

    def test_movers_flagged(self, app):
        frames, _, movers = synthetic_bayer_sequence(
            num_frames=4, size=48, drift_px_per_frame=0.5, num_movers=2, seed=2
        )
        result = app.golden_run(frames, lk_iterations=30)
        # At least one late-frame mover position lands in the mask.
        late = [m for m in movers if m.frame_index >= 2]
        hits = 0
        for truth in late:
            mask = result.masks[truth.frame_index]
            r, c = int(truth.row), int(truth.col)
            window = mask[max(0, r - 2) : r + 3, max(0, c - 2) : c + 3]
            hits += bool(window.any())
        assert hits >= max(1, len(late) // 2)

    def test_empty_input_rejected(self, app):
        with pytest.raises(ConfigurationError):
            app.golden_run([])


class TestSocLowering:
    def test_tasks_cover_every_stage(self, app, socy):
        tasks = app.tasks_for_soc(socy)
        assert {t.name for t in tasks} == {s.kernel_name for s in WamiStage}

    def test_dependencies_mirror_graph(self, app, socy):
        tasks = {t.name: t for t in app.tasks_for_soc(socy)}
        for stage in WamiStage:
            deps = set(tasks[stage.kernel_name].deps)
            expected = {p.kernel_name for p in WAMI_GRAPH.predecessors(stage)}
            assert deps == expected

    def test_unmapped_stages_fall_back_to_software(self, app, socy):
        tasks = {t.name: t for t in app.tasks_for_soc(socy)}
        software = app.software_stages(socy)
        # SoC_Y (Table VI) leaves subtract and interp unmapped.
        assert WamiStage.SUBTRACT in software
        assert WamiStage.INTERP in software
        for stage in software:
            task = tasks[stage.kernel_name]
            assert task.tile_name is None
            assert task.duration_s == app.profiles[stage].sw_time_s

    def test_mapped_stages_use_hw_times(self, app, socy):
        tasks = {t.name: t for t in app.tasks_for_soc(socy)}
        placement = app.tile_of_stage(socy)
        for stage, tile in placement.items():
            if tile is not None:
                assert tasks[stage.kernel_name].duration_s == app.profiles[stage].exec_time_s

    def test_duplicate_mapping_rejected(self, app):
        from repro.soc.config import SocConfig
        from repro.soc.tiles import ReconfigurableTile, Tile, TileKind
        from repro.wami.accelerators import wami_ips

        cfg = SocConfig.assemble(
            "dup",
            "vc707",
            2,
            3,
            [
                Tile(kind=TileKind.CPU, name="cpu0"),
                Tile(kind=TileKind.MEM, name="mem0"),
                Tile(kind=TileKind.AUX, name="aux0"),
                ReconfigurableTile(name="rt0", modes=wami_ips([1])),
                ReconfigurableTile(name="rt1", modes=wami_ips([1])),
            ],
        )
        with pytest.raises(ConfigurationError, match="two tiles"):
            app.tile_of_stage(cfg)

    def test_mode_power_and_task_modes(self, app):
        power = app.mode_power_w()
        modes = app.task_modes()
        assert set(power) == set(modes)
        assert all(p > 0 for p in power.values())
