"""Hypothesis property tests for the WAMI kernels."""

import numpy as np
from hypothesis import given, settings, strategies as st
from hypothesis.extra import numpy as hnp

from repro.wami.kernels import (
    GmmState,
    change_detection,
    debayer,
    gradient,
    grayscale,
    hessian,
    matrix_solve,
    sd_update,
    steepest_descent,
    subtract,
    warp,
)


def images(min_side=8, max_side=24):
    side = st.integers(min_side // 2, max_side // 2).map(lambda h: 2 * h)
    return side.flatmap(
        lambda n: hnp.arrays(
            dtype=np.float64,
            shape=(n, n),
            elements=st.floats(min_value=0.0, max_value=255.0, width=64),
        )
    )


class TestDebayerProperties:
    @settings(max_examples=30, deadline=None)
    @given(images())
    def test_output_within_input_hull(self, bayer):
        rgb = debayer(bayer)
        assert rgb.min() >= bayer.min() - 1e-9
        assert rgb.max() <= bayer.max() + 1e-9

    @settings(max_examples=30, deadline=None)
    @given(images(), st.floats(min_value=0.1, max_value=4.0))
    def test_linearity_under_scaling(self, bayer, scale):
        scaled = debayer(bayer * scale)
        assert np.allclose(scaled, debayer(bayer) * scale, atol=1e-6)


class TestGrayscaleProperties:
    @settings(max_examples=30, deadline=None)
    @given(images())
    def test_gray_of_gray_stack_is_identity(self, img):
        rgb = np.stack([img, img, img], axis=-1)
        assert np.allclose(grayscale(rgb), img)

    @settings(max_examples=30, deadline=None)
    @given(images())
    def test_range_preserved(self, img):
        rgb = np.stack([img, img, img], axis=-1)
        gray = grayscale(rgb)
        assert gray.min() >= img.min() - 1e-9
        assert gray.max() <= img.max() + 1e-9


class TestWarpProperties:
    @settings(max_examples=30, deadline=None)
    @given(images())
    def test_identity_warp(self, img):
        assert np.allclose(warp(img, np.zeros(6)), img)

    @settings(max_examples=30, deadline=None)
    @given(images())
    def test_output_within_hull(self, img):
        p = np.array([0.01, -0.01, 0.02, 0.01, 1.5, -2.0])
        out = warp(img, p)
        assert out.min() >= img.min() - 1e-9
        assert out.max() <= img.max() + 1e-9


class TestLinearKernelsProperties:
    @settings(max_examples=30, deadline=None)
    @given(images())
    def test_gradient_of_constant_is_zero(self, img):
        constant = np.full_like(img, float(img.flat[0]))
        gx, gy = gradient(constant)
        assert np.allclose(gx, 0.0) and np.allclose(gy, 0.0)

    @settings(max_examples=30, deadline=None)
    @given(images())
    def test_subtract_antisymmetric(self, img):
        other = img[::-1, ::-1].copy()
        assert np.allclose(subtract(img, other), -subtract(other, img))

    @settings(max_examples=20, deadline=None)
    @given(images())
    def test_hessian_psd_for_any_image(self, img):
        gx, gy = gradient(img)
        H = hessian(steepest_descent(gx, gy))
        eigenvalues = np.linalg.eigvalsh(H)
        assert eigenvalues.min() >= -1e-6 * max(abs(eigenvalues.max()), 1.0)

    @settings(max_examples=20, deadline=None)
    @given(images())
    def test_sd_update_of_zero_error_is_zero(self, img):
        gx, gy = gradient(img)
        sd = steepest_descent(gx, gy)
        rhs = sd_update(sd, np.zeros_like(img))
        assert np.allclose(rhs, 0.0)

    @settings(max_examples=20, deadline=None)
    @given(st.integers(0, 10_000))
    def test_matrix_solve_residual_small(self, seed):
        rng = np.random.default_rng(seed)
        m = rng.normal(size=(6, 6))
        H = m @ m.T + 0.5 * np.eye(6)
        b = rng.normal(size=6)
        x = matrix_solve(H, b)
        assert np.linalg.norm(H @ x - b) < 1e-6 * max(np.linalg.norm(b), 1.0)


class TestGmmProperties:
    @settings(max_examples=15, deadline=None)
    @given(images(min_side=8, max_side=16), st.integers(1, 5))
    def test_weights_always_normalized(self, img, steps):
        state = GmmState.initialize(img)
        rng = np.random.default_rng(0)
        for _ in range(steps):
            noisy = img + rng.normal(0, 5, img.shape)
            _, state = change_detection(noisy, state)
            assert np.allclose(state.weights.sum(axis=0), 1.0)
            assert (state.variances > 0).all()

    @settings(max_examples=15, deadline=None)
    @given(images(min_side=8, max_side=16))
    def test_mask_is_boolean_and_shaped(self, img):
        state = GmmState.initialize(img)
        mask, _ = change_detection(img, state)
        assert mask.dtype == bool
        assert mask.shape == img.shape
