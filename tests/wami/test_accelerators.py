"""Tests for the reconstructed WAMI accelerator profiles."""

import pytest

from repro.core.metrics import compute_metrics
from repro.errors import ConfigurationError
from repro.wami.accelerators import (
    WAMI_ACCELERATORS,
    WamiAcceleratorProfile,
    wami_accelerator,
    wami_catalog,
    wami_ips,
)
from repro.wami.graph import WamiStage


class TestProfiles:
    def test_every_stage_has_a_profile(self):
        assert set(WAMI_ACCELERATORS) == set(WamiStage)

    def test_lookup_by_index_and_stage(self):
        assert wami_accelerator(8) is wami_accelerator(WamiStage.HESSIAN)

    def test_speedup_is_reasonable(self):
        for profile in WAMI_ACCELERATORS.values():
            assert 5.0 <= profile.speedup < 50.0

    def test_software_slower_than_hardware_enforced(self):
        with pytest.raises(ConfigurationError, match="implausible"):
            WamiAcceleratorProfile(
                stage=WamiStage.DEBAYER,
                luts=1000,
                bram=1,
                dsp=1,
                exec_time_s=1.0,
                sw_time_s=0.5,
                dynamic_power_w=0.5,
            )

    def test_as_ip_preserves_name_and_size(self):
        profile = wami_accelerator(WamiStage.WARP)
        ip = profile.as_ip()
        assert ip.name == "warp"
        assert ip.luts == profile.luts

    def test_catalog_keys(self):
        catalog = wami_catalog()
        assert set(catalog) == {s.kernel_name for s in WamiStage}

    def test_wami_ips_order(self):
        ips = wami_ips([4, 8, 10, 9])
        assert [ip.name for ip in ips] == ["warp", "hessian", "lk_flow", "matrix_solve"]


class TestReconstructionConstraints:
    """The LUT sizes were solved against Table IV's published metrics;
    these tests pin the solution."""

    def test_soc_a_class_metrics(self, all_paper_socs):
        m = compute_metrics(all_paper_socs["soc_a"])
        assert m.alpha_av * 100 == pytest.approx(9.2, abs=0.6)
        assert m.gamma == pytest.approx(1.26, abs=0.12)

    def test_soc_b_class_metrics(self, all_paper_socs):
        m = compute_metrics(all_paper_socs["soc_b"])
        assert m.alpha_av * 100 == pytest.approx(4.5, abs=0.6)
        assert m.gamma == pytest.approx(0.6, abs=0.1)

    def test_total_hw_time_is_tens_of_ms(self):
        total = sum(p.exec_time_s for p in WAMI_ACCELERATORS.values())
        assert 0.05 < total < 0.15  # ~85 ms of accelerator work per frame
