"""Numeric correctness tests for the WAMI kernels."""

import numpy as np
import pytest

from repro.wami.kernels import (
    GmmState,
    _coordinate_grid,
    change_detection,
    debayer,
    gradient,
    grayscale,
    hessian,
    interp,
    lk_flow,
    lucas_kanade,
    matrix_solve,
    sd_update,
    steepest_descent,
    subtract,
    warp,
)


def textured(size=48, seed=7):
    rng = np.random.default_rng(seed)
    ys, xs = np.mgrid[0:size, 0:size].astype(float)
    img = np.zeros((size, size))
    for _ in range(12):
        fx, fy = rng.uniform(0.02, 0.15, 2)
        img += rng.uniform(5, 20) * np.cos(2 * np.pi * (fx * xs + fy * ys) + rng.uniform(0, 6))
    return img - img.min()


class TestDebayer:
    def test_constant_image_is_preserved(self):
        bayer = np.full((16, 16), 100.0)
        rgb = debayer(bayer)
        assert np.allclose(rgb, 100.0)

    def test_shape(self):
        assert debayer(np.zeros((8, 10))).shape == (8, 10, 3)

    def test_known_pixels_kept_exactly(self):
        rng = np.random.default_rng(0)
        bayer = rng.uniform(0, 255, (16, 16))
        rgb = debayer(bayer)
        # RGGB: red at even/even, blue at odd/odd.
        assert np.allclose(rgb[0::2, 0::2, 0], bayer[0::2, 0::2])
        assert np.allclose(rgb[1::2, 1::2, 2], bayer[1::2, 1::2])
        assert np.allclose(rgb[0::2, 1::2, 1], bayer[0::2, 1::2])

    def test_odd_dimensions_rejected(self):
        with pytest.raises(ValueError):
            debayer(np.zeros((7, 8)))

    def test_non_2d_rejected(self):
        with pytest.raises(ValueError):
            debayer(np.zeros((4, 4, 3)))

    def test_interpolation_between_known_values(self):
        bayer = np.zeros((8, 8))
        bayer[0::2, 0::2] = 100.0  # red plane
        rgb = debayer(bayer)
        # Red interpolated at a green site must lie within the hull.
        assert 0.0 <= rgb[0, 1, 0] <= 100.0


class TestGrayscale:
    def test_bt601_weights(self):
        rgb = np.zeros((2, 2, 3))
        rgb[..., 0] = 1.0
        assert np.allclose(grayscale(rgb), 0.299)

    def test_white_is_one(self):
        assert np.allclose(grayscale(np.ones((3, 3, 3))), 1.0)

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            grayscale(np.zeros((4, 4)))


class TestGradient:
    def test_linear_ramp(self):
        ys, xs = np.mgrid[0:10, 0:10].astype(float)
        img = 3.0 * xs + 5.0 * ys
        gx, gy = gradient(img)
        assert np.allclose(gx, 3.0)
        assert np.allclose(gy, 5.0)

    def test_requires_2d(self):
        with pytest.raises(ValueError):
            gradient(np.zeros((2, 2, 3)))


class TestWarp:
    def test_identity(self):
        img = textured()
        assert np.allclose(warp(img, np.zeros(6)), img)

    def test_integer_translation(self):
        img = textured()
        p = np.array([0, 0, 0, 0, 3.0, 0.0])  # sample at x+3
        out = warp(img, p)
        assert np.allclose(out[:, :-3], img[:, 3:])

    def test_interp_matches_warp(self):
        img = textured()
        p = np.array([0.01, 0, 0, -0.01, 1.5, -0.5])
        assert np.allclose(interp(img, p), warp(img, p))

    def test_warp_composition_is_consistent(self):
        """warp(img, p∘q) ≈ warp(warp(img, p), q) away from borders."""
        img = textured(64)
        p = np.array([0, 0, 0, 0, 2.0, 1.0])
        q = np.array([0, 0, 0, 0, -1.0, 3.0])
        composed = np.array([0, 0, 0, 0, 1.0, 4.0])
        a = warp(img, composed)[8:-8, 8:-8]
        b = warp(warp(img, p), q)[8:-8, 8:-8]
        assert np.allclose(a, b, atol=1e-6)


class TestLinearAlgebraKernels:
    def test_subtract(self):
        a, b = np.ones((3, 3)), np.full((3, 3), 0.25)
        assert np.allclose(subtract(a, b), 0.75)

    def test_subtract_shape_mismatch(self):
        with pytest.raises(ValueError):
            subtract(np.ones((2, 2)), np.ones((3, 3)))

    def test_steepest_descent_structure(self):
        gx = np.ones((4, 4))
        gy = 2.0 * np.ones((4, 4))
        sd = steepest_descent(gx, gy)
        assert sd.shape == (6, 4, 4)
        assert np.allclose(sd[4], gx)
        assert np.allclose(sd[5], gy)
        ys, xs = np.mgrid[0:4, 0:4].astype(float)
        assert np.allclose(sd[0], xs * gx)
        assert np.allclose(sd[3], ys * gy)

    def test_hessian_is_symmetric_psd(self):
        img = textured()
        gx, gy = gradient(img)
        H = hessian(steepest_descent(gx, gy))
        assert H.shape == (6, 6)
        assert np.allclose(H, H.T)
        eigenvalues = np.linalg.eigvalsh(H)
        assert eigenvalues.min() >= -1e-6 * abs(eigenvalues.max())

    def test_sd_update_matches_manual_sum(self):
        sd = np.arange(6 * 4).reshape(6, 2, 2).astype(float)
        error = np.array([[1.0, 2.0], [3.0, 4.0]])
        rhs = sd_update(sd, error)
        manual = np.array([(sd[k] * error).sum() for k in range(6)])
        assert np.allclose(rhs, manual)

    def test_matrix_solve_recovers_solution(self):
        rng = np.random.default_rng(3)
        m = rng.normal(size=(6, 6))
        H = m @ m.T + np.eye(6)
        x = rng.normal(size=6)
        assert np.allclose(matrix_solve(H, H @ x), x, atol=1e-6)

    def test_matrix_solve_validates_shape(self):
        with pytest.raises(ValueError):
            matrix_solve(np.eye(3), np.ones(3))

    def test_lk_flow_identity_update(self):
        p = np.array([0.01, 0.0, 0.0, -0.02, 5.0, -3.0])
        assert np.allclose(lk_flow(p, np.zeros(6)), p)

    def test_lk_flow_inverse_compositional(self):
        """Updating by dp then extracting the matrix must equal
        M(p) @ inv(M(dp))."""
        from repro.wami.kernels import _params_to_matrix

        p = np.array([0.02, -0.01, 0.03, 0.01, 2.0, -1.0])
        dp = np.array([0.001, 0.002, -0.001, 0.0, 0.1, 0.2])
        updated = lk_flow(p, dp)
        expected = _params_to_matrix(p) @ np.linalg.inv(_params_to_matrix(dp))
        assert np.allclose(_params_to_matrix(updated), expected)


class TestLucasKanade:
    @staticmethod
    def _oracle_error(img, frame, true_p, interior):
        """Residual of registering with the *exact* inverse parameters.

        Double bilinear resampling leaves an irreducible error; LK can
        at best match it."""
        from repro.wami.kernels import _matrix_to_params, _params_to_matrix

        p_oracle = _matrix_to_params(np.linalg.inv(_params_to_matrix(true_p)))
        oracle = warp(frame, p_oracle)
        return np.abs(oracle[interior] - img[interior]).mean(), p_oracle

    @pytest.mark.parametrize("shift", [0.5, 1.0, 2.0])
    def test_recovers_translation(self, shift):
        img = textured(64, seed=11)
        true_p = np.array([0, 0, 0, 0, shift, shift])
        frame = warp(img, true_p)
        interior = (slice(8, -8), slice(8, -8))
        p = lucas_kanade(img, frame, iterations=40)
        registered = warp(frame, p)
        err = np.abs(registered[interior] - img[interior]).mean()
        oracle_err, p_oracle = self._oracle_error(img, frame, true_p, interior)
        assert err < 1.25 * oracle_err + 0.05
        # Sub-pixel parameter accuracy on the translation components.
        assert np.abs(p[4:] - p_oracle[4:]).max() < 0.2

    def test_recovers_small_affine(self):
        img = textured(64, seed=5)
        true_p = np.array([0.01, -0.005, 0.008, -0.01, 1.0, -0.8])
        frame = warp(img, true_p)
        interior = (slice(10, -10), slice(10, -10))
        p = lucas_kanade(img, frame, iterations=60)
        registered = warp(frame, p)
        err = np.abs(registered[interior] - img[interior]).mean()
        oracle_err, _ = self._oracle_error(img, frame, true_p, interior)
        baseline = np.abs(frame[interior] - img[interior]).mean()
        assert err < 1.25 * oracle_err + 0.05
        assert err < 0.4 * baseline

    def test_identity_when_aligned(self):
        img = textured(48)
        p = lucas_kanade(img, img, iterations=5)
        assert np.linalg.norm(p) < 1e-3

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            lucas_kanade(np.zeros((4, 4)), np.zeros((5, 5)))


class TestChangeDetection:
    def test_static_scene_quiet(self):
        frame = textured(32)
        state = GmmState.initialize(frame)
        mask = None
        for _ in range(5):
            mask, state = change_detection(frame, state)
        assert mask.mean() < 0.02

    def test_sudden_object_detected(self):
        frame = textured(32)
        state = GmmState.initialize(frame)
        for _ in range(5):
            _, state = change_detection(frame, state)
        changed = frame.copy()
        changed[10:16, 10:16] += 120.0
        mask, _ = change_detection(changed, state)
        assert mask[10:16, 10:16].mean() > 0.8
        outside = mask.copy()
        outside[8:18, 8:18] = False
        assert outside.mean() < 0.05

    def test_background_adapts_to_persistent_change(self):
        frame = textured(32)
        state = GmmState.initialize(frame)
        changed = frame + 60.0
        detections = []
        mask = None
        for _ in range(60):
            mask, state = change_detection(changed, state, learning_rate=0.2)
            detections.append(mask.mean())
        assert detections[-1] < detections[0] or detections[-1] < 0.05

    def test_weights_stay_normalized(self):
        frame = textured(16)
        state = GmmState.initialize(frame)
        for _ in range(10):
            _, state = change_detection(frame + np.random.default_rng(1).normal(0, 3, frame.shape), state)
        assert np.allclose(state.weights.sum(axis=0), 1.0)

    def test_shape_mismatch_rejected(self):
        state = GmmState.initialize(np.zeros((8, 8)))
        with pytest.raises(ValueError):
            change_detection(np.zeros((4, 4)), state)

    def test_functional_state_update(self):
        frame = textured(16)
        state = GmmState.initialize(frame)
        before = state.means.copy()
        change_detection(frame + 10, state)
        assert np.allclose(state.means, before)  # input state untouched


class TestCoordinateGridCache:
    """The integer sample grid is hoisted out of the LK iterations."""

    def test_same_shape_reuses_the_grid(self):
        ys1, xs1 = _coordinate_grid((24, 32))
        ys2, xs2 = _coordinate_grid((24, 32))
        assert ys1 is ys2 and xs1 is xs2

    def test_distinct_shapes_get_distinct_grids(self):
        assert _coordinate_grid((8, 8))[0] is not _coordinate_grid((8, 9))[0]

    def test_grid_matches_mgrid(self):
        ys, xs = _coordinate_grid((5, 7))
        ref_ys, ref_xs = np.mgrid[0:5, 0:7].astype(np.float64)
        assert np.array_equal(ys, ref_ys)
        assert np.array_equal(xs, ref_xs)
        assert ys.dtype == np.float64

    def test_cached_grids_are_immutable(self):
        ys, xs = _coordinate_grid((6, 6))
        with pytest.raises(ValueError):
            ys[0, 0] = 99.0
        with pytest.raises(ValueError):
            xs[0, 0] = 99.0

    def test_warp_and_steepest_descent_still_agree(self):
        """The consumers of the shared grid keep their contract."""
        img = textured(20)
        identity = np.zeros(6)
        assert np.allclose(warp(img, identity), img)
        gx, gy = gradient(img)
        sd = steepest_descent(gx, gy)
        ys, xs = _coordinate_grid(img.shape)
        assert np.allclose(sd[0], gx * xs)
        assert np.allclose(sd[5], gy)
