"""Analytic NoC model vs the cycle-level simulator.

The analytic backend replaced the flit-level replay on the PRC's fetch
path, so the contract is tight: at zero load the closed form must match
the cycle simulator *exactly* (the fig4 deployments serialize fetches
on the single ICAP, so zero load is their actual operating point), and
on contended fig4-style traffic a calibrated model must stay within
:data:`~repro.noc.analytic.ANALYTIC_TOLERANCE` of the replay. The
vectorized batch path of :class:`NocSimulator` is pinned record-for-
record against the sequential reference here too.
"""

import random

import pytest

from repro.core.designs import wami_deployment_socs
from repro.noc import (
    ANALYTIC_TOLERANCE,
    AnalyticNocModel,
    Mesh,
    NocModel,
    NocSimulator,
    Packet,
    cycle_transfer_latency_cycles,
)
from repro.noc.traffic import wami_transfer_demands
from repro.sim.kernel import Simulator
from repro.soc.tiles import TileKind

#: Representative partial-bitstream burst sizes (bytes): tiny control
#: packets up to multi-MB uncompressed partials.
FETCH_SIZES = [1, 7, 8, 9, 4096, 123_457, 3_000_000]


def fig4_fetch_endpoints():
    """(mesh, mem, aux) of each fig4 deployment SoC's fetch path."""
    for name, config in sorted(wami_deployment_socs().items()):
        mesh = Mesh(rows=config.rows, cols=config.cols)
        mem = config.position_of(config.tiles_of_kind(TileKind.MEM)[0].name)
        aux = config.position_of(config.tiles_of_kind(TileKind.AUX)[0].name)
        yield name, config, mesh, mem, aux


class TestZeroLoadExactness:
    def test_matches_cycle_simulator_on_fig4_fetch_paths(self):
        for name, _config, mesh, mem, aux in fig4_fetch_endpoints():
            model = AnalyticNocModel(mesh)
            for size in FETCH_SIZES:
                analytic = model.latency_cycles(mem, aux, size)
                cycle = cycle_transfer_latency_cycles(mesh, mem, aux, size)
                assert analytic == cycle, (name, size)

    def test_matches_mesh_closed_form_in_seconds(self):
        for _name, _config, mesh, mem, aux in fig4_fetch_endpoints():
            model = AnalyticNocModel(mesh)
            for size in FETCH_SIZES:
                assert model.transfer_time_s(mem, aux, size) == mesh.transfer_time_s(
                    mem, aux, size
                )

    def test_local_delivery_matches(self):
        mesh = Mesh(rows=2, cols=2)
        model = AnalyticNocModel(mesh)
        for size in FETCH_SIZES:
            assert model.latency_cycles((0, 0), (0, 0), size) == (
                cycle_transfer_latency_cycles(mesh, (0, 0), (0, 0), size)
            )


class TestCalibration:
    def fig4_packets(self, config, mesh):
        """The per-frame WAMI transfers as simultaneous DMA packets."""
        positions = {}
        index = 0
        packets = []
        for demand in wami_transfer_demands():
            src = positions.setdefault(
                demand.producer_task, (index % mesh.rows, index % mesh.cols)
            )
            index += 1
            dst = positions.setdefault(
                demand.consumer_task, (index % mesh.rows, index % mesh.cols)
            )
            index += 1
            packets.append(
                Packet(
                    packet_id=len(packets),
                    src=src,
                    dst=dst,
                    plane=0,
                    payload_bytes=demand.payload_bytes,
                )
            )
        return packets

    def test_calibrated_model_within_tolerance_of_contended_replay(self):
        _name, config, mesh, _mem, _aux = next(iter(fig4_fetch_endpoints()))
        simulator = NocSimulator(mesh)
        for packet in self.fig4_packets(config, mesh):
            simulator.inject(packet)  # all at cycle 0: real contention
        records = [r for r in simulator.run() if not r.packet.is_local]
        assert any(r.stall_cycles > 0 for r in records)
        model = AnalyticNocModel.calibrated(mesh, records)
        assert model.contention_factor > 0
        predicted_total = sum(
            model.latency_cycles(
                record.packet.src, record.packet.dst, record.packet.payload_bytes
            )
            for record in records
        )
        measured_total = sum(record.latency_cycles for record in records)
        # The calibrated closed form tracks the replay in aggregate.
        assert (
            abs(predicted_total - measured_total) / measured_total
            <= ANALYTIC_TOLERANCE
        )

    def test_uncontended_records_calibrate_to_zero(self):
        mesh = Mesh(rows=3, cols=3)
        simulator = NocSimulator(mesh)
        simulator.inject(
            Packet(packet_id=0, src=(0, 0), dst=(2, 2), plane=0, payload_bytes=4096)
        )
        model = AnalyticNocModel.calibrated(mesh, simulator.run())
        assert model.contention_factor == 0.0

    def test_negative_contention_factor_rejected(self):
        from repro.errors import NocError

        with pytest.raises(NocError):
            AnalyticNocModel(Mesh(rows=2, cols=2), contention_factor=-0.1)


class TestVectorizedSimulator:
    def random_batch(self, rng, mesh, count, planes=2):
        packets = []
        for index in range(count):
            src = (rng.randrange(mesh.rows), rng.randrange(mesh.cols))
            dst = (rng.randrange(mesh.rows), rng.randrange(mesh.cols))
            packets.append(
                (
                    Packet(
                        packet_id=index,
                        src=src,
                        dst=dst,
                        plane=rng.randrange(planes),
                        payload_bytes=rng.randrange(0, 10_000),
                    ),
                    rng.randrange(0, 50),
                )
            )
        return packets

    @pytest.mark.parametrize("count", [1, 4, 24])
    def test_matches_sequential_reference(self, count):
        rng = random.Random(count)
        mesh = Mesh(rows=4, cols=4, planes=2)
        batch = self.random_batch(rng, mesh, count)
        fast = NocSimulator(mesh)
        reference = NocSimulator(mesh, vectorize=False)
        for packet, at in batch:
            fast.inject(packet, at_cycle=at)
            reference.inject(packet, at_cycle=at)
        assert fast.run() == reference.run()
        assert fast._link_free == reference._link_free

    def test_disjoint_paths_take_the_fast_path_identically(self):
        mesh = Mesh(rows=4, cols=4, planes=2)
        # Row-local transfers on distinct rows/planes: link-disjoint by
        # construction, so the batch vectorizes — and must still update
        # link bookkeeping so a later contended batch sees busy links.
        batch = [
            Packet(packet_id=0, src=(0, 0), dst=(0, 3), plane=0, payload_bytes=512),
            Packet(packet_id=1, src=(1, 0), dst=(1, 3), plane=0, payload_bytes=512),
            Packet(packet_id=2, src=(0, 0), dst=(0, 3), plane=1, payload_bytes=512),
            Packet(packet_id=3, src=(2, 2), dst=(2, 2), plane=0, payload_bytes=64),
        ]
        fast = NocSimulator(mesh)
        reference = NocSimulator(mesh, vectorize=False)
        for packet in batch:
            fast.inject(packet)
            reference.inject(packet)
        assert fast.run() == reference.run()
        assert fast._link_free == reference._link_free
        # Second wave reusing the now-busy links: the fast simulator
        # must fall back to the exact sequential loop.
        rerun = Packet(packet_id=4, src=(0, 0), dst=(0, 3), plane=0, payload_bytes=512)
        fast.inject(rerun, at_cycle=1)
        reference.inject(rerun, at_cycle=1)
        # run() returns the cumulative record list in delivery order.
        fast_records = fast.run()
        assert fast_records == reference.run()
        stalled = [r for r in fast_records if r.packet.packet_id == 4]
        assert stalled and stalled[0].stall_cycles > 0


class TestPrcBackends:
    def make_prc(self, noc_model):
        from repro.runtime.prc import PrcDevice

        sim = Simulator()
        mesh = Mesh(rows=3, cols=3)
        return PrcDevice(
            sim, mesh, mem_position=(0, 1), aux_position=(2, 2), noc_model=noc_model
        )

    def test_cycle_backend_equals_analytic_at_zero_load(self):
        analytic = self.make_prc(NocModel.ANALYTIC)
        cycle = self.make_prc(NocModel.CYCLE)
        for size in FETCH_SIZES:
            assert analytic.transfer_seconds(size) == cycle.transfer_seconds(size)

    def test_transfer_window_cached_per_size(self):
        prc = self.make_prc(NocModel.ANALYTIC)
        first = prc.transfer_seconds(4096)
        assert prc.transfer_seconds(4096) == first
        assert 4096 in prc._transfer_cache


class TestPlatformWiring:
    def test_cycle_deployment_matches_analytic_deployment(self):
        from repro import api

        config = wami_deployment_socs()["soc_y"]
        default = api.platform()
        crosscheck = api.platform(noc_model=NocModel.CYCLE)
        baseline = api.deploy(config, frames=2, platform=default)
        checked = api.deploy(config, frames=2, platform=crosscheck)
        assert checked.timeline.makespan_s == baseline.timeline.makespan_s
        assert checked.reconfigurations == baseline.reconfigurations
