"""Tests for XY routing."""

import pytest
from hypothesis import given, strategies as st

from repro.noc.router import Port, Router, xy_route


positions = st.tuples(st.integers(0, 7), st.integers(0, 7))


class TestXyRoute:
    def test_same_position(self):
        assert xy_route((1, 1), (1, 1)) == [(1, 1)]

    def test_horizontal_first(self):
        route = xy_route((0, 0), (2, 2))
        assert route == [(0, 0), (0, 1), (0, 2), (1, 2), (2, 2)]

    def test_westward(self):
        assert xy_route((0, 2), (0, 0)) == [(0, 2), (0, 1), (0, 0)]

    @given(positions, positions)
    def test_route_length_is_manhattan(self, src, dst):
        route = xy_route(src, dst)
        manhattan = abs(src[0] - dst[0]) + abs(src[1] - dst[1])
        assert len(route) == manhattan + 1

    @given(positions, positions)
    def test_route_endpoints(self, src, dst):
        route = xy_route(src, dst)
        assert route[0] == src and route[-1] == dst

    @given(positions, positions)
    def test_route_steps_are_unit_hops(self, src, dst):
        route = xy_route(src, dst)
        for a, b in zip(route, route[1:]):
            assert abs(a[0] - b[0]) + abs(a[1] - b[1]) == 1

    @given(positions, positions)
    def test_route_never_revisits(self, src, dst):
        route = xy_route(src, dst)
        assert len(set(route)) == len(route)

    @given(positions, positions)
    def test_dimension_order(self, src, dst):
        """Once the row changes, the column never changes again."""
        route = xy_route(src, dst)
        row_started = False
        for a, b in zip(route, route[1:]):
            if a[0] != b[0]:
                row_started = True
            if row_started:
                assert a[1] == b[1]


class TestRouter:
    def test_local_port(self):
        router = Router(row=1, col=1, plane=0)
        assert router.output_port((1, 1)) is Port.LOCAL

    def test_xy_priority_column_first(self):
        router = Router(row=0, col=0, plane=0)
        assert router.output_port((3, 3)) is Port.EAST

    def test_row_movement_after_column_aligned(self):
        router = Router(row=0, col=3, plane=0)
        assert router.output_port((3, 3)) is Port.SOUTH
        assert Router(row=5, col=3, plane=0).output_port((3, 3)) is Port.NORTH

    def test_next_position_follows_port(self):
        router = Router(row=2, col=2, plane=0)
        assert router.next_position((2, 5)) == (2, 3)
        assert router.next_position((0, 2)) == (1, 2)

    def test_next_position_at_destination_raises(self):
        from repro.errors import NocError

        with pytest.raises(NocError):
            Router(row=0, col=0, plane=0).next_position((0, 0))
