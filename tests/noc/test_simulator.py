"""Tests for the contention-aware NoC transfer simulator."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import NocError
from repro.noc.mesh import Mesh
from repro.noc.packet import Packet
from repro.noc.simulator import NocSimulator


def make_sim(rows=4, cols=4, planes=2):
    return NocSimulator(Mesh(rows, cols, planes=planes))


class TestBasics:
    def test_single_packet_matches_zero_load(self):
        sim = make_sim()
        pkt = Packet(0, (0, 0), (2, 3), 0, 256)
        sim.inject(pkt)
        (record,) = sim.run()
        assert record.latency_cycles == sim.mesh.zero_load_latency_cycles(pkt)

    def test_local_packet_delivery(self):
        sim = make_sim()
        pkt = Packet(0, (1, 1), (1, 1), 0, 64)
        sim.inject(pkt)
        (record,) = sim.run()
        assert record.links_used == ()
        assert record.latency_cycles > 0

    def test_invalid_plane_rejected(self):
        sim = make_sim(planes=1)
        with pytest.raises(NocError):
            sim.inject(Packet(0, (0, 0), (1, 1), plane=5, payload_bytes=8))

    def test_negative_injection_cycle_rejected(self):
        sim = make_sim()
        with pytest.raises(NocError):
            sim.inject(Packet(0, (0, 0), (1, 1), 0, 8), at_cycle=-1)

    def test_off_mesh_position_rejected(self):
        sim = make_sim(rows=2, cols=2)
        with pytest.raises(NocError):
            sim.inject(Packet(0, (0, 0), (5, 5), 0, 8))


class TestContention:
    def test_shared_link_serializes(self):
        sim = make_sim()
        a = Packet(0, (0, 0), (0, 3), 0, 512)
        b = Packet(1, (0, 0), (0, 3), 0, 512)
        sim.inject(a)
        sim.inject(b)
        records = sim.run()
        solo = sim.mesh.zero_load_latency_cycles(a)
        latencies = sorted(r.latency_cycles for r in records)
        assert latencies[0] == solo
        assert latencies[1] > solo  # queued behind the first packet

    def test_different_planes_do_not_contend(self):
        sim = make_sim(planes=2)
        a = Packet(0, (0, 0), (0, 3), 0, 512)
        b = Packet(1, (0, 0), (0, 3), 1, 512)
        sim.inject(a)
        sim.inject(b)
        records = sim.run()
        solo = sim.mesh.zero_load_latency_cycles(a)
        assert all(r.latency_cycles == solo for r in records)

    def test_disjoint_paths_do_not_contend(self):
        sim = make_sim()
        a = Packet(0, (0, 0), (0, 1), 0, 512)
        b = Packet(1, (3, 3), (3, 2), 0, 512)
        sim.inject(a)
        sim.inject(b)
        records = sim.run()
        for record in records:
            assert record.latency_cycles == sim.mesh.zero_load_latency_cycles(
                record.packet
            )

    def test_no_link_overlap_invariant(self):
        """No two packets may hold the same (link, plane) at once —
        check via reservation windows reconstructed from delivery."""
        sim = make_sim()
        for i in range(10):
            sim.inject(Packet(i, (0, 0), (0, 3), 0, 128), at_cycle=i)
        records = sim.run()
        # All packets share the same path; deliveries must be strictly
        # spaced by at least the packet serialization latency.
        times = sorted(r.delivered_at for r in records)
        min_gap = records[0].packet.size_flits
        for earlier, later in zip(times, times[1:]):
            assert later - earlier >= min_gap

    @settings(max_examples=25, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.tuples(st.integers(0, 3), st.integers(0, 3)),
                st.tuples(st.integers(0, 3), st.integers(0, 3)),
                st.integers(0, 1),
                st.integers(0, 512),
                st.integers(0, 50),
            ),
            min_size=1,
            max_size=12,
        )
    )
    def test_every_packet_delivered_no_earlier_than_zero_load(self, specs):
        sim = make_sim()
        for index, (src, dst, plane, nbytes, cycle) in enumerate(specs):
            sim.inject(Packet(index, src, dst, plane, nbytes), at_cycle=cycle)
        records = sim.run()
        assert len(records) == len(specs)
        for record in records:
            floor = sim.mesh.zero_load_latency_cycles(record.packet)
            assert record.latency_cycles >= floor


class TestThroughput:
    def test_throughput_zero_without_traffic(self):
        assert make_sim().aggregate_throughput_bytes_per_cycle() == 0.0

    def test_throughput_positive_with_traffic(self):
        sim = make_sim()
        for i in range(4):
            sim.inject(Packet(i, (0, 0), (1, 1), 0, 256), at_cycle=0)
        sim.run()
        assert sim.aggregate_throughput_bytes_per_cycle() > 0
