"""Tests for mesh construction and analytic latency."""

import pytest

from repro.errors import NocError
from repro.noc.mesh import Mesh
from repro.noc.packet import FLIT_BYTES, HEADER_FLITS, Packet


class TestConstruction:
    def test_bad_dimensions(self):
        with pytest.raises(NocError):
            Mesh(0, 3)

    def test_bad_planes(self):
        with pytest.raises(NocError):
            Mesh(2, 2, planes=0)

    def test_router_lookup(self):
        mesh = Mesh(2, 3, planes=2)
        router = mesh.router(1, 2, plane=1)
        assert (router.row, router.col, router.plane) == (1, 2, 1)

    def test_missing_router(self):
        with pytest.raises(NocError):
            Mesh(2, 2).router(5, 5)

    def test_check_position(self):
        mesh = Mesh(3, 3)
        with pytest.raises(NocError):
            mesh.check_position((3, 0))


class TestPacket:
    def test_size_flits_rounds_up(self):
        pkt = Packet(packet_id=0, src=(0, 0), dst=(0, 1), plane=0, payload_bytes=9)
        assert pkt.size_flits == HEADER_FLITS + 2

    def test_zero_payload_has_header_only(self):
        pkt = Packet(packet_id=0, src=(0, 0), dst=(0, 1), plane=0, payload_bytes=0)
        assert pkt.size_flits == HEADER_FLITS

    def test_negative_payload_rejected(self):
        with pytest.raises(NocError):
            Packet(packet_id=0, src=(0, 0), dst=(0, 1), plane=0, payload_bytes=-1)

    def test_is_local(self):
        assert Packet(0, (1, 1), (1, 1), 0, 8).is_local


class TestLatency:
    def test_hops_is_manhattan(self):
        mesh = Mesh(3, 3)
        assert mesh.hops((0, 0), (2, 2)) == 4

    def test_zero_load_latency_structure(self):
        mesh = Mesh(3, 3, pipeline_cycles=4)
        pkt = Packet(0, (0, 0), (0, 2), 0, payload_bytes=8 * FLIT_BYTES)
        # 2 hops -> (2+1)*4 head cycles + (1+8-1) serialization
        assert mesh.zero_load_latency_cycles(pkt) == 3 * 4 + 8

    def test_latency_monotone_in_distance(self):
        mesh = Mesh(4, 4)
        near = Packet(0, (0, 0), (0, 1), 0, 64)
        far = Packet(1, (0, 0), (3, 3), 0, 64)
        assert mesh.zero_load_latency_cycles(far) > mesh.zero_load_latency_cycles(near)

    def test_latency_monotone_in_size(self):
        mesh = Mesh(4, 4)
        small = Packet(0, (0, 0), (1, 1), 0, 64)
        large = Packet(1, (0, 0), (1, 1), 0, 64 * 100)
        assert mesh.zero_load_latency_cycles(large) > mesh.zero_load_latency_cycles(small)

    def test_seconds_scale_with_clock(self):
        fast = Mesh(2, 2, clock_hz=100e6)
        slow = Mesh(2, 2, clock_hz=50e6)
        pkt = Packet(0, (0, 0), (1, 1), 0, 1024)
        assert slow.zero_load_latency_s(pkt) == pytest.approx(
            2 * fast.zero_load_latency_s(pkt)
        )

    def test_large_transfer_approaches_link_bandwidth(self):
        mesh = Mesh(2, 2, clock_hz=78e6)
        nbytes = 10 * 1024 * 1024
        t = mesh.transfer_time_s((0, 0), (1, 1), nbytes)
        ideal = nbytes / mesh.link_bandwidth_bytes_per_s()
        assert t == pytest.approx(ideal, rel=0.01)

    def test_negative_transfer_rejected(self):
        with pytest.raises(NocError):
            Mesh(2, 2).transfer_time_s((0, 0), (1, 1), -1)
