"""Tests for application-level NoC traffic analysis."""

import pytest

from repro.errors import NocError
from repro.noc.mesh import Mesh
from repro.noc.traffic import (
    TransferDemand,
    analyze_traffic,
    wami_traffic_report,
    wami_transfer_demands,
)


class TestTransferDemand:
    def test_negative_payload_rejected(self):
        with pytest.raises(NocError):
            TransferDemand("a", "b", -1)


class TestAnalyze:
    def test_transfer_staged_through_memory(self, small_soc):
        demands = [TransferDemand("p", "c", 1000)]
        positions = {"p": (1, 1), "c": (1, 1)}  # both on rt0
        report = analyze_traffic(small_soc, demands, positions)
        # Even same-tile transfers round-trip through DDR.
        assert report.ddr_bytes == 2000
        assert report.total_bytes == 2000

    def test_link_accumulation(self, small_soc):
        demands = [TransferDemand("p", "c", 1000)] * 3
        positions = {"p": (1, 1), "c": (0, 0)}
        report = analyze_traffic(small_soc, demands, positions)
        assert report.max_link_bytes() == 3000

    def test_software_task_maps_to_cpu(self, small_soc):
        demands = [TransferDemand("hw", "sw", 500)]
        positions = {"hw": (1, 1), "sw": None}
        report = analyze_traffic(small_soc, demands, positions)
        assert report.total_bytes == 1000

    def test_hottest_links_sorted(self, small_soc):
        demands = [
            TransferDemand("a", "b", 5000),
            TransferDemand("b", "a", 100),
        ]
        positions = {"a": (1, 1), "b": (0, 0)}
        report = analyze_traffic(small_soc, demands, positions)
        hottest = report.hottest_links(3)
        values = [v for _link, v in hottest]
        assert values == sorted(values, reverse=True)

    def test_utilization(self, small_soc):
        demands = [TransferDemand("p", "c", 10_000)]
        positions = {"p": (1, 1), "c": (0, 0)}
        report = analyze_traffic(small_soc, demands, positions)
        mesh = Mesh(small_soc.rows, small_soc.cols, clock_hz=78e6)
        utilization = report.utilization_at(frame_time_s=0.1, mesh=mesh)
        assert 0.0 < utilization < 1.0

    def test_utilization_rejects_bad_time(self, small_soc):
        report = analyze_traffic(small_soc, [], {})
        mesh = Mesh(small_soc.rows, small_soc.cols)
        with pytest.raises(NocError):
            report.utilization_at(0.0, mesh)


class TestWamiTraffic:
    def test_demands_cover_all_edges(self):
        from repro.wami.graph import WAMI_EDGES

        assert len(wami_transfer_demands()) == len(WAMI_EDGES)

    def test_image_edges_dominate(self):
        demands = {
            (d.producer_task, d.consumer_task): d.payload_bytes
            for d in wami_transfer_demands()
        }
        assert demands[("hessian", "matrix_solve")] < 1024
        assert demands[("debayer", "grayscale")] >= 512 * 512 * 4

    def test_reports_for_deployment_socs(self):
        from repro.core.designs import wami_deployment_socs

        reports = {
            name: wami_traffic_report(cfg, frame_pixels=64 * 64)
            for name, cfg in wami_deployment_socs().items()
        }
        for report in reports.values():
            assert report.total_bytes > 0
            assert report.max_link_bytes() > 0
        # Total DDR traffic is allocation-independent (every edge
        # round-trips through memory regardless of placement).
        totals = {r.total_bytes for r in reports.values()}
        assert len(totals) == 1

    def test_placement_changes_link_distribution(self):
        from repro.core.designs import wami_soc_x, wami_soc_z

        x_report = wami_traffic_report(wami_soc_x(), frame_pixels=64 * 64)
        z_report = wami_traffic_report(wami_soc_z(), frame_pixels=64 * 64)
        assert x_report.link_bytes != z_report.link_bytes
