"""Vectorized placer vs the scalar reference, output for output.

The numpy ``FloraFloorplanner._place_one`` is an optimization, not a
behavior change: for every demand set the plan it produces must be
*identical* — same pblocks, same order, same relaxation outcomes — to
the original two-pointer sweep kept alive as
:class:`~repro.floorplan.flora.ReferenceFloraFloorplanner`. These tests
pin that equivalence over seeded random demand sets on every catalog
part, including demand mixes dense enough to walk the relaxation
ladder and ones that fail outright.
"""

import random

import pytest

from repro.errors import FloorplanError
from repro.fabric.parts import PART_CATALOG, make_device
from repro.fabric.resources import ResourceVector
from repro.floorplan.flora import FloraFloorplanner, ReferenceFloraFloorplanner

BOARDS = sorted(PART_CATALOG)


def random_demands(rng, device, count, utilization):
    """A demand set filling roughly ``utilization`` of the device."""
    capacity = device.capacity()
    demands = []
    for index in range(count):
        share = utilization / count * rng.uniform(0.4, 1.6)
        demands.append(
            (
                f"rp{index}",
                ResourceVector(
                    lut=max(1, int(capacity.lut * share)),
                    ff=max(1, int(capacity.ff * share * rng.uniform(0.5, 1.0))),
                    bram=int(capacity.bram * share * rng.uniform(0.0, 0.8)),
                    dsp=int(capacity.dsp * share * rng.uniform(0.0, 0.8)),
                ),
            )
        )
    return demands


def plans_agree(device, demands, **kwargs):
    """Run both planners; assert identical outcome (plan or failure)."""
    fast = FloraFloorplanner(device, **kwargs)
    reference = ReferenceFloraFloorplanner(device, **kwargs)
    try:
        expected = reference.plan(demands)
    except FloorplanError:
        with pytest.raises(FloorplanError):
            fast.plan(demands)
        return None
    actual = fast.plan(demands)
    assert actual == expected
    return actual


class TestSeededEquivalence:
    @pytest.mark.parametrize("board", BOARDS)
    @pytest.mark.parametrize("utilization", [0.3, 0.5, 0.7])
    def test_random_demand_sets_match(self, board, utilization):
        device = make_device(board)
        rng = random.Random(f"{board}:{utilization}")
        rounds = 4 if board == "vc707" else 2
        for round_index in range(rounds):
            demands = random_demands(
                rng, device, count=rng.randint(1, 6), utilization=utilization
            )
            plans_agree(device, demands)

    @pytest.mark.parametrize("board", BOARDS)
    def test_dense_sets_walk_the_relaxation_ladder(self, board):
        # High fill pressure forces _place_with_relaxation past the
        # first ladder step on at least some rounds — the equivalence
        # must hold through every relaxation level, not just the first.
        device = make_device(board)
        rng = random.Random(f"dense:{board}")
        saw_plan = saw_failure = False
        for utilization in (0.3, 0.6, 0.95, 1.2):
            demands = random_demands(
                rng, device, count=rng.randint(2, 5), utilization=utilization
            )
            if plans_agree(device, demands, target_utilization=0.7) is None:
                saw_failure = True
            else:
                saw_plan = True
        assert saw_plan  # the sweep exercised real placements...
        assert saw_failure  # ...and genuine exhaustion, identically

    def test_max_height_cap_matches(self):
        device = make_device("vc707")
        rng = random.Random("capped")
        for _ in range(4):
            demands = random_demands(rng, device, count=3, utilization=0.4)
            plans_agree(device, demands, max_height_regions=1)

    def test_bram_dsp_heavy_demands_match(self):
        device = make_device("vcu118")
        capacity = device.capacity()
        demands = [
            ("rp0", ResourceVector(lut=200, ff=200, bram=capacity.bram // 3, dsp=0)),
            ("rp1", ResourceVector(lut=200, ff=200, bram=0, dsp=capacity.dsp // 3)),
            ("rp2", ResourceVector(lut=5000, ff=4000, bram=16, dsp=16)),
        ]
        plans_agree(device, demands)

    def test_reference_is_meaningfully_slower_shape(self):
        # Not a benchmark — just pins that the two classes really are
        # different implementations (occupancy representations differ),
        # so the equivalence tests cannot silently compare a planner
        # with itself after a refactor.
        device = make_device("vc707")
        fast = FloraFloorplanner(device)
        reference = ReferenceFloraFloorplanner(device)
        assert type(fast._empty_occupancy()) is not type(
            reference._empty_occupancy()
        )
