"""Tests for the FLORA-style floorplanner."""

import pytest

from repro.errors import FloorplanError
from repro.fabric.parts import vc707
from repro.fabric.resources import ResourceVector
from repro.floorplan.flora import FloraFloorplanner
from repro.soc.partition import partition_design


@pytest.fixture(scope="module")
def device():
    return vc707()


def demand(luts, bram=0, dsp=0):
    return ResourceVector(lut=luts, ff=luts, bram=bram, dsp=dsp)


class TestSinglePlacement:
    def test_small_demand_gets_small_block(self, device):
        planner = FloraFloorplanner(device)
        plan = planner.plan([("rp0", demand(2000))])
        assignment = plan.assignments[0]
        # A ~2.9k-LUT inflated demand needs <= 8 column-segments.
        assert assignment.pblock.area <= 8
        assert assignment.demand.fits_in(assignment.provided)

    def test_headroom_respected(self, device):
        planner = FloraFloorplanner(device, target_utilization=0.7)
        plan = planner.plan([("rp0", demand(20000))])
        assert plan.assignments[0].lut_utilization <= 0.7 + 1e-9

    def test_bram_demand_forces_bram_columns(self, device):
        planner = FloraFloorplanner(device)
        plan = planner.plan([("rp0", demand(500, bram=30))])
        assert plan.assignments[0].provided.bram >= 30

    def test_dsp_demand(self, device):
        planner = FloraFloorplanner(device)
        plan = planner.plan([("rp0", demand(500, dsp=100))])
        assert plan.assignments[0].provided.dsp >= 100

    def test_impossible_demand_raises(self, device):
        planner = FloraFloorplanner(device)
        with pytest.raises(FloorplanError, match="cannot place"):
            planner.plan([("rp0", demand(10**7))])

    def test_no_forbidden_columns_inside(self, device):
        planner = FloraFloorplanner(device)
        plan = planner.plan([("rp0", demand(40000))])
        pb = plan.assignments[0].pblock
        forbidden = set(device.forbidden_columns())
        for col in range(pb.col_lo, pb.col_hi + 1):
            assert col not in forbidden

    def test_bad_target_utilization_rejected(self, device):
        with pytest.raises(FloorplanError):
            FloraFloorplanner(device, target_utilization=1.5)


class TestMultiPlacement:
    def test_no_overlaps(self, device):
        planner = FloraFloorplanner(device)
        plan = planner.plan([(f"rp{i}", demand(25000, bram=20, dsp=40)) for i in range(6)])
        pblocks = plan.pblocks()
        for i, a in enumerate(pblocks):
            for b in pblocks[i + 1 :]:
                assert not a.overlaps(b)

    def test_assignment_order_preserved(self, device):
        planner = FloraFloorplanner(device)
        demands = [("z_small", demand(1000)), ("a_big", demand(50000))]
        plan = planner.plan(demands)
        assert [a.rp_name for a in plan.assignments] == ["z_small", "a_big"]

    def test_duplicate_names_rejected(self, device):
        planner = FloraFloorplanner(device)
        with pytest.raises(FloorplanError, match="unique"):
            planner.plan([("rp", demand(100)), ("rp", demand(100))])

    def test_empty_rejected(self, device):
        with pytest.raises(FloorplanError):
            FloraFloorplanner(device).plan([])

    def test_lookup(self, device):
        planner = FloraFloorplanner(device)
        plan = planner.plan([("rp0", demand(1000))])
        assert plan.assignment_for("rp0").rp_name == "rp0"
        with pytest.raises(FloorplanError):
            plan.assignment_for("missing")

    def test_dense_design_relaxes_instead_of_failing(self, device):
        """SOC_4-style density (~80% of the device in RPs) must plan."""
        planner = FloraFloorplanner(device)
        demands = [
            ("cpu", demand(43_500, bram=16, dsp=8)),
            ("conv", demand(37_200, bram=48, dsp=96)),
            ("fft", demand(34_100, bram=36, dsp=72)),
            ("gemm", demand(31_000, bram=40, dsp=128)),
            ("sort", demand(20_900, bram=24)),
        ]
        plan = planner.plan(demands)
        assert len(plan.assignments) == 5
        for assignment in plan.assignments:
            assert assignment.demand.fits_in(assignment.provided)


class TestPaperDesigns:
    @pytest.mark.parametrize("name", ["soc_1", "soc_2", "soc_3", "soc_4"])
    def test_characterization_socs_floorplan(self, name, device, all_paper_socs):
        partition = partition_design(all_paper_socs[name])
        planner = FloraFloorplanner(device)
        plan = planner.plan([(rp.name, rp.demand) for rp in partition.rps])
        assert len(plan.assignments) == partition.num_rps
