"""Tests for floorplan-level validation."""

import pytest

from repro.fabric.parts import vc707
from repro.fabric.pblock import Pblock
from repro.fabric.resources import ResourceVector
from repro.floorplan.constraints import validate_floorplan
from repro.floorplan.flora import Floorplan, FloraFloorplanner, RegionAssignment


@pytest.fixture(scope="module")
def device():
    return vc707()


def assignment(device, name, col_lo, col_hi, row_lo, row_hi, demand_luts=100):
    pb = Pblock(f"pblock_{name}", col_lo, col_hi, row_lo, row_hi)
    return RegionAssignment(
        rp_name=name,
        pblock=pb,
        demand=ResourceVector(lut=demand_luts),
        provided=pb.resources(device),
    )


class TestValidation:
    def test_planner_output_is_always_legal(self, device):
        planner = FloraFloorplanner(device)
        plan = planner.plan(
            [(f"rp{i}", ResourceVector(lut=20000, ff=20000, bram=10)) for i in range(4)]
        )
        report = validate_floorplan(device, plan, static_demand=ResourceVector(lut=82000))
        assert report.legal, report.violations

    def test_overlap_reported(self, device):
        plan = Floorplan(
            device_name=device.name,
            assignments=(
                assignment(device, "a", 0, 10, 0, 2),
                assignment(device, "b", 5, 15, 1, 3),
            ),
        )
        report = validate_floorplan(device, plan)
        assert not report.legal
        assert any("overlaps" in v for v in report.violations)

    def test_static_headroom_violation(self, device):
        # One pblock covering almost everything leaves no static room.
        plan = Floorplan(
            device_name=device.name,
            assignments=(
                assignment(
                    device, "a", 0, device.num_columns - 1, 0, device.region_rows - 1
                ),
            ),
        )
        report = validate_floorplan(
            device, plan, static_demand=ResourceVector(lut=50_000)
        )
        assert not report.legal
        assert any("static part" in v for v in report.violations)

    def test_headroom_computed(self, device):
        plan = Floorplan(
            device_name=device.name,
            assignments=(assignment(device, "a", 0, 10, 0, 1),),
        )
        report = validate_floorplan(device, plan)
        assert report.legal
        expected = device.capacity() - plan.assignments[0].provided
        assert report.static_headroom == expected
