"""Setup shim.

Kept as an offline fallback: environments whose setuptools stack cannot
run PEP 660 editable builds can use ``python setup.py develop``. All
metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
