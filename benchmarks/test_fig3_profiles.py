"""Fig. 3 — WAMI dataflow with per-accelerator profiles.

Reproduces the profiling methodology: each accelerator is placed alone
in a 2x2 SoC (single reconfigurable tile, VC707), compiled through the
flow, and annotated with its LUT count, execution time and partial
bitstream size. Also prints the dataflow edges of the figure.
"""

from __future__ import annotations

import pytest

from repro.wami.graph import WAMI_EDGES, WAMI_GRAPH, WamiStage
from repro.wami.accelerators import WAMI_ACCELERATORS


def profile_all(platform):
    return {stage: platform.profile_wami(stage) for stage in WamiStage}


@pytest.fixture(scope="module")
def profiles(platform):
    return profile_all(platform)


def test_fig3_profiles(benchmark, table_writer, platform, profiles):
    results = benchmark.pedantic(lambda: profiles, iterations=1, rounds=1)

    table_writer.header("Fig. 3 — WAMI accelerators: dataflow and profiles")
    table_writer.row("dataflow edges:")
    for src, dst in WAMI_EDGES:
        table_writer.row(f"  {src.value:>2d} {src.kernel_name:18s} -> "
                         f"{dst.value:>2d} {dst.kernel_name}")
    table_writer.row()
    table_writer.row(
        f"{'#':>2s} {'kernel':18s} {'LUTs':>7s} {'t_exec':>8s} "
        f"{'t_sw':>8s} {'pbs':>7s} {'region':>8s}"
    )
    for stage in WamiStage:
        profile = results[stage]
        hw = WAMI_ACCELERATORS[stage]
        table_writer.row(
            f"{stage.value:>2d} {stage.kernel_name:18s} {profile.luts:>7d} "
            f"{hw.exec_time_s * 1000:>6.1f}ms {hw.sw_time_s * 1000:>6.0f}ms "
            f"{profile.partial_bitstream_kib:>6.0f}K {profile.region_kluts:>7.1f}k"
        )
        table_writer.metric(f"{stage.kernel_name}_pbs_kib", profile.partial_bitstream_kib)
    table_writer.metric("total_luts", sum(p.luts for p in results.values()))
    table_writer.flush()


def test_fig3_twelve_profiled_accelerators(benchmark, profiles):
    def check():
        assert len(profiles) == 12
        for stage, profile in profiles.items():
            assert profile.luts > 0
            assert profile.exec_time_s > 0
            assert profile.partial_bitstream_kib > 0

    benchmark(check)


def test_fig3_lk_is_decomposed(benchmark):
    """The paper decomposed Lucas-Kanade into multiple accelerators to
    parallelize it: stages 3..11 are LK sub-kernels."""

    def check():
        lk_stages = [s for s in WamiStage if 3 <= s.value <= 11]
        assert len(lk_stages) == 9
        # Their subgraph allows 2-way parallelism.
        assert WAMI_GRAPH.max_width() == 2

    benchmark(check)


def test_fig3_region_dominates_module(benchmark, profiles):
    """Floorplanned regions include routability headroom, so the region
    always exceeds the accelerator's own demand."""

    def check():
        for stage, profile in profiles.items():
            assert profile.region_kluts * 1000 >= profile.luts

    benchmark(check)
