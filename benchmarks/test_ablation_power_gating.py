"""Ablation — blank-after-frame power gating.

An extension past the paper: PR-ESP's blanking bitstreams let the
runtime erase a region once its frame work completes, trading extra
ICAP traffic for dark silicon. This bench measures the energy/time
trade on the three deployment SoCs.
"""

from __future__ import annotations

import pytest

from repro.core.designs import wami_deployment_socs
from repro.core.platform import PrEspPlatform

FRAMES = 4


def run_both():
    platform = PrEspPlatform()
    results = {}
    for name, config in wami_deployment_socs().items():
        flow_result = platform.flow.build(config)
        results[name] = {
            gated: platform.deploy_wami(
                config, flow_result=flow_result, frames=FRAMES, power_gating=gated
            )
            for gated in (False, True)
        }
    return results


@pytest.fixture(scope="module")
def results():
    return run_both()


def test_ablation_power_gating(benchmark, table_writer, results):
    data = benchmark.pedantic(lambda: results, iterations=1, rounds=1)

    table_writer.header("Ablation — blank-after-frame power gating")
    table_writer.row(
        f"{'soc':6s} {'gating':>7s} {'ms/frame':>9s} {'J/frame':>8s} "
        f"{'reconf/frame':>13s} {'energy saved':>13s}"
    )
    for name, pair in data.items():
        off, on = pair[False], pair[True]
        saved = 100.0 * (off.joules_per_frame - on.joules_per_frame) / off.joules_per_frame
        table_writer.metric(f"{name}_j_per_frame_off", off.joules_per_frame)
        table_writer.metric(f"{name}_j_per_frame_on", on.joules_per_frame)
        table_writer.metric(f"{name}_energy_saved_pct", saved)
        for gated, report in ((False, off), (True, on)):
            table_writer.row(
                f"{name:6s} {'on' if gated else 'off':>7s} "
                f"{report.seconds_per_frame * 1000:>9.1f} "
                f"{report.joules_per_frame:>8.3f} "
                f"{report.reconfigurations / FRAMES:>13.1f} "
                f"{(f'{saved:+.1f}%' if gated else ''):>13s}"
            )
        table_writer.row()
    table_writer.flush()


def test_ablation_gating_saves_energy(benchmark, results):
    def check():
        for name, pair in results.items():
            assert (
                pair[True].joules_per_frame < pair[False].joules_per_frame
            ), name

    benchmark(check)


def test_ablation_gating_costs_some_time(benchmark, results):
    """Blanking adds ICAP traffic: frames get slower, but by < 25%."""

    def check():
        for name, pair in results.items():
            ratio = (
                pair[True].seconds_per_frame / pair[False].seconds_per_frame
            )
            assert 1.0 <= ratio < 1.25, f"{name}: {ratio:.2f}"

    benchmark(check)


def test_ablation_gating_helps_idle_heavy_socs_most(benchmark, results):
    """Gating darkens a region for the part of the frame after its last
    task, so the design whose tiles idle longest — the two-tile SoC_X
    with its long software tail — saves the most J/frame."""

    def check():
        savings = {
            name: pair[False].joules_per_frame - pair[True].joules_per_frame
            for name, pair in results.items()
        }
        assert savings["soc_x"] == max(savings.values())
        # Relative savings shrink as utilization rises (X > Y > Z).
        relative = {
            name: (pair[False].joules_per_frame - pair[True].joules_per_frame)
            / pair[False].joules_per_frame
            for name, pair in results.items()
        }
        assert relative["soc_x"] > relative["soc_y"] > relative["soc_z"]

    benchmark(check)
