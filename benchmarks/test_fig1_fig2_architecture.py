"""Figs. 1 and 2 — structural reproduction of the block diagrams.

Fig. 1 is the flow block diagram: regenerated as the stage trace an
actual ``DprFlow.build()`` emits. Fig. 2B is the reconfigurable-tile
architecture: regenerated from the generated RTL hierarchy (socket,
proxies, decoupler, reconfigurable wrapper with the common interface).
Fig. 2A is the software stack: regenerated as the layer list the
runtime package actually instantiates.
"""

from __future__ import annotations

import pytest

from repro.core.designs import soc_2
from repro.flow.blackbox import WRAPPER_PORTS
from repro.flow.dpr_flow import DprFlow
from repro.soc.rtl import generate_rtl


@pytest.fixture(scope="module")
def flow_result():
    return DprFlow().build(soc_2())


def test_fig1_flow_stages(benchmark, table_writer, flow_result):
    result = benchmark.pedantic(lambda: flow_result, iterations=1, rounds=1)

    table_writer.header("Fig. 1 — the PR-ESP FPGA flow (executed stage trace)")
    for index, stage in enumerate(result.stages, start=1):
        timing = (
            f"{stage.wall_minutes:6.1f} min"
            if stage.wall_minutes
            else "      --  "
        )
        table_writer.row(f"  {index}. {stage.stage:20s} {timing}  {stage.detail}")
    table_writer.metric("stage_count", len(result.stages))
    table_writer.metric("total_min", sum(s.wall_minutes for s in result.stages))
    table_writer.flush()

    names = [s.stage for s in result.stages]
    # The paper's boxes: parse -> (synthesis of static + reconf tiles)
    # -> pre-implementation (floorplan + parallelism choice) ->
    # implementation -> bitstreams.
    assert names.index("parse") < names.index("synthesis")
    assert names.index("synthesis") < names.index("floorplan")
    assert names.index("floorplan") < names.index("choose_parallelism")
    assert names.index("choose_parallelism") < names.index("implementation")
    assert names.index("implementation") < names.index("bitstreams")


def test_fig2b_reconfigurable_tile_structure(benchmark, table_writer):
    def build_tree():
        config = soc_2()
        rtl = generate_rtl(config)
        tile = config.reconfigurable_tiles[0]
        return tile, rtl.find(tile.name)

    tile, node = benchmark(build_tree)

    table_writer.header("Fig. 2B — reconfigurable tile structure (generated RTL)")

    def render(module, depth=0):
        marker = "  [RP]" if module.reconfigurable else ""
        table_writer.row("  " + "  " * depth + module.name + marker)
        for child in module.children:
            render(child, depth + 1)

    render(node)
    table_writer.row("")
    table_writer.row("reconfigurable wrapper interface (Sec. III):")
    for name, direction, width in WRAPPER_PORTS:
        table_writer.row(f"  {direction:3s} {name} [{width}]")
    table_writer.metric("tile_modules", sum(1 for _ in node.walk()))
    table_writer.metric("wrapper_ports", len(WRAPPER_PORTS))
    table_writer.flush()

    # Structural assertions: socket with router/proxies/decoupler in the
    # static part; a reconfigurable wrapper hosting the accelerator.
    names = {m.name for m in node.walk()}
    assert f"{tile.name}_socket" in names
    assert f"{tile.name}_router" in names
    assert f"{tile.name}_proxies" in names
    assert f"{tile.name}_decoupler" in names
    wrapper = node.find(f"{tile.name}_wrapper")
    assert wrapper is not None and wrapper.reconfigurable
    # Interface carries DMA + register + interrupt groups.
    port_names = {name for name, _d, _w in WRAPPER_PORTS}
    assert {"dma_read_ctrl", "apb_req", "acc_done_irq"} <= port_names


def test_fig2a_software_stack(benchmark, table_writer):
    """The modified software stack: user API over the kernel manager
    over the device drivers over the hardware models."""

    def layers():
        from repro.runtime.api import DprUserApi
        from repro.runtime.driver import DriverRegistry
        from repro.runtime.manager import ReconfigurationManager
        from repro.runtime.memory import BitstreamStore
        from repro.runtime.prc import PrcDevice

        return [
            ("user space", "application threads (one per reconfigurable tile)"),
            ("user space", f"DPR API ({DprUserApi.__name__}: esp_run/esp_load/esp_blank)"),
            ("kernel", f"runtime manager ({ReconfigurationManager.__name__}: "
                       "workqueue-equivalent FIFO, per-tile locks, driver swap)"),
            ("kernel", f"driver registry ({DriverRegistry.__name__}) + "
                       f"bitstream store ({BitstreamStore.__name__}, mmapped images)"),
            ("hardware", f"PRC/ICAP ({PrcDevice.__name__}) + tile decouplers"),
        ]

    stack = benchmark(layers)
    table_writer.header("Fig. 2A — the PR-ESP software stack (as instantiated)")
    for layer, description in stack:
        table_writer.row(f"  {layer:10s} {description}")
    table_writer.metric("stack_layers", len(stack))
    table_writer.flush()
    assert len(stack) == 5
