"""Ablation — automatic vs manual (Table VI) accelerator partitioning.

The paper partitions the WAMI accelerators onto tiles by hand. The
automatic partitioner searches allocations with an analytic estimator;
here every candidate — including the paper's — is evaluated on the
*full discrete-event runtime*, so the comparison is apples-to-apples.
"""

from __future__ import annotations

import pytest

from repro.core.designs import WAMI_TILE_ALLOCATION
from repro.core.platform import PrEspPlatform
from repro.wami.graph import WamiStage
from repro.wami.partitioner import Allocation, WamiPartitioner, soc_from_allocation

FRAMES = 4

#: Paper allocations as Allocation objects (3- and 4-tile variants only:
#: the 2-tile SoC_X leaves change_detection unmapped, which the
#: automatic partitioner never does).
PAPER_ALLOCATIONS = {
    3: Allocation(
        tiles=tuple(
            tuple(WamiStage.from_index(i) for i in group)
            for group in WAMI_TILE_ALLOCATION["soc_y"]
        )
    ),
    4: Allocation(
        tiles=tuple(
            tuple(WamiStage.from_index(i) for i in group)
            for group in WAMI_TILE_ALLOCATION["soc_z"]
        )
    ),
}


def deploy_allocation(platform, name, allocation):
    config = soc_from_allocation(name, allocation)
    return platform.deploy_wami(config, frames=FRAMES)


def run_comparison():
    platform = PrEspPlatform()
    partitioner = WamiPartitioner()
    rows = []
    for tiles, paper_allocation in PAPER_ALLOCATIONS.items():
        auto_allocation, estimate = partitioner.best_allocation(
            tiles, random_candidates=150
        )
        paper_report = deploy_allocation(
            platform, f"paper_{tiles}t", paper_allocation
        )
        auto_report = deploy_allocation(platform, f"auto_{tiles}t", auto_allocation)
        rows.append(
            (tiles, paper_allocation, paper_report, auto_allocation, auto_report, estimate)
        )
    return rows


@pytest.fixture(scope="module")
def comparison():
    return run_comparison()


def test_ablation_partitioning(benchmark, table_writer, comparison):
    rows = benchmark.pedantic(lambda: comparison, iterations=1, rounds=1)

    table_writer.header("Ablation — automatic vs manual partitioning (DES runtime)")
    table_writer.row(
        f"{'tiles':>5s} {'policy':>7s} {'allocation (Fig. 3 indexes)':42s} "
        f"{'ms/frame':>9s}"
    )
    for tiles, paper_alloc, paper_report, auto_alloc, auto_report, estimate in rows:
        table_writer.row(
            f"{tiles:>5d} {'paper':>7s} {str(paper_alloc.indexes()):42s} "
            f"{paper_report.seconds_per_frame * 1000:>9.1f}"
        )
        table_writer.row(
            f"{'':>5s} {'auto':>7s} {str(auto_alloc.indexes()):42s} "
            f"{auto_report.seconds_per_frame * 1000:>9.1f}"
        )
        table_writer.row(
            f"{'':>5s} {'':>7s} (estimator predicted {estimate * 1000:.1f} ms)"
        )
        table_writer.row()
        table_writer.metric(
            f"paper_{tiles}t_ms_per_frame", paper_report.seconds_per_frame * 1000
        )
        table_writer.metric(
            f"auto_{tiles}t_ms_per_frame", auto_report.seconds_per_frame * 1000
        )
    table_writer.flush()


def test_ablation_auto_is_competitive_with_manual(benchmark, comparison):
    """Automatic partitioning matches or beats the hand allocation
    (within 10% in the worst case) — the paper's manual step is
    automatable."""

    def check():
        for _tiles, _pa, paper_report, _aa, auto_report, _est in comparison:
            ratio = auto_report.seconds_per_frame / paper_report.seconds_per_frame
            assert ratio < 1.10, f"auto {ratio:.2f}x of manual"

    benchmark(check)


def test_ablation_estimator_tracks_simulation(benchmark, comparison):
    """The analytic estimator predicts the DES frame time within 2x
    (it ignores ICAP serialization across tiles, so it is optimistic)."""

    def check():
        for _tiles, _pa, _pr, _aa, auto_report, estimate in comparison:
            measured = auto_report.seconds_per_frame
            assert estimate <= measured * 1.2
            assert estimate >= measured / 2.5

    benchmark(check)
