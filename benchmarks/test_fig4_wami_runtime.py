"""Fig. 4 — execution time and energy of the WAMI deployment SoCs.

Builds and deploys SoC_X/Y/Z, runs the WAMI application under the
runtime reconfiguration manager, and reports seconds/frame and
Joules/frame.

Reproduction notes (full analysis in EXPERIMENTS.md):

* the execution-time shape reproduces: X slowest by ~2.6x/~3.6x vs Y/Z;
* the paper's energy ordering (X best by 1.65x/2.77x) implies a ~10x
  average-power gap between the 4-tile and 2-tile SoCs; an
  energy-conserving area/activity power model cannot produce that while
  X runs 3.6x longer, so our J/frame ordering inverts. The bench
  reports both our measurement and the implied-power analysis.
"""

from __future__ import annotations

import pytest

from repro.core.designs import wami_deployment_socs

FRAMES = 8

#: Published Fig. 4 ratios.
PAPER_TIME_X_OVER_Y = 2.6
PAPER_TIME_X_OVER_Z = 3.6
PAPER_ENERGY_Y_OVER_X = 1.65
PAPER_ENERGY_Z_OVER_X = 2.77


def deploy_all(platform):
    return {
        name: platform.deploy_wami(cfg, frames=FRAMES)
        for name, cfg in wami_deployment_socs().items()
    }


@pytest.fixture(scope="module")
def reports(platform):
    return deploy_all(platform)


def test_fig4_wami_runtime(benchmark, table_writer, reports):
    results = benchmark.pedantic(lambda: reports, iterations=1, rounds=1)

    table_writer.header("Fig. 4 — WAMI runtime: time and energy per frame")
    table_writer.row(
        f"{'soc':6s} {'tiles':>6s} {'ms/frame':>9s} {'J/frame':>8s} "
        f"{'W avg':>6s} {'reconf/frame':>13s} {'sw stages':>24s}"
    )
    for name, report in results.items():
        table_writer.row(
            f"{name:6s} {len(report.config.reconfigurable_tiles):>6d} "
            f"{report.seconds_per_frame * 1000:>9.1f} "
            f"{report.joules_per_frame:>8.3f} "
            f"{report.energy.average_power_w:>6.2f} "
            f"{report.reconfigurations / FRAMES:>13.1f} "
            f"{','.join(s.kernel_name for s in report.software_stages) or '-':>24s}"
        )
    for name, report in results.items():
        table_writer.metric(f"{name}_ms_per_frame", report.seconds_per_frame * 1000)
        table_writer.metric(f"{name}_j_per_frame", report.joules_per_frame)
        table_writer.metric(
            f"{name}_reconf_per_frame", report.reconfigurations / FRAMES
        )
    x, y, z = results["soc_x"], results["soc_y"], results["soc_z"]
    table_writer.metric("time_ratio_x_over_y", x.seconds_per_frame / y.seconds_per_frame)
    table_writer.metric("time_ratio_x_over_z", x.seconds_per_frame / z.seconds_per_frame)
    table_writer.row()
    table_writer.row("execution-time ratios:")
    table_writer.row(
        f"  X/Y = {x.seconds_per_frame / y.seconds_per_frame:.2f} (paper {PAPER_TIME_X_OVER_Y})"
    )
    table_writer.row(
        f"  X/Z = {x.seconds_per_frame / z.seconds_per_frame:.2f} (paper {PAPER_TIME_X_OVER_Z})"
    )
    table_writer.row("energy ratios (measured | paper):")
    table_writer.row(
        f"  Y/X = {y.joules_per_frame / x.joules_per_frame:.2f} | {PAPER_ENERGY_Y_OVER_X}"
    )
    table_writer.row(
        f"  Z/X = {z.joules_per_frame / x.joules_per_frame:.2f} | {PAPER_ENERGY_Z_OVER_X}"
    )
    implied = PAPER_ENERGY_Z_OVER_X * PAPER_TIME_X_OVER_Z
    table_writer.row(
        f"  note: the paper's ratios imply P_Z/P_X = {implied:.1f}, beyond any"
    )
    table_writer.row(
        "  energy-conserving area/activity model (see EXPERIMENTS.md)."
    )
    table_writer.flush()


def test_fig4_time_shape(benchmark, reports):
    """X slowest, Z fastest, with the published factors (+-15%)."""

    def check():
        x = reports["soc_x"].seconds_per_frame
        y = reports["soc_y"].seconds_per_frame
        z = reports["soc_z"].seconds_per_frame
        assert z < y < x
        assert x / y == pytest.approx(PAPER_TIME_X_OVER_Y, rel=0.15)
        assert x / z == pytest.approx(PAPER_TIME_X_OVER_Z, rel=0.15)

    benchmark(check)


def test_fig4_x_has_non_interleaved_reconfiguration(benchmark, reports):
    """With two tiles, X cannot hide reconfiguration behind execution on
    other tiles: its exec density is the lowest of the three."""

    def check():
        def exec_density(report):
            busy = sum(e.duration_s for e in report.timeline.spans("exec"))
            return busy / report.timeline.makespan_s

        assert exec_density(reports["soc_x"]) < exec_density(reports["soc_y"])
        assert exec_density(reports["soc_x"]) < exec_density(reports["soc_z"])

    benchmark(check)


def test_fig4_y_is_the_balanced_design(benchmark, reports):
    """The paper's conclusion: SoC_Y balances time and energy — it is
    never the worst on either axis."""

    def check():
        times = {n: r.seconds_per_frame for n, r in reports.items()}
        energies = {n: r.joules_per_frame for n, r in reports.items()}
        assert times["soc_y"] < max(times.values())
        assert energies["soc_y"] < max(energies.values())

    benchmark(check)


def test_fig4_energy_accounting_is_conservative(benchmark, reports):
    """Energy components sum exactly and every SoC's dynamic energy per
    frame is (nearly) identical — the same accelerator work happens
    regardless of the tile count."""

    def check():
        dynamics = [
            r.energy.dynamic_j / FRAMES
            for r in reports.values()
            if not r.software_stages
        ]
        totals = [r.energy for r in reports.values()]
        for energy in totals:
            assert energy.total_j == pytest.approx(
                energy.baseline_j
                + energy.dynamic_j
                + energy.software_j
                + energy.reconfig_j
            )
        if len(dynamics) > 1:
            assert max(dynamics) == pytest.approx(min(dynamics), rel=0.02)

    benchmark(check)
