"""Ablation — semi-parallel grouping policy.

The flow balances tiles across the τ instances with LPT. This bench
compares LPT against a naive in-order split on every paper design and
on random instances, reporting the makespan penalty of the naive
policy (what "opportunistic grouping" buys).
"""

from __future__ import annotations

import numpy as np

from repro.core.designs import characterization_socs, wami_parallelism_socs
from repro.flow.grouping import balanced_groups, makespan
from repro.vivado.runtime_model import CALIBRATED_MODEL


def naive_groups(items, num_groups):
    """Contiguous in-order split (what a flow without LPT would do)."""
    groups = [[] for _ in range(num_groups)]
    for index, item in enumerate(items):
        groups[index % num_groups].append(item)
    return [g for g in groups if g]


def omega_of(groups):
    """max Ω over groups under the calibrated context-P&R curve."""
    return max(
        CALIBRATED_MODEL.context_par_minutes(sum(group) / 1000.0)
        for group in groups
    )


def compare_policies():
    socs = {**characterization_socs(), **wami_parallelism_socs()}
    rows = []
    for name, config in sorted(socs.items()):
        sizes = config.reconfigurable_luts()
        if len(sizes) < 3:
            continue
        for tau in (2, 3):
            if tau >= len(sizes):
                continue
            lpt = balanced_groups(sizes, tau, weight=float)
            naive = naive_groups(sizes, tau)
            rows.append((name, tau, omega_of(lpt), omega_of(naive)))
    return rows


def test_ablation_grouping(benchmark, table_writer):
    rows = benchmark(compare_policies)

    table_writer.header("Ablation — LPT vs naive semi-parallel grouping")
    table_writer.row(
        f"{'soc':8s} {'tau':>4s} {'omega LPT':>10s} {'omega naive':>12s} {'penalty':>8s}"
    )
    penalties = []
    for name, tau, lpt_omega, naive_omega in rows:
        penalty = 100.0 * (naive_omega - lpt_omega) / lpt_omega
        penalties.append(penalty)
        table_writer.row(
            f"{name:8s} {tau:>4d} {lpt_omega:>10.1f} {naive_omega:>12.1f} "
            f"{penalty:>+7.1f}%"
        )
    table_writer.metric("cases", len(rows))
    table_writer.metric("mean_penalty_pct", sum(penalties) / len(penalties))
    table_writer.metric("max_penalty_pct", max(penalties))
    table_writer.flush()

    # LPT never loses to the naive split.
    for _name, _tau, lpt_omega, naive_omega in rows:
        assert lpt_omega <= naive_omega + 1e-9
    # And it wins somewhere (the grouping is load-bearing).
    assert any(naive > lpt + 0.5 for _n, _t, lpt, naive in rows)


def test_ablation_grouping_random_instances(benchmark):
    """On random tile mixes LPT's makespan advantage holds on average."""

    def run():
        rng = np.random.default_rng(2023)
        penalties = []
        for _ in range(200):
            sizes = rng.integers(2_000, 45_000, size=rng.integers(3, 10)).tolist()
            tau = 2
            lpt = makespan(balanced_groups(sizes, tau, weight=float), float)
            naive = makespan(naive_groups(sizes, tau), float)
            penalties.append((naive - lpt) / lpt)
        return penalties

    penalties = benchmark(run)
    # LPT is a 4/3-approximation, so a lucky naive split can beat it by
    # at most 25%; on average LPT wins clearly.
    assert min(penalties) >= -0.25 - 1e-9
    assert sum(penalties) / len(penalties) > 0.02
    worse = sum(1 for p in penalties if p < -1e-9)
    assert worse / len(penalties) < 0.10  # naive rarely wins at all
