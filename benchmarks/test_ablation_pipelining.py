"""Ablation — frame pipelining.

The paper processes frames strictly one at a time ("without
pipelining"). This extension overlaps consecutive frames, subject to
per-tile serialization and each stage's dependence on its own
previous-frame state. The measured gains are deliberately modest —
the WAMI DAG has width 2 and every tile already cycles
reconfigure→execute densely — quantifying how much the paper left on
the table by not pipelining.
"""

from __future__ import annotations

import pytest

from repro.core.designs import wami_deployment_socs
from repro.core.platform import PrEspPlatform

FRAMES = 6


def run_both():
    platform = PrEspPlatform()
    results = {}
    for name, config in wami_deployment_socs().items():
        flow_result = platform.flow.build(config)
        results[name] = {
            mode: platform.deploy_wami(
                config, flow_result=flow_result, frames=FRAMES, pipelined=mode
            )
            for mode in (False, True)
        }
    return results


@pytest.fixture(scope="module")
def results():
    return run_both()


def test_ablation_pipelining(benchmark, table_writer, results):
    data = benchmark.pedantic(lambda: results, iterations=1, rounds=1)

    table_writer.header("Ablation — frame pipelining (extension)")
    table_writer.row(
        f"{'soc':6s} {'sequential':>11s} {'pipelined':>10s} {'speedup':>8s}"
    )
    for name, pair in data.items():
        seq = pair[False].seconds_per_frame * 1000
        pipe = pair[True].seconds_per_frame * 1000
        table_writer.row(
            f"{name:6s} {seq:>9.1f}ms {pipe:>8.1f}ms {seq / pipe:>7.2f}x"
        )
        table_writer.metric(f"{name}_sequential_ms", seq)
        table_writer.metric(f"{name}_pipelined_ms", pipe)
        table_writer.metric(f"{name}_speedup", seq / pipe)
    table_writer.row()
    table_writer.row("gains are bounded by the WAMI DAG (width 2) and by each")
    table_writer.row("stage's dependence on its own previous-frame state.")
    table_writer.flush()


def test_ablation_pipelining_never_hurts(benchmark, results):
    def check():
        for name, pair in results.items():
            assert (
                pair[True].seconds_per_frame
                <= pair[False].seconds_per_frame + 1e-9
            ), name

    benchmark(check)


def test_ablation_pipelining_helps_x_most(benchmark, results):
    """SoC_X's long software change-detection tail is what pipelining
    can hide: its next frame's tiles start while the CPU finishes."""

    def check():
        speedups = {
            name: pair[False].seconds_per_frame / pair[True].seconds_per_frame
            for name, pair in results.items()
        }
        assert speedups["soc_x"] >= max(speedups.values()) - 1e-9

    benchmark(check)
