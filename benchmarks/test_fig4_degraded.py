"""Fig. 4 (degraded) — WAMI on SoC_Y with a quarantined tile.

A persistent CRC fault on rt1's ``change_detection`` bitstream forces
the resilience layer through its whole state machine: retry, fallback
to the last-known-good mode, quarantine, and scheduler failover onto
software. The bench records the makespan cost of losing one of three
reconfigurable tiles mid-run and pins the recovery accounting, so a
regression in the watchdog/failover path shows up as a baseline diff
rather than only as a red unit test.
"""

from __future__ import annotations

import pytest

from repro.core.designs import wami_soc_y
from repro.runtime.faults import (
    PERSISTENT,
    RuntimeFaultKind,
    RuntimeFaultModel,
    RuntimeFaultOptions,
)

FRAMES = 4


def degraded_options():
    model = RuntimeFaultModel()
    model.inject(
        "rt1",
        "change_detection",
        RuntimeFaultKind.BITSTREAM_CORRUPTION,
        count=PERSISTENT,
    )
    return RuntimeFaultOptions(faults=model)


@pytest.fixture(scope="module")
def reports(platform):
    config = wami_soc_y()
    return {
        "healthy": platform.deploy_wami(config, frames=FRAMES),
        "degraded": platform.deploy_wami(
            config, frames=FRAMES, runtime_options=degraded_options()
        ),
    }


def test_fig4_degraded(benchmark, table_writer, reports):
    results = benchmark.pedantic(lambda: reports, iterations=1, rounds=1)

    healthy, degraded = results["healthy"], results["degraded"]
    stats = degraded.runtime_stats
    slowdown = degraded.seconds_per_frame / healthy.seconds_per_frame

    table_writer.header(
        "Fig. 4 (degraded) — SoC_Y with rt1 quarantined mid-run"
    )
    table_writer.row(
        f"{'run':9s} {'ms/frame':>9s} {'failovers':>10s} {'fallbacks':>10s} "
        f"{'quarantined':>12s}"
    )
    for name, report in results.items():
        rs = report.runtime_stats
        table_writer.row(
            f"{name:9s} {report.seconds_per_frame * 1000:>9.1f} "
            f"{rs.failovers:>10d} {rs.fallbacks:>10d} "
            f"{','.join(sorted(rs.quarantined)) or '-':>12s}"
        )
    table_writer.row()
    table_writer.row(
        f"slowdown from losing rt1: {slowdown:.2f}x "
        f"(change_detection re-planned onto software)"
    )

    table_writer.metric(
        "healthy_ms_per_frame", healthy.seconds_per_frame * 1000
    )
    table_writer.metric(
        "degraded_ms_per_frame", degraded.seconds_per_frame * 1000
    )
    table_writer.metric("degraded_slowdown", slowdown)
    table_writer.metric("degraded_failovers", stats.failovers)
    table_writer.metric("degraded_fallbacks", stats.fallbacks)
    table_writer.metric("quarantined_tiles", len(stats.quarantined))
    table_writer.flush()


def test_fig4_degraded_shape(benchmark, reports):
    """The degraded run completes every frame, slower, with rt1 gone."""

    def check():
        healthy, degraded = reports["healthy"], reports["degraded"]
        assert degraded.frames == FRAMES
        assert degraded.seconds_per_frame > healthy.seconds_per_frame
        stats = degraded.runtime_stats
        assert stats.quarantined == {"rt1": "crc"}
        assert stats.failovers >= FRAMES  # one re-plan per frame at least
        assert stats.fallbacks > 0
        assert healthy.runtime_stats.quarantined == {}
        assert healthy.runtime_stats.failovers == 0

    benchmark(check)
