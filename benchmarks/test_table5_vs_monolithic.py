"""Table V — PR-ESP vs the monolithic (standard Xilinx DPR) flow.

Full compilation (synthesis + implementation) of SoC_A..SoC_D through
both flows; the headline shape is that classes 1.2 and 2.1 see large
improvements (paper: 19% and 24%), class 1.3 a small one (4.4%), and
class 1.1 is PR-ESP's weakest case.
"""

from __future__ import annotations

import pytest

from repro.core.designs import wami_parallelism_socs
from repro.flow.batch import BatchBuilder, BuildRequest
from repro.flow.cache import FlowCache
from repro.flow.monolithic import MonolithicFlow

#: Paper Table V, minutes:
#: name -> (presp_synth, t_static, max_omega, presp_total, mono_synth, mono_par, mono_total)
PAPER = {
    "soc_a": (47, 98, 52, 197, 91, 152, 243),
    "soc_b": (54, 135, None, 189, 60, 124, 184),
    "soc_c": (42, 88, 64, 194, 74, 129, 203),
    "soc_d": (49, 48, 71, 168, 81, 141, 222),
}


def compare_all(jobs: int = 1):
    mono_flow = MonolithicFlow()
    socs = wami_parallelism_socs()
    batch = BatchBuilder(cache=FlowCache(), jobs=jobs)
    outcomes = batch.build_many(
        [BuildRequest(config=socs[name]) for name in PAPER]
    )
    return {
        name: (outcome.unwrap(), mono_flow.build(socs[name]))
        for name, outcome in zip(PAPER, outcomes)
    }


@pytest.fixture(scope="module")
def comparisons():
    return compare_all()


def test_table5_vs_monolithic(benchmark, table_writer, comparisons):
    results = benchmark.pedantic(lambda: comparisons, iterations=1, rounds=1)

    table_writer.header("Table V — PR-ESP vs monolithic compile time (minutes)")
    table_writer.row(
        f"{'soc':6s} | {'synth':>6s} {'t_stat':>7s} {'maxO':>6s} {'T_tot':>7s} "
        f"{'strategy':>14s} | {'m.synth':>8s} {'m.P&R':>7s} {'m.tot':>7s} | "
        f"{'gain':>7s} {'paper':>7s}"
    )
    for name, paper in PAPER.items():
        presp, mono = results[name]
        p_synth, p_static, p_omega, p_tot, m_synth, m_par, m_tot = paper
        gain = 100.0 * (mono.total_minutes - presp.total_minutes) / mono.total_minutes
        paper_gain = 100.0 * (m_tot - p_tot) / m_tot
        t_static = presp.static_par_minutes
        omega = presp.max_omega_minutes
        table_writer.row(
            f"{name:6s} | {presp.synth_makespan_minutes:>6.0f} "
            f"{('-' if t_static is None else f'{t_static:.0f}'):>7s} "
            f"{('-' if omega is None else f'{omega:.0f}'):>6s} "
            f"{presp.total_minutes:>7.0f} {presp.strategy.value:>14s} | "
            f"{mono.synth_minutes:>8.0f} {mono.par_minutes:>7.0f} "
            f"{mono.total_minutes:>7.0f} | {gain:>+6.1f}% {paper_gain:>+6.1f}%"
        )
        table_writer.metric(f"{name}_presp_total_min", presp.total_minutes)
        table_writer.metric(f"{name}_mono_total_min", mono.total_minutes)
        table_writer.metric(f"{name}_gain_pct", gain)
    table_writer.row()
    table_writer.row(
        "note: the paper measured SoC_B (class 1.1) 2.5% *slower* than the"
    )
    table_writer.row(
        "baseline; our calibrated model keeps class 1.1 PR-ESP's weakest"
    )
    table_writer.row(
        "class-1.x case but the sign flips (see EXPERIMENTS.md)."
    )
    table_writer.flush()


def test_table5_class12_and_21_see_large_gains(benchmark, comparisons):
    def check():
        for name, paper_gain in (("soc_a", 0.19), ("soc_d", 0.24)):
            presp, mono = comparisons[name]
            gain = (mono.total_minutes - presp.total_minutes) / mono.total_minutes
            assert gain > 0.10, f"{name}: gain {gain:.2f}"
            # Within 12 points of the paper's percentage.
            assert abs(gain - paper_gain) < 0.12

    benchmark(check)


def test_table5_parallel_synthesis_beats_global(benchmark, comparisons):
    def check():
        for name, (presp, mono) in comparisons.items():
            assert presp.synth_makespan_minutes < mono.synth_minutes, name

    benchmark(check)


def test_table5_totals_within_band(benchmark, comparisons):
    def check():
        for name, paper in PAPER.items():
            presp, mono = comparisons[name]
            assert presp.total_minutes == pytest.approx(paper[3], rel=0.35), name
            assert mono.total_minutes == pytest.approx(paper[6], rel=0.35), name

    benchmark(check)
