"""Ablation — sensitivity of the classifier thresholds.

The paper never publishes numeric thresholds for "κ ≫ α_av" or
"γ ≈ 1"; ours (ratio 2.5, band [0.8, 1.15]) were chosen so all eight
published designs classify as printed. This bench sweeps both knobs
and reports how many designs keep their published class, showing the
chosen point sits on a plateau rather than a knife's edge.
"""

from __future__ import annotations

import numpy as np

from repro.core.classes import classify
from repro.core.metrics import compute_metrics
from repro.core.designs import characterization_socs, wami_parallelism_socs

PUBLISHED_CLASSES = {
    "soc_1": "1.1",
    "soc_2": "1.2",
    "soc_3": "1.3",
    "soc_4": "2.1",
    "soc_a": "1.2",
    "soc_b": "1.1",
    "soc_c": "1.3",
    "soc_d": "2.1",
}


def agreement(metrics_by_name, ratio, band_low, band_high):
    """How many designs classify as published under these thresholds."""
    hits = 0
    for name, metrics in metrics_by_name.items():
        result = classify(
            metrics, dominance_ratio=ratio, band_low=band_low, band_high=band_high
        )
        hits += result.design_class.value == PUBLISHED_CLASSES[name]
    return hits


def sweep():
    socs = {**characterization_socs(), **wami_parallelism_socs()}
    metrics_by_name = {name: compute_metrics(cfg) for name, cfg in socs.items()}
    rows = []
    for ratio in np.arange(1.5, 4.01, 0.25):
        for band_low, band_high in ((0.85, 1.1), (0.8, 1.15), (0.7, 1.25)):
            rows.append(
                (
                    float(ratio),
                    band_low,
                    band_high,
                    agreement(metrics_by_name, float(ratio), band_low, band_high),
                )
            )
    return rows, metrics_by_name


def test_ablation_thresholds(benchmark, table_writer):
    rows, metrics_by_name = benchmark(sweep)

    table_writer.header("Ablation — classifier threshold sensitivity")
    table_writer.row(
        f"{'dominance':>10s} {'gamma band':>14s} {'designs matching (of 8)':>25s}"
    )
    for ratio, low, high, hits in rows:
        marker = " <-- chosen" if (ratio, low, high) == (2.5, 0.8, 1.15) else ""
        table_writer.row(
            f"{ratio:>10.2f} {f'[{low}, {high}]':>14s} {hits:>25d}{marker}"
        )
    table_writer.metric("sweep_points", len(rows))
    table_writer.metric(
        "chosen_point_hits", agreement(metrics_by_name, 2.5, 0.8, 1.15)
    )
    table_writer.metric(
        "plateau_points_at_8",
        sum(1 for _r, _l, _h, hits in rows if hits == 8),
    )
    table_writer.flush()

    # The chosen point achieves 8/8.
    assert agreement(metrics_by_name, 2.5, 0.8, 1.15) == 8
    # And it is a plateau: neighbouring ratios also reach 8/8.
    assert agreement(metrics_by_name, 2.25, 0.8, 1.15) == 8
    assert agreement(metrics_by_name, 2.5, 0.85, 1.1) == 8


def test_ablation_extreme_thresholds_break_classification(benchmark):
    """Far-off thresholds misclassify — the knob genuinely matters."""

    def worst_cases():
        socs = {**characterization_socs(), **wami_parallelism_socs()}
        metrics_by_name = {name: compute_metrics(cfg) for name, cfg in socs.items()}
        return (
            agreement(metrics_by_name, 1.0, 0.8, 1.15),
            agreement(metrics_by_name, 10.0, 0.8, 1.15),
        )

    low_ratio_hits, high_ratio_hits = benchmark(worst_cases)
    assert low_ratio_hits < 8
    assert high_ratio_hits < 8
