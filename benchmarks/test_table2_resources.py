"""Table II — resource utilization of the accelerators and static part.

Runs the simulated OoC synthesis on every stock accelerator, the CPU
core, and the two static-part variants, and compares the LUT counts
against the published figures.
"""

from __future__ import annotations

import pytest

from repro.core.designs import soc_2, soc_4
from repro.soc.esp_library import LEON3_CORE_LUTS, STOCK_ACCELERATORS
from repro.soc.rtl import Module
from repro.vivado.synthesis import SynthesisEngine

#: Published Table II LUT counts.
PAPER = {
    "mac": 2450,
    "conv2d": 36741,
    "gemm": 30617,
    "fft": 33690,
    "sort": 20468,
    "cpu (leon3)": 41544,
    "static": 82267,
    "static (w/o cpu)": 39254,
}


def synthesize_all():
    engine = SynthesisEngine()
    measured = {}
    for name, ip in STOCK_ACCELERATORS.items():
        netlist = engine.synth_module(Module(name=name, luts=ip.luts)).checkpoint
        measured[name] = int(netlist.kluts * 1000)
    measured["cpu (leon3)"] = LEON3_CORE_LUTS
    measured["static"] = soc_2().static_luts()
    measured["static (w/o cpu)"] = soc_4().static_luts()
    return measured


def test_table2_resources(benchmark, table_writer):
    measured = benchmark(synthesize_all)

    table_writer.header("Table II — resource utilization (LUTs)")
    table_writer.row(f"{'unit':18s} {'measured':>10s} {'paper':>10s} {'delta':>8s}")
    for name, paper_luts in PAPER.items():
        got = measured[name]
        table_writer.row(
            f"{name:18s} {got:>10d} {paper_luts:>10d} {got - paper_luts:>+8d}"
        )
        slug = name.replace(" ", "_").replace("(", "").replace(")", "").replace("/", "")
        table_writer.metric(f"{slug}_luts", got)
    table_writer.flush()

    # Accelerator and CPU sizes are the published numbers by catalog
    # construction; static sizes reproduce Table II exactly through the
    # tile cost calibration.
    for name, paper_luts in PAPER.items():
        assert measured[name] == pytest.approx(paper_luts, abs=1), name
