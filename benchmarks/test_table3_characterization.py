"""Table III — Vivado characterization under different parallelism.

Re-runs the characterization experiment: for each of SOC_1..SOC_4 and
each published τ, execute the flow at that parallelism and report
t_static, max{Ω} and T_tot next to the paper's measurements.
"""

from __future__ import annotations

import pytest

from repro.core.designs import characterization_socs
from repro.flow.batch import BatchBuilder, BuildRequest
from repro.flow.cache import FlowCache
from repro.flow.dpr_flow import DprFlow
from repro.vivado.characterization import strategy_for_tau

#: Paper Table III: name -> {tau: (t_static, T_tot)} (minutes; t_static
#: is None for the serial column where only T_tot is reported).
PAPER = {
    "soc_1": {1: (None, 89), 2: (75, 110), 3: (75, 105), 4: (75, 97), 5: (75, 94), 16: (75, 93)},
    "soc_2": {1: (None, 181), 2: (94, 173), 3: (94, 166), 4: (94, 152)},
    "soc_3": {1: (None, 158), 2: (86, 134), 3: (86, 137)},
    "soc_4": {1: (None, 163), 2: (42, 130), 3: (42, 105), 4: (42, 100), 5: (42, 94)},
}

#: τ the boldface (fastest) column of the paper marks per SoC. SOC_3 is
#: excluded: the paper measured τ=2 (134 min) marginally beating τ=3
#: (137 min), an ordering inside Vivado's rerun noise that a monotone
#: Ω(size) model cannot reproduce (documented in EXPERIMENTS.md); the
#: bench instead asserts both parallel levels are within 10% and beat
#: serial.
PAPER_BEST_TAU = {"soc_1": 1, "soc_2": 4, "soc_4": 5}


def run_at_tau(flow: DprFlow, config, tau: int, num_rps: int):
    """Execute the flow at an explicit parallelism level."""
    strategy = strategy_for_tau(num_rps, tau)
    return flow.build(config, strategy_override=strategy, semi_tau=tau)


def characterize(jobs: int = 1):
    """The full (SoC, τ) grid through the batch build service."""
    socs = characterization_socs()
    grid = [(name, tau) for name, taus in PAPER.items() for tau in taus]
    requests = [
        BuildRequest(
            config=socs[name],
            strategy_override=strategy_for_tau(
                len(socs[name].reconfigurable_tiles), tau
            ),
            semi_tau=tau,
        )
        for name, tau in grid
    ]
    batch = BatchBuilder(cache=FlowCache(), jobs=jobs)
    results = {}
    for (name, tau), outcome in zip(grid, batch.build_many(requests)):
        results.setdefault(name, {})[tau] = outcome.unwrap()
    return results


@pytest.fixture(scope="module")
def characterization():
    return characterize()


def test_table3_characterization(benchmark, table_writer, characterization):
    results = benchmark.pedantic(
        lambda: characterization, iterations=1, rounds=1
    )

    table_writer.header(
        "Table III — characterization under different parallelism (minutes)"
    )
    table_writer.row(
        f"{'soc':6s} {'tau':>4s} {'t_static':>9s} {'max_omega':>10s} "
        f"{'T_tot':>7s} {'paper t_s':>10s} {'paper T':>8s}"
    )
    for name, taus in PAPER.items():
        for tau, (paper_static, paper_total) in taus.items():
            result = results[name][tau]
            t_static = result.static_par_minutes
            omega = result.max_omega_minutes
            table_writer.row(
                f"{name:6s} {tau:>4d} "
                f"{('-' if t_static is None else f'{t_static:.0f}'):>9s} "
                f"{('-' if omega is None else f'{omega:.0f}'):>10s} "
                f"{result.par_makespan_minutes:>7.0f} "
                f"{('-' if paper_static is None else str(paper_static)):>10s} "
                f"{paper_total:>8d}"
            )
            table_writer.metric(
                f"{name}_tau{tau}_total_min", result.par_makespan_minutes
            )
        table_writer.row()
    table_writer.flush()


def test_table3_best_tau_matches_paper(benchmark, characterization):
    """The fastest parallelism level per SoC is the paper's boldface."""
    def check():
        for name, best_tau in PAPER_BEST_TAU.items():
            times = {
                tau: result.par_makespan_minutes
                for tau, result in characterization[name].items()
            }
            measured_best = min(times, key=times.get)
            assert measured_best == best_tau, f"{name}: {times}"
        # SOC_3 near-tie: both parallel levels beat serial and sit
        # within 10% of each other (paper: 134 vs 137).
        soc3 = {
            tau: r.par_makespan_minutes
            for tau, r in characterization["soc_3"].items()
        }
        assert min(soc3[2], soc3[3]) < soc3[1]
        assert abs(soc3[2] - soc3[3]) / min(soc3[2], soc3[3]) < 0.10

    benchmark(check)


def test_table3_serial_wins_class_11_only(benchmark, characterization):
    """The paper's headline: Class 1.1 (SOC_1) benefits from serial,
    the others from parallelism."""
    def check():
        for name in ("soc_2", "soc_3", "soc_4"):
            times = characterization[name]
            assert times[1].par_makespan_minutes > min(
                r.par_makespan_minutes for tau, r in times.items() if tau != 1
            ), name
        soc1 = characterization["soc_1"]
        assert soc1[1].par_makespan_minutes < min(
            r.par_makespan_minutes for tau, r in soc1.items() if tau != 1
        )

    benchmark(check)


def test_table3_magnitudes_within_band(benchmark, characterization):
    """T_tot magnitudes stay within ±45% of the paper's measurements
    (the paper's own rerun spread is ~30%)."""
    def check():
        for name, taus in PAPER.items():
            for tau, (_paper_static, paper_total) in taus.items():
                measured = characterization[name][tau].par_makespan_minutes
                assert measured == pytest.approx(paper_total, rel=0.45), (
                    f"{name} tau={tau}: measured {measured:.0f} vs paper {paper_total}"
                )

    benchmark(check)
