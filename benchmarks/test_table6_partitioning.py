"""Table VI — accelerator partitioning and partial bitstream sizes.

Builds SoC_X/Y/Z through the flow and reports the per-tile accelerator
allocation with the generated compressed partial-bitstream sizes,
mirroring the published table (which quotes one pbs figure per tile).
"""

from __future__ import annotations

import pytest

from repro.core.designs import WAMI_TILE_ALLOCATION, wami_deployment_socs
from repro.flow.dpr_flow import DprFlow

#: Paper Table VI pbs sizes (KB) per tile.
PAPER_PBS = {
    "soc_x": {"rt1": 328, "rt2": 245},
    "soc_y": {"rt1": 283, "rt2": 247, "rt3": 378},
    "soc_z": {"rt1": 305, "rt2": 359, "rt3": 317, "rt4": 397},
}


def build_all():
    flow = DprFlow()
    return {name: flow.build(cfg) for name, cfg in wami_deployment_socs().items()}


@pytest.fixture(scope="module")
def builds():
    return build_all()


def tile_pbs_kib(result, tile_name):
    """Largest pbs of a tile (the size the runtime must budget for)."""
    sizes = [
        b.size_kib for b in result.partial_bitstreams() if b.target_rp == tile_name
    ]
    assert sizes, f"no partial bitstreams for {tile_name}"
    return max(sizes), sum(sizes) / len(sizes)


def test_table6_partitioning(benchmark, table_writer, builds):
    results = benchmark.pedantic(lambda: builds, iterations=1, rounds=1)

    table_writer.header("Table VI — accelerator partitioning and pbs sizes")
    table_writer.row(
        f"{'soc':6s} {'tile':5s} {'WAMI accs':>16s} {'max pbs':>9s} "
        f"{'avg pbs':>9s} {'paper':>7s}"
    )
    for name, allocation in WAMI_TILE_ALLOCATION.items():
        result = results[name]
        for index, indexes in enumerate(allocation, start=1):
            tile = f"rt{index}"
            largest, average = tile_pbs_kib(result, tile)
            paper = PAPER_PBS[name][tile]
            table_writer.row(
                f"{name:6s} {tile:5s} {str(indexes):>16s} {largest:>8.0f}K "
                f"{average:>8.0f}K {paper:>6d}K"
            )
            table_writer.metric(f"{name}_{tile}_max_pbs_kib", largest)
        table_writer.row()
    table_writer.flush()


def test_table6_sizes_in_published_band(benchmark, builds):
    """Compressed pbs sizes land in the paper's few-hundred-KB band.

    Per-tile we allow a 2.2x factor: the paper's per-tile figures do not
    correlate with any size model of the reconstructed kernels (its
    smallest-kernel tile carries the *largest* pbs), so only the scale
    is checkable. The fleet-wide mean must agree within 35%.
    """

    def check():
        all_measured, all_paper = [], []
        for name, tiles in PAPER_PBS.items():
            result = builds[name]
            for tile, paper_kib in tiles.items():
                largest, _ = tile_pbs_kib(result, tile)
                all_measured.append(largest)
                all_paper.append(paper_kib)
                assert paper_kib / 2.2 <= largest <= paper_kib * 2.2, (
                    f"{name}/{tile}: {largest:.0f}K vs paper {paper_kib}K"
                )
        mean_measured = sum(all_measured) / len(all_measured)
        mean_paper = sum(all_paper) / len(all_paper)
        assert mean_measured == pytest.approx(mean_paper, rel=0.35)

    benchmark(check)


def test_table6_compression_is_on(benchmark, builds):
    def check():
        for result in builds.values():
            assert all(b.compressed for b in result.partial_bitstreams())

    benchmark(check)


def test_table6_every_mode_has_a_bitstream(benchmark, builds):
    def check():
        for name, result in builds.items():
            pairs = {(b.target_rp, b.mode) for b in result.partial_bitstreams()}
            for tile in result.config.reconfigurable_tiles:
                for mode in tile.mode_names():
                    assert (tile.name, mode) in pairs, (name, tile.name, mode)

    benchmark(check)
