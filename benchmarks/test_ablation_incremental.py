"""Ablation — incremental tile rebuild vs full recompilation.

Quantifies the compile-time dividend of the DPR structure: after one
full build, changing a single accelerator only re-runs that tile's
OoC synthesis + in-context P&R + bitstreams.
"""

from __future__ import annotations

import pytest

from repro.core.designs import soc_2, wami_soc_y
from repro.flow.dpr_flow import DprFlow
from repro.flow.incremental import IncrementalFlow


def measure():
    flow = DprFlow()
    incremental = IncrementalFlow()
    rows = []
    for config in (soc_2(), wami_soc_y()):
        base = flow.build(config)
        tiles = [rp.name for rp in base.partition.rps]
        one = incremental.rebuild(base, tiles[:1])
        everything = incremental.rebuild(base, tiles)
        rows.append((config.name, base, one, everything))
    return rows


@pytest.fixture(scope="module")
def rows():
    return measure()


def test_ablation_incremental(benchmark, table_writer, rows):
    results = benchmark.pedantic(lambda: rows, iterations=1, rounds=1)

    table_writer.header("Ablation — incremental rebuild vs full flow (minutes)")
    table_writer.row(
        f"{'soc':8s} {'full build':>11s} {'1 tile':>8s} {'speedup':>8s} "
        f"{'all tiles':>10s} {'speedup':>8s}"
    )
    for name, base, one, everything in results:
        table_writer.row(
            f"{name:8s} {base.total_minutes:>11.0f} {one.makespan_minutes:>8.0f} "
            f"{one.speedup:>7.1f}x {everything.makespan_minutes:>10.0f} "
            f"{everything.speedup:>7.1f}x"
        )
        table_writer.metric(f"{name}_full_min", base.total_minutes)
        table_writer.metric(f"{name}_one_tile_speedup", one.speedup)
        table_writer.metric(f"{name}_all_tiles_speedup", everything.speedup)
    table_writer.flush()


def test_ablation_incremental_single_tile_speedup(benchmark, rows):
    """~2x under the calibrated model. The fitted OoC-synthesis curve
    carries a 42-minute constant (the paper's parallel-synth makespans
    are nearly size-independent), which bounds how fast *any* rebuild
    can be; real incremental flows that skip elaboration would do
    better."""

    def check():
        for _name, _base, one, _everything in rows:
            assert one.speedup > 1.5

    benchmark(check)


def test_ablation_incremental_never_slower_than_full(benchmark, rows):
    def check():
        for _name, base, _one, everything in rows:
            # Even rebuilding every tile skips static synth + pre-route.
            assert everything.makespan_minutes < base.total_minutes

    benchmark(check)
