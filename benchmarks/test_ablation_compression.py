"""Ablation — bitstream compression vs reconfiguration latency.

PR-ESP enables Vivado's compression "to reduce the memory access
latency during reconfiguration" (Sec. VI). This bench builds SoC_Y
with and without compression and measures the effect on partial
bitstream sizes, per-swap reconfiguration latency, and whole-frame
time.
"""

from __future__ import annotations

import pytest

from repro.core.designs import wami_soc_y
from repro.core.platform import PrEspPlatform


def run_both():
    config = wami_soc_y()
    results = {}
    for compressed in (True, False):
        platform = PrEspPlatform(compress_bitstreams=compressed)
        flow_result = platform.flow.build(config)
        report = platform.deploy_wami(config, flow_result=flow_result, frames=4)
        results[compressed] = (flow_result, report)
    return results


@pytest.fixture(scope="module")
def both():
    return run_both()


def test_ablation_compression(benchmark, table_writer, both):
    results = benchmark.pedantic(lambda: both, iterations=1, rounds=1)

    table_writer.header("Ablation — bitstream compression (SoC_Y)")
    table_writer.row(
        f"{'mode':14s} {'total pbs':>10s} {'avg pbs':>9s} "
        f"{'reconf/frame':>13s} {'ms/frame':>9s}"
    )
    for compressed in (True, False):
        flow_result, report = results[compressed]
        partials = flow_result.partial_bitstreams()
        total_kib = sum(b.size_kib for b in partials)
        reconf_ms = report.timeline.reconfiguration_time() / report.frames * 1000
        table_writer.row(
            f"{'compressed' if compressed else 'uncompressed':14s} "
            f"{total_kib:>9.0f}K {total_kib / len(partials):>8.0f}K "
            f"{reconf_ms:>11.1f}ms {report.seconds_per_frame * 1000:>9.1f}"
        )
        mode = "compressed" if compressed else "uncompressed"
        table_writer.metric(f"{mode}_total_pbs_kib", total_kib)
        table_writer.metric(
            f"{mode}_ms_per_frame", report.seconds_per_frame * 1000
        )
    compressed_report = results[True][1]
    raw_report = results[False][1]
    speedup = raw_report.seconds_per_frame / compressed_report.seconds_per_frame
    table_writer.row()
    table_writer.row(f"frame-time speedup from compression: {speedup:.2f}x")
    table_writer.metric("frame_time_speedup", speedup)
    table_writer.flush()


def test_ablation_compression_shrinks_bitstreams(benchmark, both):
    def check():
        packed = sum(b.size_bytes for b in both[True][0].partial_bitstreams())
        raw = sum(b.size_bytes for b in both[False][0].partial_bitstreams())
        assert packed < raw / 5  # ~7-12% ratios at typical occupancy

    benchmark(check)


def test_ablation_compression_cuts_reconfiguration_time(benchmark, both):
    def check():
        packed = both[True][1].timeline.reconfiguration_time()
        raw = both[False][1].timeline.reconfiguration_time()
        assert packed < raw / 5

    benchmark(check)


def test_ablation_compression_speeds_up_frames(benchmark, both):
    """Uncompressed partials push multi-ms swaps to tens of ms; the
    frame time must visibly improve with compression on."""

    def check():
        assert (
            both[False][1].seconds_per_frame
            > 1.2 * both[True][1].seconds_per_frame
        )

    benchmark(check)
