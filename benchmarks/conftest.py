"""Shared infrastructure for the table/figure regeneration benches.

Every bench regenerates one table or figure of the paper: it computes
the rows with the library, prints them (visible with ``pytest -s``),
writes them under ``benchmarks/results/``, asserts the qualitative
shape the paper reports, and times the regeneration via
pytest-benchmark.
"""

from __future__ import annotations

import pathlib

import pytest

from repro.core.platform import PrEspPlatform

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


class TableWriter:
    """Collects formatted rows and persists them per experiment."""

    def __init__(self, experiment: str) -> None:
        self.experiment = experiment
        self.lines: list = []

    def row(self, text: str = "") -> None:
        self.lines.append(text)

    def header(self, title: str) -> None:
        self.row("=" * 78)
        self.row(title)
        self.row("=" * 78)

    def flush(self) -> str:
        text = "\n".join(self.lines) + "\n"
        RESULTS_DIR.mkdir(exist_ok=True)
        (RESULTS_DIR / f"{self.experiment}.txt").write_text(text)
        print("\n" + text)
        return text


@pytest.fixture
def table_writer(request):
    """A writer named after the requesting bench test (one output file
    per printing test; modules with a single printing test keep their
    module-named file)."""
    name = request.node.name.replace("test_", "", 1)
    return TableWriter(name)


@pytest.fixture(scope="session")
def platform():
    """One shared platform across benches."""
    return PrEspPlatform()
