"""Shared infrastructure for the table/figure regeneration benches.

Every bench regenerates one table or figure of the paper: it computes
the rows with the library, prints them (visible with ``pytest -s``),
writes them under ``benchmarks/results/``, asserts the qualitative
shape the paper reports, and times the regeneration via
pytest-benchmark.
"""

from __future__ import annotations

import pathlib
import time

import pytest

import repro.api
from repro.obs.perfbase import write_summary

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


class TableWriter:
    """Collects formatted rows and persists them per experiment.

    Besides the human table (``<experiment>.txt``), every key value
    registered via :meth:`metric` lands in a machine-readable
    ``BENCH_<experiment>.json`` summary — the input of
    ``repro bench-diff`` against the committed baselines under
    ``benchmarks/baselines/``. Metrics must be the deterministic
    modelled values (minutes, counts, latencies); wall-clock goes into
    the summary's ``meta`` automatically and is never compared.
    """

    def __init__(self, experiment: str) -> None:
        self.experiment = experiment
        self.lines: list = []
        self.metrics: dict = {}
        self._started = time.perf_counter()

    def row(self, text: str = "") -> None:
        self.lines.append(text)

    def header(self, title: str) -> None:
        self.row("=" * 78)
        self.row(title)
        self.row("=" * 78)

    def metric(self, name: str, value: float) -> None:
        """Register one baseline-checkable value of this experiment."""
        self.metrics[name] = float(value)

    def flush(self) -> str:
        text = "\n".join(self.lines) + "\n"
        RESULTS_DIR.mkdir(exist_ok=True)
        (RESULTS_DIR / f"{self.experiment}.txt").write_text(text)
        if self.metrics:
            write_summary(
                RESULTS_DIR,
                self.experiment,
                self.metrics,
                meta={"wall_s": round(time.perf_counter() - self._started, 6)},
            )
        print("\n" + text)
        return text


@pytest.fixture
def table_writer(request):
    """A writer named after the requesting bench test (one output file
    per printing test; modules with a single printing test keep their
    module-named file)."""
    name = request.node.name.replace("test_", "", 1)
    return TableWriter(name)


@pytest.fixture(scope="session")
def platform():
    """One shared platform across benches."""
    return repro.api.platform()
