"""Table I — the size-driven implementation-strategy matrix.

Sweeps synthetic designs over every (κ vs α_av) x γ cell and prints
the strategy the algorithm assigns, reproducing the published matrix
(including the two impossible cells).
"""

from __future__ import annotations

from repro.core.metrics import metrics_from_sizes
from repro.core.strategy import ImplementationStrategy, choose_strategy

DEVICE_LUTS = 302_400

#: (row label, static LUTs, per-tile LUTs, tile count) per matrix cell.
#: Chosen so κ/α_av and γ land squarely in each regime.
CELLS = {
    ("kappa>>alpha", "gamma<1"): (80_000, 4_000, 4),
    ("kappa>>alpha", "gamma~1"): (80_000, 26_500, 3),
    ("kappa>>alpha", "gamma>1"): (80_000, 30_000, 4),
    ("kappa~alpha", "gamma~1"): (40_000, 40_000, 1),
    ("kappa~alpha", "gamma>1"): (40_000, 35_000, 4),
    ("kappa<<alpha", "gamma~1"): (30_000, 30_500, 1),
    ("kappa<<alpha", "gamma>1"): (20_000, 45_000, 3),
}

#: The published Table I cell contents.
PAPER_MATRIX = {
    ("kappa~alpha", "gamma<1"): None,  # impossible
    ("kappa~alpha", "gamma~1"): ImplementationStrategy.SERIAL,
    ("kappa~alpha", "gamma>1"): ImplementationStrategy.FULLY_PARALLEL,
    ("kappa>>alpha", "gamma<1"): ImplementationStrategy.SERIAL,
    ("kappa>>alpha", "gamma~1"): ImplementationStrategy.SEMI_PARALLEL,
    # 'semi/fully-parallel': either is accepted; PR-ESP tie-breaks.
    ("kappa>>alpha", "gamma>1"): (
        ImplementationStrategy.SEMI_PARALLEL,
        ImplementationStrategy.FULLY_PARALLEL,
    ),
    ("kappa<<alpha", "gamma<1"): None,  # impossible
    ("kappa<<alpha", "gamma~1"): ImplementationStrategy.SERIAL,
    ("kappa<<alpha", "gamma>1"): ImplementationStrategy.FULLY_PARALLEL,
}


def build_matrix():
    matrix = {}
    for cell, (static, tile, count) in CELLS.items():
        metrics = metrics_from_sizes(static, [tile] * count, DEVICE_LUTS)
        decision = choose_strategy(metrics)
        matrix[cell] = (metrics, decision)
    return matrix


def test_table1_strategy_matrix(benchmark, table_writer):
    matrix = benchmark(build_matrix)

    table_writer.header("Table I — size-driven implementation strategies")
    table_writer.row(f"{'kappa regime':14s} {'gamma':9s} {'class':6s} "
                     f"{'chosen strategy':18s} {'paper':>20s}")
    for row_label in ("kappa~alpha", "kappa>>alpha", "kappa<<alpha"):
        for col_label in ("gamma<1", "gamma~1", "gamma>1"):
            cell = (row_label, col_label)
            expected = PAPER_MATRIX[cell]
            if cell not in CELLS:
                table_writer.row(
                    f"{row_label:14s} {col_label:9s} {'-':6s} {'(impossible)':18s} "
                    f"{'-':>20s}"
                )
                assert expected is None
                continue
            metrics, decision = matrix[cell]
            expected_text = (
                "semi/fully-par"
                if isinstance(expected, tuple)
                else expected.value
            )
            table_writer.row(
                f"{row_label:14s} {col_label:9s} "
                f"{decision.design_class.value:6s} {decision.strategy.value:18s} "
                f"{expected_text:>20s}"
            )
            if isinstance(expected, tuple):
                assert decision.strategy in expected
            else:
                assert decision.strategy is expected
    for strategy in ImplementationStrategy:
        table_writer.metric(
            f"cells_{strategy.value.replace('-', '_')}",
            sum(1 for _m, d in matrix.values() if d.strategy is strategy),
        )
    table_writer.flush()


def test_table1_impossible_cells_are_arithmetically_impossible(benchmark):
    """γ < 1 with κ <= α_av cannot be constructed (paper's footnote)."""

    def probe():
        found = []
        for static in range(10_000, 100_000, 10_000):
            for tile in range(10_000, 100_000, 10_000):
                for count in (1, 2, 4, 8):
                    metrics = metrics_from_sizes(static, [tile] * count, DEVICE_LUTS)
                    if metrics.kappa <= metrics.alpha_av and metrics.gamma < 1.0:
                        found.append(metrics)
        return found

    assert benchmark(probe) == []
