"""Table IV — evaluation of the P&R parallelism on the WAMI SoCs.

Runs SoC_A..SoC_D under all three strategies and checks that the one
the size-driven algorithm picks is the fastest — the table's headline
("for each class of design, the parallelism strategy chosen by PR-ESP
resulted in the fastest P&R runtime").
"""

from __future__ import annotations

import pytest

from repro.core.designs import WAMI_FLOW_SOC_ACCS, wami_parallelism_socs
from repro.core.strategy import ImplementationStrategy
from repro.flow.batch import BatchBuilder, BuildRequest
from repro.flow.cache import FlowCache

#: Paper Table IV, minutes: name -> {strategy: (t_static, omega, T_P&R)}.
PAPER = {
    "soc_a": {"fully-parallel": (98, 52, 150), "semi-parallel": (98, 88, 186), "serial": (None, None, 192)},
    "soc_b": {"fully-parallel": (95, 48, 143), "semi-parallel": (95, 61, 156), "serial": (None, None, 135)},
    "soc_c": {"fully-parallel": (88, 71, 159), "semi-parallel": (88, 64, 152), "serial": (None, None, 167)},
    "soc_d": {"fully-parallel": (48, 71, 119), "semi-parallel": (48, 83, 131), "serial": (None, None, 142)},
}

#: The boldface (chosen and fastest) strategy per SoC.
PAPER_CHOICE = {
    "soc_a": ImplementationStrategy.FULLY_PARALLEL,
    "soc_b": ImplementationStrategy.SERIAL,
    "soc_c": ImplementationStrategy.SEMI_PARALLEL,
    "soc_d": ImplementationStrategy.FULLY_PARALLEL,
}

#: SoC_C deviation: the paper measured semi (152) marginally beating
#: fully (159); a monotone Ω(size) model orders them the other way, so
#: the chosen-strategy check for SoC_C accepts a <=10% gap to the best.
NEAR_TIE = {"soc_c"}


#: None = let the size-driven algorithm choose.
SWEEP_STRATEGIES = (
    None,
    ImplementationStrategy.FULLY_PARALLEL,
    ImplementationStrategy.SEMI_PARALLEL,
    ImplementationStrategy.SERIAL,
)


def sweep_requests():
    """The 4 SoCs x (chosen + 3 strategies) grid as batch requests."""
    socs = wami_parallelism_socs()
    return [
        BuildRequest(config=socs[name], strategy_override=strategy)
        for name in PAPER
        for strategy in SWEEP_STRATEGIES
    ]


def sweep(jobs: int = 1):
    batch = BatchBuilder(cache=FlowCache(), jobs=jobs)
    outcomes = iter(batch.build_many(sweep_requests()))
    results = {}
    for name in PAPER:
        results[name] = {
            ("chosen" if strategy is None else strategy): next(outcomes).unwrap()
            for strategy in SWEEP_STRATEGIES
        }
    return results


@pytest.fixture(scope="module")
def sweep_results():
    return sweep()


def test_table4_parallelism(benchmark, table_writer, sweep_results):
    results = benchmark.pedantic(lambda: sweep_results, iterations=1, rounds=1)

    table_writer.header("Table IV — P&R parallelism on the WAMI SoCs (minutes)")
    table_writer.row(
        f"{'soc':6s} {'accs':16s} {'strategy':15s} {'t_static':>9s} "
        f"{'max_omega':>10s} {'T_P&R':>7s} {'paper':>7s} {'chosen':>7s}"
    )
    for name, paper_rows in PAPER.items():
        accs = str(WAMI_FLOW_SOC_ACCS[name])
        chosen = results[name]["chosen"].strategy
        for strategy_name, (p_static, p_omega, p_total) in paper_rows.items():
            strategy = ImplementationStrategy(strategy_name)
            result = results[name][strategy]
            t_static = result.static_par_minutes
            omega = result.max_omega_minutes
            table_writer.row(
                f"{name:6s} {accs:16s} {strategy.value:15s} "
                f"{('-' if t_static is None else f'{t_static:.0f}'):>9s} "
                f"{('-' if omega is None else f'{omega:.0f}'):>10s} "
                f"{result.par_makespan_minutes:>7.0f} {p_total:>7d} "
                f"{'<-- ' if strategy is chosen else '':>7s}"
            )
            table_writer.metric(
                f"{name}_{strategy.value.replace('-', '_')}_total_min",
                result.par_makespan_minutes,
            )
        table_writer.metric(
            f"{name}_chosen_total_min",
            results[name]["chosen"].par_makespan_minutes,
        )
        table_writer.row()
    table_writer.flush()


def test_table4_choice_matches_paper(benchmark, sweep_results):
    def check():
        for name, expected in PAPER_CHOICE.items():
            assert sweep_results[name]["chosen"].strategy is expected, name

    benchmark(check)


def test_table4_chosen_strategy_is_fastest(benchmark, sweep_results):
    def check():
        for name in PAPER:
            chosen = sweep_results[name]["chosen"].strategy
            times = {
                s: sweep_results[name][s].par_makespan_minutes
                for s in ImplementationStrategy
            }
            best = min(times.values())
            if name in NEAR_TIE:
                assert times[chosen] <= 1.10 * best, f"{name}: {times}"
            else:
                assert times[chosen] == best, f"{name}: {times}"

    benchmark(check)


def test_table4_magnitudes(benchmark, sweep_results):
    def check():
        for name, paper_rows in PAPER.items():
            for strategy_name, (_s, _o, p_total) in paper_rows.items():
                strategy = ImplementationStrategy(strategy_name)
                measured = sweep_results[name][strategy].par_makespan_minutes
                assert measured == pytest.approx(p_total, rel=0.50), (
                    f"{name}/{strategy.value}: {measured:.0f} vs {p_total}"
                )

    benchmark(check)
